//! Trace-invariant property tests (ISSUE 1, satellite 3).
//!
//! Structural invariants every trace must satisfy, regardless of workload,
//! stack, message size, or injected faults:
//!
//! - **Monotone clocks**: per processor, event timestamps never decrease in
//!   emission order (the virtual clock cannot run backwards).
//! - **Balanced spans**: a `Phase::End` always closes an open `Phase::Begin`
//!   of the same name on the same thread; only a trailing in-flight wire
//!   span may remain open when the measured workload finishes first.
//! - **Frame conservation**: every transmitted frame is accounted for —
//!   `tx = on-wire + wire-dropped`, and the trace counters reconcile exactly
//!   with the independently maintained `SegmentStats` and
//!   `Machine::dropped_messages` bookkeeping.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use chaos::testutil::{boot_machines, build_stack, Stack};
use desim::trace::{Layer, Phase, TraceEvent};
use orca_panda::prelude::*;
use proptest::prelude::*;

use bench::{group_trace, rpc_trace, Which};

fn assert_monotone_per_proc(events: &[TraceEvent]) {
    let mut last: HashMap<desim::ProcId, SimTime> = HashMap::new();
    for e in events {
        let prev = last.entry(e.proc).or_insert(e.time);
        assert!(
            e.time >= *prev,
            "clock ran backwards on {}: {} after {}",
            e.proc,
            e.time.as_nanos(),
            prev.as_nanos()
        );
        *prev = e.time;
    }
}

fn assert_balanced_spans(events: &[TraceEvent]) {
    // Depth per (thread, layer, name); an End may never outrun its Begin.
    let mut depth: HashMap<(desim::ThreadId, Layer, &str), i64> = HashMap::new();
    for e in events {
        let d = depth.entry((e.thread, e.layer, e.name)).or_insert(0);
        match e.phase {
            Phase::Begin => *d += 1,
            Phase::End => {
                *d -= 1;
                assert!(
                    *d >= 0,
                    "unbalanced span: End without Begin for {}/{} on {}",
                    e.layer,
                    e.name,
                    e.thread
                );
            }
            Phase::Instant => {}
        }
    }
    // The workload thread finishing ends the run; a frame it fired and
    // forgot (the kernel RPC's trailing ack) may leave its wire span open.
    for ((_, layer, name), d) in depth {
        let open_ok = layer == Layer::Net && name == "wire";
        assert!(
            d == 0 || (open_ok && d == 1),
            "span {layer}/{name} left open {d} time(s) at end of run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn protocol_traces_satisfy_clock_and_span_invariants(
        size in 0usize..2048,
        kernel in any::<bool>(),
        group in any::<bool>(),
    ) {
        let cost = CostModel::default();
        let which = if kernel { Which::Kernel } else { Which::User };
        let run = if group {
            group_trace(size, which, &cost, 1)
        } else {
            rpc_trace(size, which, &cost, 1)
        };
        prop_assert!(!run.events.is_empty());
        assert_monotone_per_proc(&run.events);
        assert_balanced_spans(&run.events);
    }
}

/// Sums a trace counter over all processors.
fn counter(sim: &Simulation, layer: Layer, name: &str) -> u64 {
    sim.trace_counters()
        .iter()
        .filter(|c| c.layer == layer && c.name == name)
        .map(|c| c.count)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn frames_are_conserved_under_receiver_loss(
        loss_pct in 0u32..12,
        kernel in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut sim = Simulation::new(seed);
        sim.enable_tracing_with_capacity(1 << 20);
        let stack = if kernel { Stack::Kernel } else { Stack::User };
        let world = boot_machines(&mut sim, 3);
        world.net.faults().lock().rx_loss_prob = f64::from(loss_pct) / 100.0;
        let nodes = build_stack(&mut sim, &world.machines, stack, &PandaConfig::default());
        let (net, machines) = (world.net, world.machines);
        let replier = Arc::clone(&nodes[1]);
        nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, req, t| {
            replier.reply(ctx, t, req);
        }));
        for n in &nodes {
            n.set_group_handler(Arc::new(|_, _| {}));
        }
        nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
        nodes[2].set_rpc_handler(Arc::new(|_, _, _, _| {}));
        let client = Arc::clone(&nodes[0]);
        sim.spawn(machines[0].proc(), "rpc-client", move |ctx| {
            for _ in 0..6 {
                client.rpc(ctx, 1, Bytes::from(vec![7u8; 200])).expect("rpc recovers");
            }
        });
        let caster = Arc::clone(&nodes[2]);
        sim.spawn(machines[2].proc(), "broadcaster", move |ctx| {
            for _ in 0..5 {
                caster.group_send(ctx, Bytes::from(vec![9u8; 600])).expect("bcast recovers");
            }
        });
        sim.run().expect("run completes");

        let stats = net.total_stats();
        let tx = counter(&sim, Layer::Net, "tx");
        let on_wire = counter(&sim, Layer::Net, "frame");
        let wire_drops = counter(&sim, Layer::Net, "wire_drop");
        let rx = counter(&sim, Layer::Net, "rx");
        let rx_drops = counter(&sim, Layer::Net, "rx_drop");

        // Conservation at the wire: everything a NIC queued either occupied
        // the medium or was dropped by an injected wire fault.
        prop_assert_eq!(tx, on_wire + wire_drops, "tx = on-wire + wire-dropped");
        // Trace counters reconcile with the segments' own bookkeeping.
        prop_assert_eq!(on_wire, stats.frames);
        prop_assert_eq!(wire_drops, stats.wire_drops);
        prop_assert_eq!(rx_drops, stats.rx_drops);
        prop_assert!(rx > 0, "some frames must be delivered");
        // ... and with each machine's count of sink-less deliveries.
        let no_sink: u64 = counter(&sim, Layer::Flip, "no_sink_drop");
        let dropped: u64 = machines.iter().map(|m| m.dropped_messages()).sum();
        prop_assert_eq!(no_sink, dropped);
        // Nothing in this workload is lost above the network: with loss
        // injected, drops show up; without, none do.
        if loss_pct == 0 {
            prop_assert_eq!(rx_drops + wire_drops, 0);
        }
    }
}
