//! Golden chaos trace (ISSUE 2, satellite 3): one *fixed* fault plan —
//! seeded receiver loss plus a crash/reboot of the sequencer machine in the
//! middle of the run — with the resulting trace hash pinned for both stacks.
//!
//! The chaos engine's whole value rests on `seed → plan → execution` being
//! one reproducible pipeline; this test freezes one point of that pipeline
//! forever. If a protocol change legitimately shifts the execution,
//! regenerate the constants with
//! `CHAOS_GOLDEN_DUMP=1 cargo test --test chaos_golden -- --nocapture`.

use chaos::engine::{run_chaos, ChaosConfig};
use chaos::plan::{FaultPlan, TimedFault, TimedKind};
use chaos::Stack;
use desim::SimDuration;
use ethernet::MacAddr;

/// The frozen plan: 5% receiver loss through the fault horizon, and the
/// sequencer's machine (machine 0 in both stacks' default configuration)
/// crashing at 30 ms and rebooting at 90 ms — the scenario that forces
/// full group-protocol recovery: the rebooted sequencer must be brought
/// back up to date and every member's gap closed.
fn golden_config(stack: Stack) -> ChaosConfig {
    let mut cfg = ChaosConfig::for_seed(stack, 0x60_1d, 12, 8, SimDuration::from_millis(500));
    cfg.plan = FaultPlan {
        rx_loss_prob: 0.05,
        timed: vec![TimedFault {
            at: SimDuration::from_millis(30),
            until: SimDuration::from_millis(90),
            kind: TimedKind::Crash(MacAddr(0)),
        }],
        ..FaultPlan::default()
    };
    cfg
}

fn check_golden(stack: Stack, pinned: u64) {
    let cfg = golden_config(stack);
    let a = run_chaos(&cfg);
    assert_eq!(
        a.violations,
        Vec::<String>::new(),
        "{}: the golden plan must pass all invariants",
        stack.name()
    );
    assert_eq!(a.rpc_ok, cfg.rpcs, "{}: every RPC recovers", stack.name());
    let b = run_chaos(&cfg);
    assert_eq!(
        a.trace_hash,
        b.trace_hash,
        "{}: the same plan must replay bit-identically",
        stack.name()
    );
    if std::env::var_os("CHAOS_GOLDEN_DUMP").is_some() {
        println!("{}: 0x{:016x}", stack.name(), a.trace_hash);
        return;
    }
    assert_eq!(
        a.trace_hash,
        pinned,
        "{}: chaos execution diverged from the pinned golden hash \
         (regenerate with CHAOS_GOLDEN_DUMP=1 if the change is deliberate)",
        stack.name()
    );
}

#[test]
fn kernel_stack_sequencer_crash_golden() {
    check_golden(Stack::Kernel, KERNEL_GOLDEN_HASH);
}

#[test]
fn user_stack_sequencer_crash_golden() {
    check_golden(Stack::User, USER_GOLDEN_HASH);
}

const KERNEL_GOLDEN_HASH: u64 = 0x00be_a365_d90a_3418;
const USER_GOLDEN_HASH: u64 = 0x08bb_c947_aebe_de62;
