//! Golden-trace regression tests (ISSUE 1, satellite 2).
//!
//! A deterministic simulator makes traces a testing surface: the exact
//! sequence of protocol events for a fixed workload is part of the stack's
//! observable behaviour. These tests pin (a) full-trace determinism — two
//! runs of the same seed render bit-identical event streams — and (b) the
//! exact protocol-level event sequence of the measured operation: a null
//! RPC and a 1 KB group broadcast, on both stacks.
//!
//! When a deliberate protocol change shifts a golden sequence, regenerate
//! it with `TRACE_GOLDEN_DUMP=1 cargo test --test trace_golden -- --nocapture`.

use amoeba::CostModel;
use bench::{group_trace, rpc_trace, RpcTraceRun, Which};
use desim::trace::{Layer, Phase, TraceEvent};

/// The emission-order slice of the **last** `span_name` span: from its
/// `Begin` event through its matching `End` on the same thread. Slicing by
/// event index (not timestamp) keeps same-timestamp stragglers of the
/// previous iteration out of the golden.
fn span_slice<'a>(events: &'a [TraceEvent], span_name: &str) -> &'a [TraceEvent] {
    let ei = events
        .iter()
        .rposition(|e| e.phase == Phase::End && e.name == span_name)
        .expect("span end");
    let bi = events[..ei]
        .iter()
        .rposition(|e| {
            e.phase == Phase::Begin && e.name == span_name && e.thread == events[ei].thread
        })
        .expect("span begin");
    &events[bi..=ei]
}

/// The protocol-level skeleton of a trace slice: every non-cost event from
/// the FLIP layer upward, as `layer/name.phase`, in emission order. Cost
/// events (those carrying an `ns` argument) and the scheduler/wire layers
/// are excluded so the golden pins protocol *behaviour*, not the cost model.
fn protocol_sequence(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .filter(|e| {
            matches!(
                e.layer,
                Layer::Flip | Layer::Rpc | Layer::Group | Layer::Orca
            ) && e.args.get("ns").is_none()
        })
        .map(|e| {
            let ph = match e.phase {
                Phase::Instant => "i",
                Phase::Begin => "B",
                Phase::End => "E",
            };
            format!("{}/{}.{}", e.layer, e.name, ph)
        })
        .collect()
}

fn assert_golden(run: &RpcTraceRun, span_name: &str, expected: &[&str], label: &str) {
    let seq = protocol_sequence(span_slice(&run.events, span_name));
    if std::env::var_os("TRACE_GOLDEN_DUMP").is_some() {
        println!("--- {label} ---");
        for s in &seq {
            println!("    \"{s}\",");
        }
        return;
    }
    assert_eq!(
        seq, expected,
        "{label}: protocol event sequence diverged from the golden trace"
    );
}

fn renders(run: &RpcTraceRun) -> Vec<String> {
    run.events.iter().map(TraceEvent::render).collect()
}

#[test]
fn null_rpc_traces_are_deterministic_and_match_golden() {
    let cost = CostModel::default();
    for (which, span_name, label, expected) in [
        (
            Which::Kernel,
            "trans",
            "null RPC, kernel-space",
            KERNEL_NULL_RPC.as_slice(),
        ),
        (
            Which::User,
            "call",
            "null RPC, user-space",
            USER_NULL_RPC.as_slice(),
        ),
    ] {
        let a = rpc_trace(0, which, &cost, 1);
        let b = rpc_trace(0, which, &cost, 1);
        assert_eq!(
            renders(&a),
            renders(&b),
            "{label}: two runs of the same seed must render identical traces"
        );
        assert_golden(&a, span_name, expected, label);
    }
}

#[test]
fn group_1kb_traces_are_deterministic_and_match_golden() {
    let cost = CostModel::default();
    for (which, label, expected) in [
        (
            Which::Kernel,
            "1 KB group, kernel-space",
            KERNEL_1KB_GROUP.as_slice(),
        ),
        (
            Which::User,
            "1 KB group, user-space",
            USER_1KB_GROUP.as_slice(),
        ),
    ] {
        let a = group_trace(1024, which, &cost, 1);
        let b = group_trace(1024, which, &cost, 1);
        assert_eq!(
            renders(&a),
            renders(&b),
            "{label}: two runs of the same seed must render identical traces"
        );
        assert_golden(&a, "grp_send", expected, label);
    }
}

/// Amoeba's 3-way null RPC: request out (the leading FLIP triplet is the
/// *previous* call's acknowledgement reaching the server while the client
/// is still in its pre-send compute), server reply, explicit client ack.
const KERNEL_NULL_RPC: [&str; 16] = [
    "rpc/trans.B",
    "flip/msg_send.i",
    "flip/fragment.i",
    "flip/reassembled.i",
    "rpc/request_tx.i",
    "flip/msg_send.i",
    "flip/fragment.i",
    "flip/reassembled.i",
    "rpc/request_rx.i",
    "rpc/reply_tx.i",
    "flip/msg_send.i",
    "flip/fragment.i",
    "flip/reassembled.i",
    "rpc/reply_rx.i",
    "rpc/ack_tx.i",
    "rpc/trans.E",
];

/// Panda's 2-way null RPC: no explicit acknowledgement frame (piggybacked),
/// but each arrival crosses the system layer's receive daemon (`sys_upcall`).
const USER_NULL_RPC: [&str; 14] = [
    "rpc/call.B",
    "rpc/request_tx.i",
    "flip/msg_send.i",
    "flip/fragment.i",
    "flip/reassembled.i",
    "rpc/sys_upcall.i",
    "rpc/request_rx.i",
    "rpc/reply_tx.i",
    "flip/msg_send.i",
    "flip/fragment.i",
    "flip/reassembled.i",
    "rpc/sys_upcall.i",
    "rpc/reply_rx.i",
    "rpc/call.E",
];

/// Kernel sequencer (PB method): point-to-point to the sequencer, which
/// assigns the sequence number, delivers locally, and broadcasts back.
const KERNEL_1KB_GROUP: [&str; 11] = [
    "group/grp_send.B",
    "flip/msg_send.i",
    "flip/fragment.i",
    "flip/reassembled.i",
    "group/seq_assign.i",
    "group/deliver.i",
    "flip/msg_send.i",
    "flip/fragment.i",
    "flip/reassembled.i",
    "group/deliver.i",
    "group/grp_send.E",
];

/// User-space sequencer: same protocol shape plus a system-layer upcall at
/// every arrival (the sequencer runs in a user thread).
const USER_1KB_GROUP: [&str; 14] = [
    "group/grp_send.B",
    "flip/msg_send.i",
    "flip/fragment.i",
    "flip/reassembled.i",
    "group/sys_upcall.i",
    "group/seq_assign.i",
    "flip/msg_send.i",
    "flip/fragment.i",
    "group/sys_upcall.i",
    "group/deliver.i",
    "flip/reassembled.i",
    "group/sys_upcall.i",
    "group/deliver.i",
    "group/grp_send.E",
];
