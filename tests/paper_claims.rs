//! Workspace-level integration tests: the paper's qualitative claims, each
//! asserted against the full simulated stack.

use amoeba::CostModel;
use bench::{group_latency, rpc_latency, system_layer_latency, Which};

/// Section 4.2 / Table 1: the kernel-space RPC is faster than the
/// user-space RPC, and the gap is a few hundred microseconds, not an order
/// of magnitude.
#[test]
fn kernel_rpc_beats_user_rpc_by_fractions_of_a_millisecond() {
    let cost = CostModel::default();
    let user = rpc_latency(0, Which::User, &cost).as_micros_f64();
    let kernel = rpc_latency(0, Which::Kernel, &cost).as_micros_f64();
    let gap = user - kernel;
    assert!(
        gap > 0.0,
        "user-space RPC must be slower (paper: +290us), gap={gap:.0}us"
    );
    assert!(
        (100.0..600.0).contains(&gap),
        "the gap should be a few hundred microseconds (paper: 290), got {gap:.0}us"
    );
}

/// Section 4.3 / Table 1: same for the group protocols.
#[test]
fn kernel_group_beats_user_group_by_fractions_of_a_millisecond() {
    let cost = CostModel::default();
    let user = group_latency(0, Which::User, &cost).as_micros_f64();
    let kernel = group_latency(0, Which::Kernel, &cost).as_micros_f64();
    let gap = user - kernel;
    assert!(
        gap > 0.0,
        "user-space group must be slower (paper: +230us), gap={gap:.0}us"
    );
    assert!(
        (100.0..600.0).contains(&gap),
        "the gap should be a few hundred microseconds (paper: 230), got {gap:.0}us"
    );
}

/// Section 4.1 / Table 1: Ethernet provides multicast in hardware, so
/// multicast latency is almost equal to unicast latency.
#[test]
fn multicast_costs_about_the_same_as_unicast() {
    let cost = CostModel::default();
    let uni = system_layer_latency(1024, false, &cost).as_micros_f64();
    let multi = system_layer_latency(1024, true, &cost).as_micros_f64();
    let ratio = multi / uni;
    assert!(
        (0.9..1.25).contains(&ratio),
        "multicast/unicast ratio should be near 1 (paper: 1.05), got {ratio:.2}"
    );
}

/// Table 1: latency grows roughly linearly in message size, with the
/// fragmentation step structure (2 packets at 2 KB, 3 at both 3 and 4 KB).
#[test]
fn latency_scales_with_size_and_fragmentation() {
    let cost = CostModel::default();
    let l0 = rpc_latency(0, Which::User, &cost).as_millis_f64();
    let l2 = rpc_latency(2048, Which::User, &cost).as_millis_f64();
    let l4 = rpc_latency(4096, Which::User, &cost).as_millis_f64();
    assert!(l2 > l0 + 1.0, "2 KB adds about 2 ms of wire time");
    assert!(l4 > l2 + 1.0, "4 KB adds more wire time");
    assert!(l4 < 3.0 * l2, "no super-linear blowup");
}

/// Section 4 intro: the Table 1 gap is dominated by mechanism costs
/// (switches, traps, crossings). Zeroing them all inverts the comparison:
/// what remains is pure protocol design, and there Panda's 2-way RPC beats
/// Amoeba's 3-way protocol — the explicit acknowledgement per call occupies
/// the shared Ethernet (Section 2's piggybacking argument).
#[test]
fn free_cost_model_leaves_only_the_two_way_protocol_advantage() {
    let cost = CostModel::free();
    let user = rpc_latency(0, Which::User, &cost).as_micros_f64();
    let kernel = rpc_latency(0, Which::Kernel, &cost).as_micros_f64();
    let gap = kernel - user;
    assert!(
        gap > 0.0,
        "with mechanism costs zeroed, the 2-way protocol should win \
         (kernel {kernel:.0}us vs user {user:.0}us)"
    );
    assert!(
        gap < 200.0,
        "the remaining difference is roughly one acknowledgement frame, got {gap:.0}us"
    );
}

/// Determinism across the whole stack: the same seed reproduces the same
/// virtual timings bit-for-bit.
#[test]
fn full_stack_runs_are_deterministic() {
    let cost = CostModel::default();
    let a = rpc_latency(1024, Which::User, &cost);
    let b = rpc_latency(1024, Which::User, &cost);
    assert_eq!(
        a, b,
        "identical seeds must give identical virtual latencies"
    );
    let g1 = group_latency(512, Which::Kernel, &cost);
    let g2 = group_latency(512, Which::Kernel, &cost);
    assert_eq!(g1, g2);
}

/// Table 3 at smoke scale: every application produces the same checksum on
/// both implementations (plus dedicated), on 1 and 4 nodes, through the
/// bench harness used to regenerate the table.
#[test]
fn table3_harness_checksums_agree_across_implementations() {
    use apps::ProtoImpl;
    for app in bench::TABLE3_APPS {
        let mut sums = Vec::new();
        for imp in [
            ProtoImpl::KernelSpace,
            ProtoImpl::UserSpace,
            ProtoImpl::UserSpaceDedicated,
        ] {
            for nodes in [1u32, 4] {
                let r = bench::run_app(app, imp, nodes, bench::Scale::Small);
                sums.push(r.checksum);
            }
        }
        assert!(
            sums.iter().all(|s| *s == sums[0]),
            "{app}: checksums diverge across implementations/nodes: {sums:?}"
        );
    }
}

/// The paper's Section 6 summary: user-space protocols on Amoeba achieve
/// *comparable* application performance. At smoke scale on 4 nodes the two
/// implementations stay within a modest factor for every application.
#[test]
fn application_performance_is_comparable() {
    use apps::ProtoImpl;
    for app in bench::TABLE3_APPS {
        let k = bench::run_app(app, ProtoImpl::KernelSpace, 4, bench::Scale::Small)
            .elapsed
            .as_secs_f64();
        let u = bench::run_app(app, ProtoImpl::UserSpace, 4, bench::Scale::Small)
            .elapsed
            .as_secs_f64();
        let ratio = u / k;
        assert!(
            (0.5..1.5).contains(&ratio),
            "{app}: user/kernel runtime ratio {ratio:.2} is not 'comparable'"
        );
    }
}
