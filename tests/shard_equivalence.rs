//! Shard-equivalence suite: the conservative windowed driver must be
//! *observationally identical* for any runner-thread count. Scheduler pick
//! order, RNG draws, trace emission, and window boundaries all live above
//! the runner seam — which OS thread drives a lane never changes what the
//! lane executes — so every pinned artefact in this repository must come
//! out byte-identical for `shards` 1, 2, and auto, on both execution
//! backends.
//!
//! Two layers of evidence:
//!
//! 1. every pinned single-lane artefact (golden trace renders, Table 1 spot
//!    values, chaos golden hashes, the 100-run sweep aggregate) replayed
//!    under each shard count;
//! 2. a genuinely multi-lane topology — segments on dedicated lanes joined
//!    by a cross-lane switch, with static crash/partition faults and wire
//!    loss drawing from per-lane RNGs — whose full observable surface
//!    (traces, stats, counts, clocks) is compared across shard counts.
//!
//! The shard override is process-global state, like the backend override;
//! every test serializes on one mutex and restores the override before
//! releasing it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use amoeba::CostModel;
use bench::selfperf::chaos_sweep_perf;
use bench::{group_trace, rpc_trace, Which};
use chaos::engine::{run_chaos, ChaosConfig};
use chaos::plan::{FaultPlan, TimedFault, TimedKind};
use chaos::Stack;
use desim::{
    set_backend_override, set_shards_override, us, Backend, LaneId, SimDuration, SimTime,
    Simulation,
};
use ethernet::{Dest, MacAddr, NetConfig, Network, SegmentId};

/// Serializes tests that flip process-wide overrides (shards, backend).
fn override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// The shard counts every artefact is checked under: serial, two runner
/// threads, and auto (one per host core).
const SHARD_COUNTS: [usize; 3] = [1, 2, 0];

fn shards_label(n: usize) -> &'static str {
    match n {
        0 => "auto",
        1 => "1",
        2 => "2",
        _ => "n",
    }
}

/// Runs `f` once per shard count (via the process override, the same knob
/// the harnesses' internally-built simulations consult) and returns the
/// results for comparison. Takes the override lock itself.
fn on_each_shard_count<T>(mut f: impl FnMut() -> T) -> Vec<(usize, T)> {
    let _guard = override_lock();
    let mut out = Vec::new();
    for shards in SHARD_COUNTS {
        set_shards_override(Some(shards));
        out.push((shards, f()));
    }
    set_shards_override(None);
    out
}

/// Runs `f` under every backend × shard-count combination.
fn on_each_backend_and_shard_count<T>(mut f: impl FnMut() -> T) -> Vec<(Backend, usize, T)> {
    let _guard = override_lock();
    let mut out = Vec::new();
    for backend in [Backend::OsThreads, Backend::Fibers] {
        if backend == Backend::Fibers && !Backend::fibers_supported() {
            continue;
        }
        set_backend_override(Some(backend));
        for shards in SHARD_COUNTS {
            set_shards_override(Some(shards));
            out.push((backend, shards, f()));
        }
    }
    set_shards_override(None);
    set_backend_override(None);
    out
}

#[test]
fn golden_traces_render_identically_across_shard_counts() {
    let cost = CostModel::default();
    let runs = on_each_backend_and_shard_count(|| {
        let mut renders: Vec<String> = Vec::new();
        for which in [Which::Kernel, Which::User] {
            let rpc = rpc_trace(1024, which, &cost, 1);
            renders.extend(rpc.events.iter().map(|e| e.render()));
            let group = group_trace(1024, which, &cost, 1);
            renders.extend(group.events.iter().map(|e| e.render()));
        }
        renders
    });
    let (b0, s0, first) = &runs[0];
    for (backend, shards, renders) in &runs[1..] {
        assert_eq!(
            first,
            renders,
            "rendered traces diverged: {b0}/shards={} vs {backend}/shards={}",
            shards_label(*s0),
            shards_label(*shards)
        );
    }
}

#[test]
fn table1_spot_values_identical_across_shard_counts() {
    let cost = CostModel::default();
    let runs = on_each_backend_and_shard_count(|| {
        let mut spots = Vec::new();
        for size in [0usize, 1024] {
            for which in [Which::Kernel, Which::User] {
                spots.push(bench::rpc_latency(size, which, &cost));
                spots.push(bench::group_latency(size, which, &cost));
            }
        }
        spots
    });
    let (_, _, first) = &runs[0];
    for (backend, shards, spots) in &runs[1..] {
        assert_eq!(
            first,
            spots,
            "Table 1 spot latencies diverged on {backend}/shards={}",
            shards_label(*shards)
        );
    }
}

/// The frozen chaos plan of `tests/chaos_golden.rs`, with the same pinned
/// hashes: seeded receiver loss plus a sequencer crash/reboot mid-run.
fn golden_chaos_config(stack: Stack) -> ChaosConfig {
    let mut cfg = ChaosConfig::for_seed(stack, 0x60_1d, 12, 8, SimDuration::from_millis(500));
    cfg.plan = FaultPlan {
        rx_loss_prob: 0.05,
        timed: vec![TimedFault {
            at: SimDuration::from_millis(30),
            until: SimDuration::from_millis(90),
            kind: TimedKind::Crash(MacAddr(0)),
        }],
        ..FaultPlan::default()
    };
    cfg
}

#[test]
fn chaos_golden_hashes_pinned_under_every_shard_count() {
    const KERNEL_GOLDEN_HASH: u64 = 0x00be_a365_d90a_3418;
    const USER_GOLDEN_HASH: u64 = 0x08bb_c947_aebe_de62;
    let runs = on_each_backend_and_shard_count(|| {
        [
            run_chaos(&golden_chaos_config(Stack::Kernel)).trace_hash,
            run_chaos(&golden_chaos_config(Stack::User)).trace_hash,
        ]
    });
    for (backend, shards, [kernel, user]) in &runs {
        assert_eq!(
            *kernel,
            KERNEL_GOLDEN_HASH,
            "kernel chaos golden hash diverged on {backend}/shards={}",
            shards_label(*shards)
        );
        assert_eq!(
            *user,
            USER_GOLDEN_HASH,
            "user chaos golden hash diverged on {backend}/shards={}",
            shards_label(*shards)
        );
    }
}

#[test]
fn full_sweep_aggregate_hash_pinned_under_every_shard_count() {
    // The 50-seeds-per-stack sweep (100 chaos runs) folded to one FNV-1a
    // aggregate — every RNG draw, retransmission, and recovery path in 100
    // runs has to replay identically under every runner count.
    const SWEEP_AGGREGATE_HASH: u64 = 0x1b4a2b4b8ac97945;
    let runs = on_each_shard_count(|| chaos_sweep_perf(50, 1).aggregate_hash);
    for (shards, hash) in &runs {
        assert_eq!(
            *hash,
            SWEEP_AGGREGATE_HASH,
            "sweep aggregate hash diverged with shards={}",
            shards_label(*shards)
        );
    }
}

/// Everything observable about one multi-lane run.
#[derive(Debug, PartialEq)]
struct LanedArtifacts {
    events: u64,
    final_time: SimTime,
    lane_times: Vec<SimTime>,
    rx_counts: Vec<u64>,
    stats: ethernet::SegmentStats,
    lane_traces: Vec<Vec<String>>,
    trace_lines: Vec<String>,
}

/// A three-segment, three-lane switched Ethernet under static faults:
/// station 3 is crashed before the run, stations 0 and 2 are partitioned,
/// and 5% wire loss draws from each segment lane's own RNG. Station `i`
/// unicasts to station `i+1` (mod 4) and station 0 also broadcasts, so the
/// sharded switch's unicast and flood paths both carry traffic.
fn faulted_multiseg(seed: u64) -> LanedArtifacts {
    let mut sim = Simulation::builder().seed(seed).build();
    sim.enable_tracing_with_capacity(1 << 15);
    sim.enable_trace();
    let mut net = Network::new(NetConfig::default());
    let lanes = [LaneId::ZERO, sim.add_lane(), sim.add_lane()];
    let segs: Vec<SegmentId> = (0..3)
        .map(|i| net.add_segment_on(&mut sim, &format!("s{i}"), lanes[i]))
        .collect();
    net.add_switch(&mut sim, &segs, "sw");

    // Static faults, fixed before the run starts (the multi-lane contract).
    {
        let faults = net.faults();
        let mut f = faults.lock();
        f.wire_loss_prob = 0.05;
        f.crash(MacAddr(3));
        f.partition(MacAddr(0), MacAddr(2));
    }

    // Station home segments: 0 → s0, 1 → s1, 2 → s2, 3 → s1 (crashed).
    let homes = [0usize, 1, 2, 1];
    let counts: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, &home) in homes.iter().enumerate() {
        let lane = lanes[home];
        let nic = net.attach(MacAddr(i as u32), segs[home]);
        let dst = MacAddr(((i + 1) % 4) as u32);
        let tx_proc = sim.add_processor_on(lane, &format!("station{i}"));
        sim.spawn_on_lane(lane, tx_proc, &format!("tx{i}"), {
            let nic = nic.clone();
            move |ctx| {
                let payload = bytes::Bytes::from_static(&[0xAB; 48]);
                for round in 0..20u64 {
                    ctx.sleep(us(37 + 13 * round));
                    nic.send(ctx, Dest::Unicast(dst), payload.clone());
                    if i == 0 && round % 5 == 0 {
                        nic.send(ctx, Dest::Broadcast, payload.clone());
                    }
                }
            }
        });
        let count = Arc::clone(&counts[i]);
        sim.spawn_daemon_on_lane(lane, tx_proc, &format!("rx{i}"), move |ctx| {
            while nic.rx().recv(ctx).is_some() {
                count.fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    let report = sim.run().expect("faulted multiseg drains");
    LanedArtifacts {
        events: report.events,
        final_time: report.final_time,
        lane_times: lanes.iter().map(|&l| sim.lane_now(l)).collect(),
        rx_counts: counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        stats: net.total_stats(),
        lane_traces: lanes
            .iter()
            .map(|&l| {
                sim.lane_trace_events(l)
                    .iter()
                    .map(|e| e.render())
                    .collect()
            })
            .collect(),
        trace_lines: sim.take_trace(),
    }
}

/// A switch world where most lanes sit idle: eight segments on eight
/// scheduler lanes behind one switch, with traffic only between stations 0
/// (home segment 0) and 1 (home segment 4). The six idle lanes drain
/// immediately and their links never turn dirty, so every window exercises
/// the window engine's idle-lane skip and dirty-flag flush elision — while
/// the full observable surface must stay byte-identical across shard
/// counts and backends.
fn many_idle_lanes(seed: u64) -> (LanedArtifacts, desim::WindowStats) {
    let mut sim = Simulation::builder().seed(seed).build();
    sim.enable_tracing_with_capacity(1 << 15);
    sim.enable_trace();
    let mut net = Network::new(NetConfig::default());
    let lanes: Vec<LaneId> = (0..8)
        .map(|i| if i == 0 { LaneId::ZERO } else { sim.add_lane() })
        .collect();
    let segs: Vec<SegmentId> = (0..8)
        .map(|i| net.add_segment_on(&mut sim, &format!("s{i}"), lanes[i]))
        .collect();
    net.add_switch(&mut sim, &segs, "sw");

    let homes = [0usize, 4];
    let counts: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, &home) in homes.iter().enumerate() {
        let lane = lanes[home];
        let nic = net.attach(MacAddr(i as u32), segs[home]);
        let dst = MacAddr(((i + 1) % 2) as u32);
        let proc = sim.add_processor_on(lane, &format!("station{i}"));
        sim.spawn_on_lane(lane, proc, &format!("tx{i}"), {
            let nic = nic.clone();
            move |ctx| {
                let payload = bytes::Bytes::from_static(&[0xCD; 32]);
                for round in 0..12u64 {
                    ctx.sleep(us(41 + 17 * round));
                    nic.send(ctx, Dest::Unicast(dst), payload.clone());
                }
            }
        });
        let count = Arc::clone(&counts[i]);
        sim.spawn_daemon_on_lane(lane, proc, &format!("rx{i}"), move |ctx| {
            while nic.rx().recv(ctx).is_some() {
                count.fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    let report = sim.run().expect("idle-lane world drains");
    let artifacts = LanedArtifacts {
        events: report.events,
        final_time: report.final_time,
        lane_times: lanes.iter().map(|&l| sim.lane_now(l)).collect(),
        rx_counts: counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        stats: net.total_stats(),
        lane_traces: lanes
            .iter()
            .map(|&l| {
                sim.lane_trace_events(l)
                    .iter()
                    .map(|e| e.render())
                    .collect()
            })
            .collect(),
        trace_lines: sim.take_trace(),
    };
    // The gate wait is wall-clock; everything else in the block is part of
    // the deterministic surface and compared across cells below.
    let windows = desim::WindowStats {
        barrier_wait_ns: 0,
        ..sim.window_stats()
    };
    (artifacts, windows)
}

#[test]
fn many_idle_lane_topology_pins_the_skip_path() {
    let runs = on_each_backend_and_shard_count(|| many_idle_lanes(0x1D7E));
    let (b0, s0, (first, first_w)) = &runs[0];

    assert!(
        first.rx_counts[0] > 0 && first.rx_counts[1] > 0,
        "the two live stations must exchange traffic: {:?}",
        first.rx_counts
    );
    assert!(first_w.windows > 1, "the run spans windows: {first_w:?}");
    assert!(
        first_w.lanes_skipped > 0,
        "idle lanes must be skipped lock-free: {first_w:?}"
    );
    assert!(
        first_w.flushes_elided > first_w.flushes,
        "quiet links dominate this topology: {first_w:?}"
    );

    for (backend, shards, (artifacts, w)) in &runs[1..] {
        assert_eq!(
            (first, first_w),
            (artifacts, w),
            "idle-lane observables diverged: {b0}/shards={} vs {backend}/shards={}",
            shards_label(*s0),
            shards_label(*shards)
        );
    }
}

#[test]
fn faulted_multilane_topology_is_shard_count_independent() {
    let runs = on_each_backend_and_shard_count(|| faulted_multiseg(0xD15C));
    let (b0, s0, first) = &runs[0];

    // The topology must actually exercise what it claims to: cross-segment
    // delivery, wire-loss coin flips, and both static fault kinds.
    assert!(
        first.rx_counts[1] > 0 && first.rx_counts[2] > 0,
        "cross-segment unicasts must arrive: {:?}",
        first.rx_counts
    );
    assert_eq!(
        first.rx_counts[3], 0,
        "a crashed station must receive nothing"
    );
    assert!(first.stats.wire_drops > 0, "wire loss must fire");
    assert!(first.stats.down_tx_drops > 0, "crashed NIC must drop sends");
    assert!(
        first.stats.link_drops > 0,
        "partition/crash must drop deliveries"
    );

    for (backend, shards, artifacts) in &runs[1..] {
        assert_eq!(
            first,
            artifacts,
            "multi-lane observables diverged: {b0}/shards={} vs {backend}/shards={}",
            shards_label(*s0),
            shards_label(*shards)
        );
    }
}
