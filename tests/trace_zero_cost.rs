//! Acceptance tests for the tracing subsystem (ISSUE 1):
//!
//! - tracing is **zero-cost in virtual time** — enabling it changes no
//!   measured latency by a single nanosecond, and the Table 1 numbers with
//!   tracing off are bit-identical to the values recorded in EXPERIMENTS.md
//!   before the tracing layer existed;
//! - the chrome://tracing export is valid JSON carrying events from at
//!   least four layers of the stack;
//! - the trace-derived Section 4 budget agrees with the `ablation` bench's
//!   independent cost-zeroing measurement within 5%.

use amoeba::CostModel;
use bench::{
    budget_total, derive_budget, group_latency, group_latency_traced, rpc_latency,
    rpc_latency_traced, rpc_span, rpc_trace, Which,
};
use desim::{SimDuration, Simulation};

#[test]
fn tracing_is_zero_cost_in_virtual_time() {
    let cost = CostModel::default();
    for which in [Which::Kernel, Which::User] {
        for size in [0usize, 1024, 4096] {
            assert_eq!(
                rpc_latency(size, which, &cost),
                rpc_latency_traced(size, which, &cost),
                "rpc {which:?} @ {size}: tracing must not move the virtual clock"
            );
        }
        for size in [0usize, 1024] {
            assert_eq!(
                group_latency(size, which, &cost),
                group_latency_traced(size, which, &cost),
                "group {which:?} @ {size}: tracing must not move the virtual clock"
            );
        }
    }
}

/// The Table 1 spot values recorded in EXPERIMENTS.md were measured before
/// the tracing layer was woven through the stack; reproducing them at the
/// documented precision pins "bit-identical with tracing off" against the
/// pre-change outputs.
#[test]
fn table1_spot_values_match_pre_tracing_documented_outputs() {
    let cost = CostModel::default();
    let ms2 = |d: SimDuration| (d.as_millis_f64() * 100.0).round() / 100.0;
    assert_eq!(ms2(rpc_latency(0, Which::User, &cost)), 1.49);
    assert_eq!(ms2(rpc_latency(0, Which::Kernel, &cost)), 1.26);
    assert_eq!(ms2(group_latency(0, Which::User, &cost)), 1.60);
    assert_eq!(ms2(group_latency(0, Which::Kernel, &cost)), 1.27);
    assert_eq!(ms2(rpc_latency(1024, Which::User, &cost)), 2.42);
    assert_eq!(ms2(rpc_latency(1024, Which::Kernel, &cost)), 2.18);
}

#[test]
fn disabling_tracing_discards_state_and_restores_silence() {
    let mut sim = Simulation::new(7);
    sim.enable_tracing();
    sim.disable_tracing();
    assert!(sim.trace_events().is_empty());
    assert!(sim.trace_counters().is_empty());
    assert_eq!(sim.trace_dropped(), 0);
}

#[test]
fn chrome_trace_export_is_valid_json_with_four_layers() {
    let run = rpc_trace(0, Which::Kernel, &CostModel::default(), 1);
    json::validate(&run.chrome_json).expect("chrome trace must be valid JSON");
    for layer in ["sched", "net", "flip", "rpc"] {
        assert!(
            run.chrome_json.contains(&format!("\"cat\":\"{layer}\"")),
            "chrome trace must contain {layer}-layer events"
        );
    }
    // Spans arrive as paired Begin/End, instants carry a scope.
    assert!(run.chrome_json.contains("\"ph\":\"B\""));
    assert!(run.chrome_json.contains("\"ph\":\"E\""));
    assert!(run.chrome_json.contains("\"ph\":\"i\""));
}

fn pct_diff(a: f64, b: f64) -> f64 {
    100.0 * (a - b).abs() / b.abs().max(1e-9)
}

/// The tentpole cross-check: the budget summed from one traced null RPC
/// must agree with the `ablation` bench's methodology — re-running the
/// un-traced latency bench with one cost term zeroed and measuring the
/// drop — within 5%, term by term, on the user-space stack (whose critical
/// path has no concurrent off-path traffic, so the window sum is exact).
#[test]
fn trace_budget_agrees_with_ablation_within_5_percent() {
    let base = CostModel::default();
    let run = rpc_trace(0, Which::User, &base, 1);
    let (from, to) = rpc_span(&run.events).expect("span");
    let lines = derive_budget(&run.events, from, to);
    let term = |name: &str| -> f64 {
        lines
            .iter()
            .filter(|l| l.name == name)
            .map(|l| l.total.as_micros_f64())
            .sum()
    };

    // The whole budget accounts for the whole measured latency.
    let accounted = budget_total(&lines).as_micros_f64();
    let measured = run.latency.as_micros_f64();
    assert!(
        pct_diff(accounted, measured) <= 5.0,
        "budget accounts {accounted:.1} us of a {measured:.1} us span"
    );

    // Term by term against the ablation deltas.
    let base_lat = rpc_latency(0, Which::User, &base).as_micros_f64();
    let delta = |zero: &dyn Fn(&mut CostModel)| -> f64 {
        let mut c = base.clone();
        zero(&mut c);
        base_lat - rpc_latency(0, Which::User, &c).as_micros_f64()
    };

    let checks: [(&str, f64, f64); 4] = [
        (
            "context switches",
            term("switch"),
            delta(&|c| {
                c.context_switch = SimDuration::ZERO;
                c.sequencer_thread_switch = SimDuration::ZERO;
                c.sequencer_thread_switch_dedicated = SimDuration::ZERO;
            }),
        ),
        (
            "window traps + crossings",
            term("syscall") + term("window_trap"),
            delta(&|c| {
                c.window_trap = SimDuration::ZERO;
                c.syscall_enter = SimDuration::ZERO;
            }),
        ),
        (
            "double fragmentation",
            term("fragmentation_layer"),
            delta(&|c| c.fragmentation_layer = SimDuration::ZERO),
        ),
        (
            "untuned user FLIP iface",
            term("flip_user_interface"),
            delta(&|c| c.flip_user_interface = SimDuration::ZERO),
        ),
    ];
    for (name, traced_us, ablated_us) in checks {
        assert!(
            pct_diff(traced_us, ablated_us) <= 5.0,
            "{name}: trace-derived {traced_us:.1} us vs ablation {ablated_us:.1} us"
        );
    }
}

/// A minimal JSON validator — the build is offline and carries no JSON
/// dependency, and the exporter emits its output by hand, so the syntax is
/// checked from first principles.
mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i == b.len() {
            Ok(())
        } else {
            Err(format!("trailing garbage at byte {i}"))
        }
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => composite(b, i, b'}', true),
            Some(b'[') => composite(b, i, b']', false),
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, "true"),
            Some(b'f') => literal(b, i, "false"),
            Some(b'n') => literal(b, i, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            other => Err(format!("unexpected {other:?} at byte {i}")),
        }
    }

    fn composite(b: &[u8], i: &mut usize, close: u8, object: bool) -> Result<(), String> {
        *i += 1; // opening bracket
        skip_ws(b, i);
        if b.get(*i) == Some(&close) {
            *i += 1;
            return Ok(());
        }
        loop {
            if object {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
            }
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(c) if *c == close => {
                    *i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or close, got {other:?} at byte {i}")),
            }
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at byte {i}"));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => *i += 2,
                0x00..=0x1f => return Err(format!("raw control byte in string at {i}")),
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        while b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
            *i += 1;
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            if !b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
                return Err(format!("bad fraction at byte {i}"));
            }
            while b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
                *i += 1;
            }
        }
        if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
                *i += 1;
            }
            if !b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
                return Err(format!("bad exponent at byte {i}"));
            }
            while b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
                *i += 1;
            }
        }
        if *i == start {
            return Err(format!("expected number at byte {i}"));
        }
        Ok(())
    }

    fn literal(b: &[u8], i: &mut usize, word: &str) -> Result<(), String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {i}"))
        }
    }
}
