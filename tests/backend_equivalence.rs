//! Backend-equivalence suite (ISSUE 5, satellite 3): the fiber and
//! os-threads execution backends must be *observationally identical* —
//! virtual time, scheduler pick order, trace emission, and chaos coin-flip
//! order all live above the [`desim::Backend`] seam, so every pinned
//! artefact in this repository must come out byte-identical regardless of
//! which backend ran the simulated threads.
//!
//! The bench/chaos harnesses construct their simulations internally, so
//! these tests select the backend with [`desim::set_backend_override`].
//! The override is process-global state; every test serializes on one
//! mutex and restores the override before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use amoeba::CostModel;
use bench::selfperf::chaos_sweep_perf;
use bench::{group_trace, rpc_trace, Which};
use chaos::engine::{run_chaos, ChaosConfig};
use chaos::plan::{FaultPlan, TimedFault, TimedKind};
use chaos::Stack;
use desim::{set_backend_override, Backend, SimDuration};
use ethernet::MacAddr;

/// Serializes tests that flip the process-wide backend override.
fn override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` once per backend (skipping fibers where unsupported) and
/// returns the per-backend results for comparison.
fn on_each_backend<T>(mut f: impl FnMut() -> T) -> Vec<(Backend, T)> {
    let _guard = override_lock();
    let mut out = Vec::new();
    for backend in [Backend::OsThreads, Backend::Fibers] {
        if backend == Backend::Fibers && !Backend::fibers_supported() {
            continue;
        }
        set_backend_override(Some(backend));
        out.push((backend, f()));
    }
    set_backend_override(None);
    out
}

fn assert_all_equal<T: PartialEq + std::fmt::Debug>(results: &[(Backend, T)], label: &str) {
    let (first_backend, first) = &results[0];
    for (backend, value) in &results[1..] {
        assert_eq!(
            first, value,
            "{label}: {first_backend} and {backend} backends diverged"
        );
    }
}

#[test]
fn golden_traces_render_identically_across_backends() {
    let cost = CostModel::default();
    let runs = on_each_backend(|| {
        let mut renders: Vec<String> = Vec::new();
        for which in [Which::Kernel, Which::User] {
            let rpc = rpc_trace(1024, which, &cost, 1);
            renders.extend(rpc.events.iter().map(|e| e.render()));
            let group = group_trace(1024, which, &cost, 1);
            renders.extend(group.events.iter().map(|e| e.render()));
        }
        renders
    });
    assert_all_equal(&runs, "rendered RPC/group traces");
}

#[test]
fn table1_spot_values_identical_across_backends() {
    let cost = CostModel::default();
    let runs = on_each_backend(|| {
        let mut spots = Vec::new();
        for size in [0usize, 1024] {
            for which in [Which::Kernel, Which::User] {
                spots.push(bench::rpc_latency(size, which, &cost));
                spots.push(bench::group_latency(size, which, &cost));
            }
            spots.push(bench::system_layer_latency(size, false, &cost));
            spots.push(bench::system_layer_latency(size, true, &cost));
        }
        spots
    });
    assert_all_equal(&runs, "Table 1 spot latencies");
}

/// The frozen chaos plan of `tests/chaos_golden.rs`, with the same pinned
/// hashes: seeded receiver loss plus a sequencer crash/reboot mid-run.
fn golden_chaos_config(stack: Stack) -> ChaosConfig {
    let mut cfg = ChaosConfig::for_seed(stack, 0x60_1d, 12, 8, SimDuration::from_millis(500));
    cfg.plan = FaultPlan {
        rx_loss_prob: 0.05,
        timed: vec![TimedFault {
            at: SimDuration::from_millis(30),
            until: SimDuration::from_millis(90),
            kind: TimedKind::Crash(MacAddr(0)),
        }],
        ..FaultPlan::default()
    };
    cfg
}

#[test]
fn chaos_golden_hashes_pinned_on_both_backends() {
    const KERNEL_GOLDEN_HASH: u64 = 0x00be_a365_d90a_3418;
    const USER_GOLDEN_HASH: u64 = 0x08bb_c947_aebe_de62;
    let runs = on_each_backend(|| {
        [
            run_chaos(&golden_chaos_config(Stack::Kernel)).trace_hash,
            run_chaos(&golden_chaos_config(Stack::User)).trace_hash,
        ]
    });
    for (backend, [kernel, user]) in &runs {
        assert_eq!(
            *kernel, KERNEL_GOLDEN_HASH,
            "kernel chaos golden hash diverged on the {backend} backend"
        );
        assert_eq!(
            *user, USER_GOLDEN_HASH,
            "user chaos golden hash diverged on the {backend} backend"
        );
    }
}

#[test]
fn full_sweep_aggregate_hash_pinned_on_both_backends() {
    // The 50-seeds-per-stack sweep (100 chaos runs) folded to one FNV-1a
    // aggregate: the strongest single equivalence check in the repo —
    // every RNG draw, retransmission, and recovery path in 100 runs has
    // to replay identically for this to hold.
    const SWEEP_AGGREGATE_HASH: u64 = 0x1b4a2b4b8ac97945;
    let runs = on_each_backend(|| chaos_sweep_perf(50, 1).aggregate_hash);
    for (backend, hash) in &runs {
        assert_eq!(
            *hash, SWEEP_AGGREGATE_HASH,
            "sweep aggregate hash diverged on the {backend} backend"
        );
    }
}

#[test]
fn parallel_sweep_runs_fibers_inside_par_map_workers() {
    // par_map's workers are OS threads regardless of backend; with fibers
    // forced, every worker hosts fiber-backed simulations. jobs=1 and
    // jobs=8 must fold to the same aggregate.
    if !Backend::fibers_supported() {
        return;
    }
    let _guard = override_lock();
    set_backend_override(Some(Backend::Fibers));
    let serial = chaos_sweep_perf(8, 1);
    let parallel = chaos_sweep_perf(8, 8);
    set_backend_override(None);
    assert_eq!(serial.runs, parallel.runs);
    assert_eq!(
        serial.aggregate_hash, parallel.aggregate_hash,
        "jobs=1 vs jobs=8 sweep diverged with fibers in the workers"
    );
}
