//! Fault-path coverage (ISSUE 1, satellite 4): the promoted
//! `examples/fault_injection.rs`, as an integration test sweeping
//! receiver-side frame-loss rates on both stacks.
//!
//! FLIP is unreliable by contract, so each protocol stack carries its own
//! recovery: request retransmission with duplicate suppression for RPC,
//! sequencer history with gap repair for the group protocol. Under loss the
//! test asserts the end-to-end guarantees — every RPC executes exactly
//! once, and group delivery is gap-free, totally ordered, and identical at
//! every member — and uses the trace counters to check the *mechanism*:
//! lost frames surface as retransmissions or retransmission requests, and
//! re-sent requests that did reach the server are suppressed as duplicates,
//! never re-executed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use desim::trace::Layer;
use orca_panda::prelude::*;

struct FaultRun {
    executions: u64,
    /// Per-member sequence of delivered group payload tags, in order.
    deliveries: Vec<Vec<u64>>,
    rx_drops: u64,
    rpc_retransmits: u64,
    rpc_dup_suppressed: u64,
    group_recoveries: u64,
}

const RPCS: u64 = 30;
const BROADCASTS: u64 = 25;

fn run(kernel_space: bool, loss: f64) -> FaultRun {
    let mut sim = Simulation::new(0xfa_17);
    sim.enable_tracing_with_capacity(1 << 20);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "seg0");
    let machines: Vec<Machine> = (0..3)
        .map(|i| {
            Machine::boot(
                &mut sim,
                &mut net,
                seg,
                MacAddr(i),
                &format!("m{i}"),
                CostModel::default(),
            )
        })
        .collect();
    net.faults().lock().rx_loss_prob = loss;
    let nodes: Vec<Arc<dyn Panda>> = if kernel_space {
        KernelSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect()
    } else {
        UserSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect()
    };

    let executions = Arc::new(AtomicU64::new(0));
    let exec2 = Arc::clone(&executions);
    let replier = Arc::clone(&nodes[1]);
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, req, t| {
        exec2.fetch_add(1, Ordering::SeqCst);
        replier.reply(ctx, t, req);
    }));
    let deliveries: Arc<Vec<Mutex<Vec<u64>>>> =
        Arc::new((0..3).map(|_| Mutex::new(Vec::new())).collect());
    for (i, n) in nodes.iter().enumerate() {
        let deliveries = Arc::clone(&deliveries);
        n.set_group_handler(Arc::new(move |_ctx, d| {
            let tag = u64::from_be_bytes(d.payload[..8].try_into().expect("tagged payload"));
            deliveries[i].lock().unwrap().push(tag);
        }));
    }
    nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
    nodes[2].set_rpc_handler(Arc::new(|_, _, _, _| {}));

    let client = Arc::clone(&nodes[0]);
    sim.spawn(machines[0].proc(), "rpc-client", move |ctx| {
        for i in 0..RPCS {
            let body = Bytes::from(i.to_be_bytes().to_vec());
            let reply = client
                .rpc(ctx, 1, body.clone())
                .expect("rpc recovers from loss");
            assert_eq!(reply, body, "reply payload intact");
        }
    });
    let caster = Arc::clone(&nodes[2]);
    sim.spawn(machines[2].proc(), "broadcaster", move |ctx| {
        for i in 0..BROADCASTS {
            let mut payload = vec![9u8; 600];
            payload[..8].copy_from_slice(&i.to_be_bytes());
            caster
                .group_send(ctx, Bytes::from(payload))
                .expect("broadcast recovers");
        }
    });
    sim.run().expect("run");

    let counter = |layer: Layer, name: &str| -> u64 {
        sim.trace_counters()
            .iter()
            .filter(|c| c.layer == layer && c.name == name)
            .map(|c| c.count)
            .sum()
    };
    FaultRun {
        executions: executions.load(Ordering::SeqCst),
        deliveries: deliveries
            .iter()
            .map(|m| m.lock().unwrap().clone())
            .collect(),
        rx_drops: net.total_stats().rx_drops,
        rpc_retransmits: counter(Layer::Rpc, "retransmit"),
        rpc_dup_suppressed: counter(Layer::Rpc, "dup_suppressed"),
        group_recoveries: counter(Layer::Group, "retransmit")
            + counter(Layer::Group, "retrans_req_tx")
            + counter(Layer::Group, "retrans_req_rx"),
    }
}

fn check(kernel_space: bool, loss_pct: u32) {
    let label = if kernel_space {
        "kernel-space"
    } else {
        "user-space"
    };
    let r = run(kernel_space, f64::from(loss_pct) / 100.0);

    // At-most-once (here: exactly-once, since every call eventually
    // succeeded): retransmitted requests never re-execute the handler.
    assert_eq!(
        r.executions, RPCS,
        "{label} @ {loss_pct}%: every RPC must execute exactly once"
    );

    // Gap-free total order: all three members deliver the full tag sequence
    // in submission order, with no gap, duplicate, or reordering.
    let expected: Vec<u64> = (0..BROADCASTS).collect();
    for (i, got) in r.deliveries.iter().enumerate() {
        assert_eq!(
            got, &expected,
            "{label} @ {loss_pct}%: member {i} delivery order broken"
        );
    }

    if loss_pct == 0 {
        assert_eq!(r.rx_drops, 0, "{label}: no drops without injected loss");
        assert_eq!(
            r.rpc_retransmits + r.rpc_dup_suppressed + r.group_recoveries,
            0,
            "{label}: recovery machinery must stay idle on a clean network"
        );
    } else {
        // The sweep rates are high enough that this seed always drops
        // frames; recovery must have engaged for the run to have passed the
        // assertions above.
        assert!(
            r.rx_drops > 0,
            "{label} @ {loss_pct}%: faults were injected"
        );
        assert!(
            r.rpc_retransmits + r.group_recoveries > 0,
            "{label} @ {loss_pct}%: {} drops but no recovery traffic",
            r.rx_drops
        );
    }
}

#[test]
fn kernel_stack_recovers_across_loss_sweep() {
    for loss_pct in [0, 3, 6, 10] {
        check(true, loss_pct);
    }
}

#[test]
fn user_stack_recovers_across_loss_sweep() {
    for loss_pct in [0, 3, 6, 10] {
        check(false, loss_pct);
    }
}

/// Forcing the loss of *specific* frames (instead of a coin per delivery)
/// exercises the duplicate-suppression path deterministically: the first
/// transmission of a request is dropped, the retransmission executes, and
/// any further retransmission that races the reply is suppressed.
#[test]
fn duplicate_requests_are_suppressed_not_reexecuted() {
    for kernel_space in [true, false] {
        let r = run(kernel_space, 0.08);
        assert_eq!(r.executions, RPCS);
        assert!(
            r.rpc_retransmits > 0,
            "8% loss over {RPCS} calls must retransmit at least once"
        );
    }
}
