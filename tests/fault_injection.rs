//! Fault-path coverage: sweeps receiver-side loss, wire-level loss, and
//! forced targeted drops on both stacks (ISSUE 2 extends the original
//! rx-loss-only sweep).
//!
//! FLIP is unreliable by contract, so each protocol stack carries its own
//! recovery: request retransmission with duplicate suppression for RPC,
//! sequencer history with gap repair for the group protocol. Under loss the
//! test asserts the end-to-end guarantees — every RPC executes exactly
//! once, and group delivery is gap-free, totally ordered, and identical at
//! every member — and uses the trace counters to check the *mechanism*:
//! lost frames surface as retransmissions or retransmission requests, and
//! re-sent requests that did reach the server are suppressed as duplicates,
//! never re-executed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use chaos::testutil::{boot_machines, build_stack, Stack};
use desim::trace::Layer;
use ethernet::FaultState;
use orca_panda::prelude::*;

struct FaultRun {
    executions: u64,
    /// Per-member sequence of delivered group payload tags, in order.
    deliveries: Vec<Vec<u64>>,
    rx_drops: u64,
    wire_drops: u64,
    rpc_retransmits: u64,
    rpc_dup_suppressed: u64,
    group_recoveries: u64,
}

const RPCS: u64 = 30;
const BROADCASTS: u64 = 25;

fn run(kernel_space: bool, inject: impl FnOnce(&mut FaultState)) -> FaultRun {
    let mut sim = Simulation::new(0xfa_17);
    sim.enable_tracing_with_capacity(1 << 20);
    let world = boot_machines(&mut sim, 3);
    inject(&mut world.net.faults().lock());
    let stack = if kernel_space {
        Stack::Kernel
    } else {
        Stack::User
    };
    // Enable the kernel sequencer's laggard resync (off by default, to keep
    // the historical fault-free traces): wire-level loss can erase a tail
    // broadcast for *every* member at once, and with no later traffic to
    // reveal the gap only a sequencer-driven resync can close it.
    let config = PandaConfig {
        kernel_group_resync_interval: desim::SimDuration::from_millis(250),
        ..PandaConfig::default()
    };
    let nodes = build_stack(&mut sim, &world.machines, stack, &config);

    let executions = Arc::new(AtomicU64::new(0));
    let exec2 = Arc::clone(&executions);
    let replier = Arc::clone(&nodes[1]);
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, req, t| {
        exec2.fetch_add(1, Ordering::SeqCst);
        replier.reply(ctx, t, req);
    }));
    let deliveries: Arc<Vec<Mutex<Vec<u64>>>> =
        Arc::new((0..3).map(|_| Mutex::new(Vec::new())).collect());
    for (i, n) in nodes.iter().enumerate() {
        let deliveries = Arc::clone(&deliveries);
        n.set_group_handler(Arc::new(move |_ctx, d| {
            let tag = u64::from_be_bytes(d.payload[..8].try_into().expect("tagged payload"));
            deliveries[i].lock().unwrap().push(tag);
        }));
    }
    nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
    nodes[2].set_rpc_handler(Arc::new(|_, _, _, _| {}));

    let client = Arc::clone(&nodes[0]);
    sim.spawn(world.machines[0].proc(), "rpc-client", move |ctx| {
        for i in 0..RPCS {
            let body = Bytes::from(i.to_be_bytes().to_vec());
            let reply = client
                .rpc(ctx, 1, body.clone())
                .expect("rpc recovers from loss");
            assert_eq!(reply, body, "reply payload intact");
        }
    });
    let caster = Arc::clone(&nodes[2]);
    sim.spawn(world.machines[2].proc(), "broadcaster", move |ctx| {
        for i in 0..BROADCASTS {
            let mut payload = vec![9u8; 600];
            payload[..8].copy_from_slice(&i.to_be_bytes());
            caster
                .group_send(ctx, Bytes::from(payload))
                .expect("broadcast recovers");
        }
    });
    sim.run().expect("run");

    let counter = |layer: Layer, name: &str| -> u64 {
        sim.trace_counters()
            .iter()
            .filter(|c| c.layer == layer && c.name == name)
            .map(|c| c.count)
            .sum()
    };
    let stats = world.net.total_stats();
    FaultRun {
        executions: executions.load(Ordering::SeqCst),
        deliveries: deliveries
            .iter()
            .map(|m| m.lock().unwrap().clone())
            .collect(),
        rx_drops: stats.rx_drops,
        wire_drops: stats.wire_drops,
        rpc_retransmits: counter(Layer::Rpc, "retransmit"),
        rpc_dup_suppressed: counter(Layer::Rpc, "dup_suppressed"),
        group_recoveries: counter(Layer::Group, "retransmit")
            + counter(Layer::Group, "retrans_req_tx")
            + counter(Layer::Group, "retrans_req_rx")
            + counter(Layer::Group, "resync"),
    }
}

/// The end-to-end guarantees every faulted run must uphold.
fn assert_guarantees(r: &FaultRun, label: &str) {
    // At-most-once (here: exactly-once, since every call eventually
    // succeeded): retransmitted requests never re-execute the handler.
    assert_eq!(
        r.executions, RPCS,
        "{label}: every RPC must execute exactly once"
    );
    // Gap-free total order: all three members deliver the full tag sequence
    // in submission order, with no gap, duplicate, or reordering.
    let expected: Vec<u64> = (0..BROADCASTS).collect();
    for (i, got) in r.deliveries.iter().enumerate() {
        assert_eq!(got, &expected, "{label}: member {i} delivery order broken");
    }
}

fn check_rx_loss(kernel_space: bool, loss_pct: u32) {
    let label = if kernel_space {
        "kernel-space"
    } else {
        "user-space"
    };
    let r = run(kernel_space, |f| {
        f.rx_loss_prob = f64::from(loss_pct) / 100.0;
    });
    assert_guarantees(&r, &format!("{label} @ rx {loss_pct}%"));

    if loss_pct == 0 {
        assert_eq!(r.rx_drops, 0, "{label}: no drops without injected loss");
        assert_eq!(
            r.rpc_retransmits + r.rpc_dup_suppressed + r.group_recoveries,
            0,
            "{label}: recovery machinery must stay idle on a clean network"
        );
    } else {
        // The sweep rates are high enough that this seed always drops
        // frames; recovery must have engaged for the run to have passed the
        // assertions above.
        assert!(
            r.rx_drops > 0,
            "{label} @ {loss_pct}%: faults were injected"
        );
        assert!(
            r.rpc_retransmits + r.group_recoveries > 0,
            "{label} @ {loss_pct}%: {} drops but no recovery traffic",
            r.rx_drops
        );
    }
}

fn check_wire_loss(kernel_space: bool, loss_pct: u32) -> FaultRun {
    let label = if kernel_space {
        "kernel-space"
    } else {
        "user-space"
    };
    let r = run(kernel_space, |f| {
        f.wire_loss_prob = f64::from(loss_pct) / 100.0;
    });
    assert_guarantees(&r, &format!("{label} @ wire {loss_pct}%"));
    // Wire loss kills the frame for every receiver at once; it must show up
    // in the wire-drop counter, never the per-receiver one.
    assert!(
        r.wire_drops > 0,
        "{label} @ wire {loss_pct}%: faults were injected"
    );
    assert_eq!(r.rx_drops, 0, "{label}: wire loss is not a receiver drop");
    r
}

/// A single low-rate run can happen to drop only frames whose loss is
/// harmless (an ack, a status note), so the mechanism check — recovery
/// traffic actually flowed — is asserted over the whole sweep, while the
/// end-to-end guarantees hold at every rate individually.
fn wire_loss_sweep(kernel_space: bool) {
    let recovery: u64 = [4, 8, 12]
        .into_iter()
        .map(|pct| {
            let r = check_wire_loss(kernel_space, pct);
            r.rpc_retransmits + r.group_recoveries
        })
        .sum();
    assert!(
        recovery > 0,
        "wire-loss sweep never engaged recovery machinery"
    );
}

#[test]
fn kernel_stack_recovers_across_rx_loss_sweep() {
    for loss_pct in [0, 3, 6, 10] {
        check_rx_loss(true, loss_pct);
    }
}

#[test]
fn user_stack_recovers_across_rx_loss_sweep() {
    for loss_pct in [0, 3, 6, 10] {
        check_rx_loss(false, loss_pct);
    }
}

#[test]
fn kernel_stack_recovers_across_wire_loss_sweep() {
    wire_loss_sweep(true);
}

#[test]
fn user_stack_recovers_across_wire_loss_sweep() {
    wire_loss_sweep(false);
}

/// Forcing the loss of *specific* frames (instead of a coin per delivery)
/// exercises recovery deterministically: the first transmissions are
/// dropped on the wire unconditionally, the retransmissions get through,
/// and any retransmission that races a delayed reply is suppressed.
#[test]
fn forced_drops_recover_deterministically() {
    for kernel_space in [true, false] {
        let label = if kernel_space {
            "kernel-space"
        } else {
            "user-space"
        };
        let r = run(kernel_space, |f| f.force_drop_next = 4);
        assert_guarantees(&r, &format!("{label} force_drop_next=4"));
        assert_eq!(
            r.wire_drops, 4,
            "{label}: exactly the forced frames are dropped"
        );
        assert!(
            r.rpc_retransmits + r.group_recoveries > 0,
            "{label}: forced drops must engage recovery"
        );
    }
}

#[test]
fn duplicate_requests_are_suppressed_not_reexecuted() {
    for kernel_space in [true, false] {
        let r = run(kernel_space, |f| f.rx_loss_prob = 0.08);
        assert_eq!(r.executions, RPCS);
        assert!(
            r.rpc_retransmits > 0,
            "8% loss over {RPCS} calls must retransmit at least once"
        );
    }
}
