//! Scale-out determinism: the open-loop client fleet over the multi-segment
//! switch tree must produce bit-identical reports across execution backends
//! and shard counts.
//!
//! The small matrices run on every `cargo test`. The 1k- and 10k-machine
//! fleets are `#[ignore]`d (minutes of wall-clock in debug builds) and run
//! in release by the CI `scale-smoke` job and by hand:
//!
//! ```text
//! cargo test --release --test fleet_scale -- --ignored
//! ```

use apps::fleet::{run_fleet, FleetReport, FleetSpec, FleetStack, ThinkDist};
use desim::Backend;

/// Runs `spec` over {os-threads, fibers} × shards {1, 2, auto} and asserts
/// every run hashes identically. Returns the reference report.
fn assert_matrix_identical(spec: &FleetSpec) -> FleetReport {
    let reference = run_fleet(spec, Backend::OsThreads, 1);
    assert!(reference.ops > 0, "fleet did work: {}", reference.summary());
    for backend in [Backend::OsThreads, Backend::Fibers] {
        for shards in [1usize, 2, 0] {
            if backend == Backend::OsThreads && shards == 1 {
                continue; // the reference run
            }
            let r = run_fleet(spec, backend, shards);
            assert_eq!(
                r.result_hash(),
                reference.result_hash(),
                "fleet diverged on {backend:?} x shards {shards}:\n  ref {}\n  got {}",
                reference.summary(),
                r.summary(),
            );
        }
    }
    reference
}

fn percentiles_are_sane(r: &FleetReport) {
    assert!(r.p50().as_nanos() > 0, "p50 emitted: {}", r.summary());
    assert!(r.p99() >= r.p50(), "p99 >= p50: {}", r.summary());
    assert!(r.p999() >= r.p99(), "p999 >= p99: {}", r.summary());
    assert!(r.hist.max() >= r.p999(), "max >= p999: {}", r.summary());
    assert!(r.throughput() > 0.0, "throughput emitted: {}", r.summary());
}

#[test]
fn kernel_fleet_identical_across_backends_and_shards() {
    // 8 servers on the backbone, 88 clients over 11 leaves, 3 edge
    // switches, 4 scheduler lanes: every tree-routing and cross-lane path
    // is exercised.
    let mut spec = FleetSpec::new(96, 8, FleetStack::Kernel);
    spec.lanes = 4;
    spec.duration = desim::ms(60);
    spec.mean_think = desim::ms(6);
    let r = assert_matrix_identical(&spec);
    percentiles_are_sane(&r);
    assert_eq!(r.timeouts, 0, "no timeouts at this load: {}", r.summary());
    assert!(
        r.group_sends > 0,
        "group service exercised: {}",
        r.summary()
    );
}

#[test]
fn user_fleet_identical_across_backends_and_shards() {
    let mut spec = FleetSpec::new(48, 4, FleetStack::User);
    spec.lanes = 3;
    spec.duration = desim::ms(60);
    spec.mean_think = desim::ms(6);
    let r = assert_matrix_identical(&spec);
    percentiles_are_sane(&r);
    assert!(
        r.group_sends > 0,
        "group service exercised: {}",
        r.summary()
    );
}

#[test]
fn heavy_tailed_arrivals_are_deterministic_too() {
    let mut spec = FleetSpec::new(40, 4, FleetStack::Kernel);
    spec.lanes = 2;
    spec.think = ThinkDist::Pareto;
    spec.duration = desim::ms(60);
    spec.mean_think = desim::ms(6);
    let a = run_fleet(&spec, Backend::OsThreads, 1);
    let b = run_fleet(&spec, Backend::Fibers, 0);
    assert_eq!(a.result_hash(), b.result_hash());
    assert!(a.ops > 0);
}

/// 1k machines, both stacks. Release-only (CI `scale-smoke`).
#[test]
#[ignore = "minutes in debug builds; run with --release -- --ignored"]
fn fleet_scale_1k() {
    for stack in [FleetStack::Kernel, FleetStack::User] {
        let mut spec = FleetSpec::new(1024, 16, stack);
        spec.lanes = 8;
        spec.duration = desim::ms(50);
        spec.mean_think = desim::ms(25);
        spec.group_every = 64;
        let r = assert_matrix_identical(&spec);
        percentiles_are_sane(&r);
        println!("1k {}: {}", stack.name(), r.summary());
    }
}

/// The largest world the os-threads backend can host: every simulated
/// thread is a real OS thread costing ~4 VM mappings (stack + guard +
/// signal stack), so the default `vm.max_map_count` of 65530 caps a
/// process near 16k threads — about a 4k-machine kernel fleet at two
/// threads per machine. Full cross-backend × shard matrix. Release-only.
#[test]
#[ignore = "thousands of simulated threads; run with --release -- --ignored"]
fn fleet_scale_4k_cross_backend() {
    let mut spec = FleetSpec::new(4112, 16, FleetStack::Kernel);
    spec.lanes = 8;
    spec.duration = desim::ms(40);
    spec.mean_think = desim::ms(100);
    spec.group_every = 128;
    let r = assert_matrix_identical(&spec);
    percentiles_are_sane(&r);
    println!("4k kernel: {}", r.summary());
}

/// The 10k-machine fleet of the scale study, on the fiber backend: 20k+
/// fiber stacks are two mappings each, which fits the default
/// `vm.max_map_count`; 20k+ OS threads (four mappings each, see
/// [`fleet_scale_4k_cross_backend`]) do not, so os-threads sits this one
/// out and backend equivalence rests on the 4k matrix. Kernel stack only
/// (the user stack's five-plus threads per node would blow the same
/// budget). Asserts bit-identity across shard counts and emits the
/// percentile summary. Release-only.
#[test]
#[ignore = "tens of thousands of simulated threads; run with --release -- --ignored"]
fn fleet_scale_10k() {
    let mut spec = FleetSpec::new(10_016, 16, FleetStack::Kernel);
    spec.lanes = 8;
    spec.duration = desim::ms(40);
    spec.mean_think = desim::ms(200);
    spec.group_every = 256;
    let reference = run_fleet(&spec, Backend::Fibers, 1);
    assert!(reference.ops > 0, "fleet did work: {}", reference.summary());
    for shards in [2usize, 0] {
        let r = run_fleet(&spec, Backend::Fibers, shards);
        assert_eq!(
            r.result_hash(),
            reference.result_hash(),
            "10k fleet diverged on fibers x shards {shards}:\n  ref {}\n  got {}",
            reference.summary(),
            r.summary(),
        );
    }
    percentiles_are_sane(&reference);
    println!("10k kernel (fibers): {}", reference.summary());
}

/// The [`fleet_scale_10k`] world, single fibers run, pinned to its recorded
/// result hash. The shard matrix above proves the run is internally
/// consistent; this cell proves it is the *same* run the repo has always
/// produced — the regression gate for anything that touches event order at
/// true fleet depth (each lane's far tier holds thousands of pending think
/// timers here, so deep-queue bugs that 96-machine matrices never reach
/// surface as a hash flip). Release-only (CI `scale-smoke`).
#[test]
#[ignore = "tens of thousands of simulated threads; run with --release -- --ignored"]
fn fleet_scale_10k_pinned() {
    // Recorded on the binary-heap far tier and unchanged by the timer-wheel
    // far tier — pop order is the public invariant both implement.
    const PINNED_HASH: u64 = 0x9391712da17eb8b6;
    let mut spec = FleetSpec::new(10_016, 16, FleetStack::Kernel);
    spec.lanes = 8;
    spec.duration = desim::ms(40);
    spec.mean_think = desim::ms(200);
    spec.group_every = 256;
    let r = run_fleet(&spec, Backend::Fibers, 0);
    assert_eq!(
        r.result_hash(),
        PINNED_HASH,
        "10k fleet hash drifted from the recorded run (got {:#018x}):\n  {}",
        r.result_hash(),
        r.summary(),
    );
}
