//! Offline stand-in for the `bytes` crate, implementing the subset of the
//! API this workspace uses: cheaply cloneable immutable [`Bytes`] slices
//! backed by a shared allocation, a growable [`BytesMut`] builder, and the
//! [`BufMut`] write trait.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Clone for Repr {
    fn clone(&self) -> Repr {
        match self {
            Repr::Static(s) => Repr::Static(s),
            Repr::Shared(a) => Repr::Shared(Arc::clone(a)),
        }
    }
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            len: 0,
        }
    }

    /// Creates `Bytes` from a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(s),
            start: 0,
            len: s.len(),
        }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            begin <= end,
            "slice index starts at {begin} but ends at {end}"
        );
        assert!(
            end <= self.len,
            "range end out of bounds: {end} > {}",
            self.len
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            len: end - begin,
        }
    }

    /// Copies self into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        let base: &[u8] = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a.as_slice(),
        };
        &base[self.start..self.start + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Bytes {
        m.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A unique, growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut { buf: vec![0; len] }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Resizes the buffer, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Clears the buffer, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Number of bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.buf.clone()), f)
    }
}

/// Write-side buffer trait (subset: the `put_*` family).
pub trait BufMut {
    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_slice(&[val]);
        }
    }

    /// Appends an unsigned 8-bit integer.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian unsigned 16-bit integer.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian unsigned 32-bit integer.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian unsigned 64-bit integer.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian signed 64-bit integer.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian IEEE-754 double.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.buf.resize(self.buf.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds_check() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.slice(..).len(), 5);
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32(0xAABBCCDD);
        m.put_bytes(0, 3);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(&b[..], &[7, 0xAA, 0xBB, 0xCC, 0xDD, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn zeroed_is_writable() {
        let mut m = BytesMut::zeroed(4);
        m[1..3].copy_from_slice(&[9, 9]);
        assert_eq!(&m.freeze()[..], &[0, 9, 9, 0]);
    }
}
