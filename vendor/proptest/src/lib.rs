//! Offline stand-in for `proptest`: deterministic property testing with the
//! same surface syntax (the `proptest!` macro, strategies, `prop_assert*`)
//! but no shrinking — every case derives its inputs from a seed computed
//! from the test name and case index, so failures are exactly reproducible.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Per-case deterministic random source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Builds the generator for case `case` of test `name`.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Runner configuration (subset: number of cases per property).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter mapping values through a function.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// One arm of a [`Union`], erased to a generation closure.
    pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Strategy choosing uniformly among alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union from its arms.
        pub fn new(arms: Vec<UnionArm<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.arms.len())
                .finish()
        }
    }

    /// Erases a strategy into a [`Union`] arm (used by `prop_oneof!`).
    pub fn union_arm<S>(s: S) -> UnionArm<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.gen_value(rng))
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let i = rng.random_range(0..self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.random_range(0..span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.random_range(0..span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::{RngCore, RngExt};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mostly finite values, occasionally raw bit patterns (inf/NaN).
            if rng.random_range(0..8) == 0 {
                f64::from_bits(rng.next_u64())
            } else {
                rng.random::<f64>() * 2e6 - 1e6
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy for [`Arbitrary`] types (see [`any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy generating any `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with element strategy and length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.random_range(0..span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests. Each `#[test] fn name(pat in
/// strategy, ...) { body }` item expands to a normal test running the body
/// for each generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($s)),+])
    };
}

/// Asserts a condition inside a property (panics, failing the case).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 3u8..9,
            v in crate::collection::vec(any::<u8>(), 0..16),
            (op, arg) in (prop_oneof![Just(1u16), Just(2u16)], any::<i32>().prop_map(i64::from)),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 16);
            prop_assert!(op == 1 || op == 2);
            prop_assert_eq!(arg, arg);
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 1..8);
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
    }
}
