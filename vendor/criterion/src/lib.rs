//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness
//! with the same entry points (`Criterion::bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`). It runs a short warm-up, then a
//! fixed measurement pass, and prints mean time per iteration.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// The benchmark driver handed to each group function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs `f` as the benchmark named `id` and prints its mean time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up pass (discarded).
        f(&mut b);
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        f(&mut b);
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!(
            "{id:<40} {:>12.3} µs/iter ({} iters)",
            mean.as_secs_f64() * 1e6,
            b.iters
        );
        self
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records total time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Enough iterations for a stable mean without dragging out CI.
        const BATCH: u64 = 25;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs() {
        let mut c = super::Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
