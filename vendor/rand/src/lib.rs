//! Offline stand-in for the `rand` crate: a deterministic xoshiro256++
//! generator behind the small API surface this workspace uses
//! (`rngs::SmallRng`, [`SeedableRng::seed_from_u64`], and the
//! [`RngExt::random`]/[`RngExt::random_range`] extension methods).

use std::ops::Range;

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of type `T` from a generator.
pub trait SampleUniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUniform for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience extension methods, mirroring rand's `Rng`.
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a `u64` uniformly from `range` (rejection sampling, unbiased).
    fn random_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        if span.is_power_of_two() {
            return range.start + (self.next_u64() & (span - 1));
        }
        // Reject the tail that would bias the modulus.
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias matching rand's `Rng` name.
pub use self::RngExt as Rng;

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3..17);
            assert!((3..17).contains(&v));
        }
        let f: f64 = r.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
