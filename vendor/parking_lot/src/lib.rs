//! Offline stand-in for `parking_lot`, implementing the subset of the API
//! this workspace uses (`Mutex`, `MutexGuard`, `Condvar`, `RwLock`) on top
//! of `std::sync`. Poisoning is ignored, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock()` returns
/// the guard directly and never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can temporarily take the underlying std guard and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded mutex and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`] with a timeout. Returns true if it timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        res.timed_out()
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`'s unpoisoned API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().expect("join");
    }
}
