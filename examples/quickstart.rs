//! Quickstart: boot a two-machine Amoeba pool, run an RPC and a totally
//! ordered broadcast on *both* protocol implementations, and print the
//! virtual-time latencies the simulation measures.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use bytes::Bytes;
use orca_panda::prelude::*;

fn demo(kernel_space: bool) {
    let label = if kernel_space {
        "kernel-space"
    } else {
        "user-space"
    };
    let mut sim = Simulation::new(7);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "seg0");
    let machines: Vec<Machine> = (0..2)
        .map(|i| {
            Machine::boot(
                &mut sim,
                &mut net,
                seg,
                MacAddr(i),
                &format!("m{i}"),
                CostModel::default(),
            )
        })
        .collect();

    let nodes: Vec<Arc<dyn Panda>> = if kernel_space {
        KernelSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect()
    } else {
        UserSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect()
    };

    // Node 1 serves an uppercase service, replying from within the upcall.
    let replier = Arc::clone(&nodes[1]);
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _from, req, ticket| {
        let up: Vec<u8> = req.iter().map(|b| b.to_ascii_uppercase()).collect();
        replier.reply(ctx, ticket, Bytes::from(up));
    }));
    nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
    for n in &nodes {
        n.set_group_handler(Arc::new(|_ctx, d| {
            let _ = d; // deliveries observed here, in total order
        }));
    }

    let client = Arc::clone(&nodes[0]);
    let proc = machines[0].proc();
    let done = sim.spawn(proc, "client", move |ctx| {
        // Warm the route, then time one RPC and one broadcast.
        client
            .rpc(ctx, 1, Bytes::from_static(b"warmup"))
            .expect("rpc");
        let t0 = ctx.now();
        let reply = client
            .rpc(ctx, 1, Bytes::from_static(b"hello amoeba"))
            .expect("rpc");
        let rpc_time = ctx.now() - t0;
        assert_eq!(&reply[..], b"HELLO AMOEBA");
        let t0 = ctx.now();
        client
            .group_send(ctx, Bytes::from_static(b"ordered!"))
            .expect("broadcast");
        let grp_time = ctx.now() - t0;
        println!("  {label:<13} RPC {rpc_time}   totally-ordered broadcast {grp_time}");
    });
    sim.run_until_finished(&done).expect("run");
}

fn main() {
    println!("Two machines, 10 Mbit/s Ethernet, both Panda implementations:\n");
    demo(true);
    demo(false);
    println!("\n(kernel-space is faster at the primitive level — Table 1 of the paper;");
    println!(" run the benches to see where user space wins back at application level.)");
}
