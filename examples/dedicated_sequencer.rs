//! The LEQ effect in isolation: a broadcast-heavy workload overloads the
//! user-space sequencer's machine, because that machine handles every
//! ordering request *and* runs an application worker *and* pays the
//! interrupt-to-thread dispatch per message. Dedicating one machine to the
//! sequencer (the paper's `User-space-dedicated`) buys the performance back
//! at scale.
//!
//! Run with `cargo run --release --example dedicated_sequencer`.

use std::sync::Arc;

use bytes::Bytes;
use orca_panda::prelude::*;

#[derive(Clone, Copy)]
enum Config {
    Kernel,
    User,
    UserDedicated,
}

fn run(config: Config, workers: u32) -> f64 {
    let label = match config {
        Config::Kernel => "kernel-space",
        Config::User => "user-space",
        Config::UserDedicated => "user-space-dedicated",
    };
    let mut sim = Simulation::new(9);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "seg0");
    let total_machines = match config {
        Config::UserDedicated => workers + 1,
        _ => workers,
    };
    let machines: Vec<Machine> = (0..total_machines)
        .map(|i| {
            Machine::boot(
                &mut sim,
                &mut net,
                seg,
                MacAddr(i),
                &format!("m{i}"),
                CostModel::default(),
            )
        })
        .collect();
    let nodes: Vec<Arc<dyn Panda>> = match config {
        Config::Kernel => KernelSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect(),
        Config::User => UserSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect(),
        Config::UserDedicated => {
            let cfg = PandaConfig {
                dedicated_sequencer: true,
                ..PandaConfig::default()
            };
            UserSpacePanda::build(&mut sim, &machines, &cfg)
                .into_iter()
                .map(|p| p as Arc<dyn Panda>)
                .collect()
        }
    };
    for n in &nodes {
        n.set_group_handler(Arc::new(|_, _| {}));
        n.set_rpc_handler(Arc::new(|_, _, _, _| {}));
    }
    // Every worker interleaves compute with ordered broadcasts — the LEQ
    // iteration pattern.
    let rounds = 40u32;
    for n in nodes.iter() {
        let n = Arc::clone(n);
        let proc = n.machine().proc();
        sim.spawn(proc, &format!("worker{}", n.node()), move |ctx| {
            for _ in 0..rounds {
                ctx.compute(us(300));
                n.group_send(ctx, Bytes::from(vec![0u8; 256]))
                    .expect("broadcast");
            }
        });
    }
    sim.run().expect("run");
    let ms = sim.now().as_millis_f64();
    println!("  {label:<22} {workers:>2} workers: {ms:9.1} ms");
    ms
}

fn main() {
    println!("Broadcast-heavy workload (the LEQ pattern):\n");
    for workers in [4u32, 8, 16] {
        let kernel = run(Config::Kernel, workers);
        let user = run(Config::User, workers);
        let dedicated = run(Config::UserDedicated, workers);
        println!(
            "   -> user-space overhead {:+5.1}% vs kernel; dedicating the sequencer recovers {:+5.1}%\n",
            (user / kernel - 1.0) * 100.0,
            (1.0 - dedicated / user) * 100.0,
        );
    }
}
