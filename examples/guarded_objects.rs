//! The paper's sharpest application-level effect, isolated: a guarded
//! `BufGet` on a remote bounded buffer blocks until the owner fills it.
//! The Orca runtime parks the request as a **continuation**; when the owner
//! puts, the putting thread executes the blocked operation and replies.
//!
//! With the user-space implementation that reply is transmitted directly
//! from the putting thread. The kernel-space implementation must signal the
//! original `get_request` server thread (Amoeba demands `put_reply` from the
//! same thread), costing an extra context switch per blocked operation —
//! visible below in both the runtime and the context-switch counts.
//!
//! Run with `cargo run --release --example guarded_objects`.

use std::sync::Arc;

use orca::BufferHandle;
use orca_panda::prelude::*;

fn run(kernel_space: bool) -> (f64, u64) {
    let label = if kernel_space {
        "kernel-space"
    } else {
        "user-space"
    };
    let mut sim = Simulation::new(3);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "seg0");
    let machines: Vec<Machine> = (0..2)
        .map(|i| {
            Machine::boot(
                &mut sim,
                &mut net,
                seg,
                MacAddr(i),
                &format!("m{i}"),
                CostModel::default(),
            )
        })
        .collect();
    let nodes: Vec<Arc<dyn Panda>> = if kernel_space {
        KernelSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect()
    } else {
        UserSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect()
    };
    let world = OrcaWorld::build(&nodes);
    // The buffer lives on node 1 (the producer); node 0 does remote
    // guarded gets that block until the producer puts.
    let buf_id = ObjId(1);
    world.create_owned(buf_id, 1, || orca::BoundedBuffer::new(2));
    let rounds = 200u32;

    let rts0 = world.rts(0);
    let consumer = sim.spawn(machines[0].proc(), "consumer", move |ctx| {
        let buf = BufferHandle::new(Arc::clone(&rts0), buf_id);
        for _ in 0..rounds {
            let item = buf.get(ctx).expect("guarded get");
            assert_eq!(item.len(), 64);
        }
    });
    let rts1 = world.rts(1);
    sim.spawn(machines[1].proc(), "producer", move |ctx| {
        let buf = BufferHandle::new(Arc::clone(&rts1), buf_id);
        for _ in 0..rounds {
            // Simulate per-item work so the consumer's get usually blocks.
            ctx.compute(us(500));
            buf.put(ctx, &[7u8; 64]).expect("put");
        }
    });
    sim.run_until_finished(&consumer).expect("run");
    let elapsed = sim.now().as_millis_f64();
    let switches: u64 = sim.report().procs.iter().map(|p| p.switches).sum();
    println!(
        "  {label:<13} {rounds} blocked gets in {elapsed:8.1} ms, {switches:5} context switches"
    );
    (elapsed, switches)
}

fn main() {
    println!("Remote guarded BufGet resumed by the owner's BufPut:\n");
    let (t_kernel, sw_kernel) = run(true);
    let (t_user, sw_user) = run(false);
    println!("\nkernel-space: {t_kernel:.1} ms / {sw_kernel} switches;  user-space: {t_user:.1} ms / {sw_user} switches");
    println!("The kernel path must route each deferred reply back through the parked");
    println!("get_request daemon (signal + context switch); the user path replies");
    println!("directly from the mutating thread but pays its heavier send path.");
    println!("This tension decides Region Labeling's and SOR's Table 3 rows.");
}
