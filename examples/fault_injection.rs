//! Fault injection: FLIP is unreliable by contract, so both protocol stacks
//! carry their own recovery (request retransmission with duplicate
//! suppression; sequencer history with gap repair). This example drops a
//! configurable fraction of frames at receivers and shows that RPC stays
//! exactly-once and group delivery stays gap-free and totally ordered.
//!
//! Run with `cargo run --release --example fault_injection [loss-percent]`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use orca_panda::prelude::*;

fn run(kernel_space: bool, loss: f64) {
    let label = if kernel_space {
        "kernel-space"
    } else {
        "user-space"
    };
    let mut sim = Simulation::new(0xfa_17);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "seg0");
    let machines: Vec<Machine> = (0..3)
        .map(|i| {
            Machine::boot(
                &mut sim,
                &mut net,
                seg,
                MacAddr(i),
                &format!("m{i}"),
                CostModel::default(),
            )
        })
        .collect();
    net.faults().lock().rx_loss_prob = loss;
    let nodes: Vec<Arc<dyn Panda>> = if kernel_space {
        KernelSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect()
    } else {
        UserSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect()
    };

    // RPC server with an execution counter (exactly-once check).
    let executions = Arc::new(AtomicU64::new(0));
    let deliveries = Arc::new(AtomicU64::new(0));
    let exec2 = Arc::clone(&executions);
    let replier = Arc::clone(&nodes[1]);
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, req, t| {
        exec2.fetch_add(1, Ordering::SeqCst);
        replier.reply(ctx, t, req);
    }));
    for n in &nodes {
        let deliveries = Arc::clone(&deliveries);
        n.set_group_handler(Arc::new(move |_ctx, _d| {
            deliveries.fetch_add(1, Ordering::SeqCst);
        }));
    }
    nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
    nodes[2].set_rpc_handler(Arc::new(|_, _, _, _| {}));

    let rpcs = 40u64;
    let broadcasts = 30u64;
    let client = Arc::clone(&nodes[0]);
    sim.spawn(machines[0].proc(), "rpc-client", move |ctx| {
        for i in 0..rpcs {
            let body = Bytes::from(i.to_be_bytes().to_vec());
            let reply = client
                .rpc(ctx, 1, body.clone())
                .expect("rpc recovers from loss");
            assert_eq!(reply, body, "reply payload intact");
        }
    });
    let caster = Arc::clone(&nodes[2]);
    sim.spawn(machines[2].proc(), "broadcaster", move |ctx| {
        for _ in 0..broadcasts {
            caster
                .group_send(ctx, Bytes::from(vec![9u8; 600]))
                .expect("broadcast recovers");
        }
    });
    sim.run().expect("run");
    let drops = net.total_stats().rx_drops;
    println!(
        "  {label:<13} {rpcs} RPCs executed exactly once ({}), {} ordered deliveries (expected {}), {} frames dropped",
        executions.load(Ordering::SeqCst),
        deliveries.load(Ordering::SeqCst),
        broadcasts * 3,
        drops
    );
    assert_eq!(executions.load(Ordering::SeqCst), rpcs);
    assert_eq!(deliveries.load(Ordering::SeqCst), broadcasts * 3);
}

fn main() {
    let loss: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6.0);
    println!("Receiver-side frame loss {loss}% on every machine:\n");
    run(true, loss / 100.0);
    run(false, loss / 100.0);
    println!("\nBoth stacks recover: at-most-once RPC + gap-free total order.");
}
