//! Application-level integration tests: distributed runs must produce the
//! sequential reference answers on every protocol implementation, and basic
//! scaling/structural properties from the paper must hold even at toy scale.

use apps::{ProtoImpl, RunConfig};

const IMPLS: [ProtoImpl; 3] = [
    ProtoImpl::KernelSpace,
    ProtoImpl::UserSpace,
    ProtoImpl::UserSpaceDedicated,
];

#[test]
fn tsp_matches_sequential_everywhere() {
    let params = apps::tsp::TspParams::small();
    let inst = apps::tsp::Instance::generate(params.instance_seed, params.cities);
    let expected = apps::tsp::solve_sequential(&inst);
    for imp in IMPLS {
        for nodes in [1, 3] {
            let r = apps::tsp::run(&RunConfig::new(nodes, imp, 7), &params);
            assert_eq!(r.checksum, expected, "{imp} {nodes} nodes");
        }
    }
}

#[test]
fn asp_matches_sequential_everywhere() {
    let params = apps::asp::AspParams::small();
    let graph = apps::asp::generate_graph(params.instance_seed, params.vertices);
    let expected = apps::asp::solve_sequential(&graph);
    for imp in IMPLS {
        for nodes in [1, 4] {
            let r = apps::asp::run(&RunConfig::new(nodes, imp, 7), &params);
            assert_eq!(r.checksum, expected, "{imp} {nodes} nodes");
        }
    }
}

#[test]
fn ab_matches_sequential_everywhere() {
    let params = apps::ab::AbParams::small();
    let (expected, _) = apps::ab::solve_sequential(&params);
    for imp in IMPLS {
        for nodes in [1, 3] {
            let r = apps::ab::run(&RunConfig::new(nodes, imp, 7), &params);
            assert_eq!(r.checksum, expected, "{imp} {nodes} nodes");
        }
    }
}

#[test]
fn rl_matches_sequential_everywhere() {
    let params = apps::rl::RlParams::small();
    let expected = apps::rl::solve_sequential(&params);
    for imp in IMPLS {
        for nodes in [1, 3] {
            let r = apps::rl::run(&RunConfig::new(nodes, imp, 7), &params);
            assert_eq!(r.checksum, expected, "{imp} {nodes} nodes");
        }
    }
}

#[test]
fn sor_matches_sequential_everywhere() {
    let params = apps::sor::SorParams::small();
    let expected = apps::sor::solve_sequential(&params);
    for imp in IMPLS {
        for nodes in [1, 3] {
            let r = apps::sor::run(&RunConfig::new(nodes, imp, 7), &params);
            assert_eq!(r.checksum, expected, "{imp} {nodes} nodes (bit-exact)");
        }
    }
}

#[test]
fn leq_matches_sequential_everywhere() {
    let params = apps::leq::LeqParams::small();
    let expected = apps::leq::solve_sequential(&params);
    for imp in IMPLS {
        for nodes in [1, 4] {
            let r = apps::leq::run(&RunConfig::new(nodes, imp, 7), &params);
            assert_eq!(r.checksum, expected, "{imp} {nodes} nodes (bit-exact)");
        }
    }
}

#[test]
fn parallelism_speeds_up_the_coarse_grained_apps() {
    let params = apps::tsp::TspParams::small();
    let t1 = apps::tsp::run(&RunConfig::new(1, ProtoImpl::UserSpace, 7), &params).elapsed;
    let t4 = apps::tsp::run(&RunConfig::new(4, ProtoImpl::UserSpace, 7), &params).elapsed;
    let speedup = t1.as_secs_f64() / t4.as_secs_f64();
    // At toy scale the promising-first job order prunes so aggressively that
    // one subtree dominates; full-scale speedups are measured in Table 3.
    assert!(
        speedup > 1.5,
        "TSP on 4 nodes should still speed up, got {speedup:.2}"
    );
}

#[test]
fn rl_uses_guarded_buffer_continuations() {
    let params = apps::rl::RlParams::small();
    let r = apps::rl::run(&RunConfig::new(3, ProtoImpl::UserSpace, 7), &params);
    assert!(
        r.rts.continuations_queued > 0,
        "remote BufGet must block and be queued as continuations"
    );
    assert_eq!(r.rts.continuations_queued, r.rts.continuations_resumed);
}

#[test]
fn leq_broadcast_count_scales_with_nodes() {
    let params = apps::leq::LeqParams::small();
    let r4 = apps::leq::run(&RunConfig::new(4, ProtoImpl::KernelSpace, 7), &params);
    let r2 = apps::leq::run(&RunConfig::new(2, ProtoImpl::KernelSpace, 7), &params);
    // One broadcast per node per iteration (plus barrier-free assembly).
    assert_eq!(
        r4.rts.broadcasts,
        u64::from(params.iterations) * 4,
        "4-node broadcast count"
    );
    assert_eq!(r2.rts.broadcasts, u64::from(params.iterations) * 2);
}

#[test]
fn asp_broadcast_count_matches_vertices() {
    // The paper: one group message per pivot row (768 at full scale).
    let params = apps::asp::AspParams::small();
    let r = apps::asp::run(&RunConfig::new(4, ProtoImpl::KernelSpace, 7), &params);
    assert_eq!(r.rts.broadcasts, params.vertices as u64);
}
