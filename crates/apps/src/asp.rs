//! All-Pairs Shortest Paths: the Floyd–Warshall iteration with one pivot-row
//! broadcast per iteration.
//!
//! The paper's instance sends **768 group messages** (one per pivot row) of
//! about 3200 bytes; the moderate speedup comes from the ~5 ms latency each
//! broadcast costs (Section 5). Rows live in a replicated iteration board:
//! the pivot row's owner publishes it (a totally ordered broadcast); every
//! node reads it locally with a guarded operation.

use desim::SimDuration;
use orca::{BoardHandle, ObjId};

use crate::harness::{build_cluster, report, run_workers, AppReport, RunConfig};

/// ASP workload parameters.
#[derive(Debug, Clone)]
pub struct AspParams {
    /// Number of vertices (also the number of iterations/broadcasts).
    pub vertices: usize,
    /// Seed for the random graph.
    pub instance_seed: u64,
    /// Virtual CPU time charged per edge relaxation.
    pub relax_cost: SimDuration,
}

impl AspParams {
    /// Paper scale: 768 vertices, one broadcast per pivot (768 messages of
    /// 768·4 ≈ 3 KB), calibrated to roughly 213 virtual seconds on one node.
    pub fn paper() -> Self {
        AspParams {
            vertices: 768,
            instance_seed: 0xa59,
            relax_cost: SimDuration::from_nanos(470),
        }
    }

    /// A small instance for fast tests.
    pub fn small() -> Self {
        AspParams {
            vertices: 48,
            instance_seed: 0xa59,
            relax_cost: SimDuration::from_nanos(470),
        }
    }
}

const INF: i32 = i32::MAX / 4;

/// Deterministic random digraph as an adjacency matrix of edge weights.
pub fn generate_graph(seed: u64, n: usize) -> Vec<Vec<i32>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut m = vec![vec![INF; n]; n];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 0;
        for (j, cell) in row.iter_mut().enumerate() {
            if i != j && next() % 100 < 20 {
                *cell = (next() % 1000) as i32 + 1;
            }
        }
    }
    // A Hamiltonian cycle of heavy edges keeps the graph connected.
    for i in 0..n {
        let j = (i + 1) % n;
        m[i][j] = m[i][j].min(1000 + (next() % 100) as i32);
    }
    m
}

/// Sequential Floyd–Warshall (reference for correctness tests).
pub fn solve_sequential(graph: &[Vec<i32>]) -> i64 {
    let n = graph.len();
    let mut d: Vec<Vec<i32>> = graph.to_vec();
    for k in 0..n {
        for i in 0..n {
            let dik = d[i][k];
            if dik >= INF {
                continue;
            }
            for j in 0..n {
                let via = dik + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    checksum(&d)
}

/// Distance-matrix checksum: XOR of per-row hashes, so it composes the same
/// way regardless of how rows are partitioned over nodes.
pub fn checksum(d: &[Vec<i32>]) -> i64 {
    d.iter().fold(0i64, |acc, row| acc ^ row_hash(row))
}

/// Order-sensitive hash of one row.
pub fn row_hash(row: &[i32]) -> i64 {
    let mut h = 0x9e37i64;
    for &v in row {
        if v < INF {
            h = h.wrapping_mul(31).wrapping_add(i64::from(v));
        } else {
            h = h.wrapping_mul(37);
        }
    }
    h
}

const BOARD_OBJ: ObjId = ObjId(1);

fn rows_of(node: u32, nodes: u32, n: usize) -> std::ops::Range<usize> {
    let per = n / nodes as usize;
    let extra = n % nodes as usize;
    let start = node as usize * per + (node as usize).min(extra);
    let len = per + usize::from((node as usize) < extra);
    start..start + len
}

/// Runs ASP; the checksum is the distance-matrix checksum of node 0's rows
/// combined across nodes deterministically (verified equal across runs).
pub fn run(cfg: &RunConfig, params: &AspParams) -> AppReport {
    let graph = std::sync::Arc::new(generate_graph(params.instance_seed, params.vertices));
    let mut cluster = build_cluster(cfg);
    cluster
        .world
        .create_replicated(BOARD_OBJ, orca::IterBoard::new);
    let params = params.clone();
    let (elapsed, results) = run_workers(&mut cluster, move |ctx, node, rts| {
        let board = BoardHandle::new(std::sync::Arc::clone(&rts), BOARD_OBJ);
        let n = params.vertices;
        let nodes = rts.nodes();
        let my_rows = rows_of(node, nodes, n);
        let mut block: Vec<Vec<i32>> = my_rows.clone().map(|i| graph[i].clone()).collect();
        for k in 0..n {
            // The owner of pivot row k broadcasts it.
            let owner = (0..nodes)
                .find(|&m| rows_of(m, nodes, n).contains(&k))
                .expect("owner");
            if owner == node {
                let local_k = k - rows_of(node, nodes, n).start;
                let mut buf = Vec::with_capacity(n * 4);
                for &v in &block[local_k] {
                    buf.extend_from_slice(&v.to_be_bytes());
                }
                board.publish(ctx, k as u64, 0, &buf).expect("publish row");
            }
            // Everyone (including the owner) reads it back — a local guarded
            // read that blocks until the broadcast has been applied.
            let row_bytes = board.get(ctx, k as u64, 0).expect("pivot row");
            let row_k: Vec<i32> = row_bytes
                .chunks_exact(4)
                .map(|c| i32::from_be_bytes(c.try_into().expect("4 bytes")))
                .collect();
            // Relax this node's block against the pivot row.
            let mut relaxations = 0u64;
            for row in block.iter_mut() {
                let dik = row[k];
                if dik >= INF {
                    continue;
                }
                for (j, cell) in row.iter_mut().enumerate() {
                    let via = dik + row_k[j];
                    if via < *cell {
                        *cell = via;
                    }
                }
                relaxations += n as u64;
            }
            ctx.compute_sliced(
                params.relax_cost * relaxations.max(1),
                crate::harness::CPU_QUANTUM,
            );
        }
        // Fold the block into a partition-independent checksum.
        block.iter().fold(0i64, |acc, row| acc ^ row_hash(row))
    });
    // XOR of per-node checksums == checksum of the whole matrix.
    let combined = results.iter().fold(0i64, |a, r| a ^ r);
    report("asp", cfg, &cluster, elapsed, combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_partition_covers_everything() {
        for nodes in [1u32, 3, 8, 32] {
            let n = 100;
            let mut covered = vec![false; n];
            for node in 0..nodes {
                for i in rows_of(node, nodes, n) {
                    assert!(!covered[i], "row {i} assigned twice");
                    covered[i] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "all rows assigned");
        }
    }

    #[test]
    fn sequential_fw_reasonable() {
        let g = generate_graph(1, 16);
        let c1 = solve_sequential(&g);
        let c2 = solve_sequential(&g);
        assert_eq!(c1, c2);
    }

    #[test]
    fn paper_row_size_near_3200_bytes() {
        // 768 vertices * 4 bytes = 3072 B payload per broadcast, close to
        // the ~3200-byte messages the paper reports.
        assert_eq!(AspParams::paper().vertices * 4, 3072);
    }
}
