//! Parallel Alpha-Beta game-tree search.
//!
//! Root children are distributed through a central job queue; the best score
//! found so far is a replicated object used as the shared alpha bound.
//! The paper's observation reproduces structurally: parallel workers search
//! sibling subtrees with stale bounds, so the total node count grows with
//! the processor count ("efficient pruning in parallel α-β search is a known
//! hard problem") and speedups stay poor.

use desim::SimDuration;
use orca::{IntHandle, ObjId, QueueHandle};

use crate::harness::{build_cluster, report, run_workers, AppReport, RunConfig};

/// Alpha-Beta workload parameters.
#[derive(Debug, Clone)]
pub struct AbParams {
    /// Branching factor at the root (== number of jobs).
    pub root_branching: u32,
    /// Branching factor below the root.
    pub branching: u32,
    /// Total tree depth (root at depth 0, leaves at `depth`).
    pub depth: u32,
    /// Seed mixed into leaf evaluations.
    pub instance_seed: u64,
    /// Virtual CPU time charged per visited tree node.
    pub visit_cost: SimDuration,
}

impl AbParams {
    /// Paper-scale tree, calibrated to roughly 565 virtual seconds on one
    /// node (Table 3).
    pub fn paper() -> Self {
        AbParams {
            root_branching: 64,
            branching: 8,
            depth: 7,
            instance_seed: 0xab5,
            visit_cost: SimDuration::from_micros(787),
        }
    }

    /// A small tree for fast tests.
    pub fn small() -> Self {
        AbParams {
            root_branching: 8,
            branching: 4,
            depth: 4,
            instance_seed: 0xab5,
            visit_cost: SimDuration::from_micros(50),
        }
    }
}

const SCORE_INF: i64 = 1 << 40;

/// Deterministic leaf value from the path signature.
fn leaf_value(seed: u64, sig: u64) -> i64 {
    let mut x = sig ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    (x % 2001) as i64 - 1000
}

/// Fail-soft negamax with alpha-beta pruning. `sig` identifies the node
/// path; `on_visit` fires per node for CPU accounting.
fn negamax(
    p: &AbParams,
    sig: u64,
    depth: u32,
    mut alpha: i64,
    beta: i64,
    on_visit: &mut impl FnMut(),
) -> i64 {
    on_visit();
    if depth == p.depth {
        return leaf_value(p.instance_seed, sig);
    }
    let mut best = -SCORE_INF;
    for child in 0..p.branching {
        let child_sig = sig.wrapping_mul(131).wrapping_add(u64::from(child) + 1);
        let v = -negamax(p, child_sig, depth + 1, -beta, -alpha, on_visit);
        if v > best {
            best = v;
        }
        if best > alpha {
            alpha = best;
        }
        if alpha >= beta {
            break;
        }
    }
    best
}

/// Sequential reference: full alpha-beta from the root.
pub fn solve_sequential(p: &AbParams) -> (i64, u64) {
    let mut visits = 0u64;
    let mut best = -SCORE_INF;
    for root_child in 0..p.root_branching {
        let sig = u64::from(root_child) + 1;
        let v = -negamax(p, sig, 1, -SCORE_INF, -best, &mut || visits += 1);
        if v > best {
            best = v;
        }
    }
    (best, visits)
}

const BEST_OBJ: ObjId = ObjId(1);
const QUEUE_OBJ: ObjId = ObjId(2);
const BARRIER_OBJ: ObjId = ObjId(3);

/// Runs parallel Alpha-Beta; the checksum is the root minimax value.
pub fn run(cfg: &RunConfig, params: &AbParams) -> AppReport {
    let mut cluster = build_cluster(cfg);
    // The replicated "best score so far". Stored negated so that the shared
    // object's min-update implements a max-update.
    cluster
        .world
        .create_replicated(BEST_OBJ, || orca::SharedInt::new(SCORE_INF));
    cluster
        .world
        .create_owned(QUEUE_OBJ, 0, orca::JobQueue::new);
    let n_nodes = cluster.world.nodes();
    cluster
        .world
        .create_replicated(BARRIER_OBJ, move || orca::Barrier::new(n_nodes));
    let params = params.clone();
    let (elapsed, results) = run_workers(&mut cluster, move |ctx, node, rts| {
        let best_neg = IntHandle::new(std::sync::Arc::clone(&rts), BEST_OBJ);
        let queue = QueueHandle::new(std::sync::Arc::clone(&rts), QUEUE_OBJ);
        if node == 0 {
            for child in 0..params.root_branching {
                queue.add(ctx, &child.to_be_bytes()).expect("add job");
            }
            queue.close(ctx).expect("close");
        }
        while let Some(job) = queue.get(ctx).expect("job") {
            let child = u32::from_be_bytes(job[..4].try_into().expect("4 bytes"));
            let sig = u64::from(child) + 1;
            // The freshest global bound serves as this subtree's alpha.
            let alpha = -best_neg.read(ctx).expect("bound");
            let mut pending = 0u64;
            let v = -negamax(&params, sig, 1, -SCORE_INF, -alpha, &mut || {
                pending += 1;
                if pending >= 64 {
                    ctx.compute_sliced(params.visit_cost * pending, crate::harness::CPU_QUANTUM);
                    pending = 0;
                }
            });
            if pending > 0 {
                ctx.compute_sliced(params.visit_cost * pending, crate::harness::CPU_QUANTUM);
            }
            if v > alpha {
                best_neg.min_update(ctx, -v).expect("bound update");
            }
        }
        // Barrier: its totally ordered arrive-broadcasts are delivered after
        // every earlier bound update, so the final read is globally agreed.
        orca::BarrierHandle::new(std::sync::Arc::clone(&rts), BARRIER_OBJ)
            .sync(ctx)
            .expect("final barrier");
        -best_neg.read(ctx).expect("final")
    });
    let checksum = results[0];
    for r in &results {
        assert_eq!(*r, checksum, "nodes agree on the minimax value");
    }
    report("ab", cfg, &cluster, elapsed, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_values_deterministic_and_bounded() {
        for sig in 0..100u64 {
            let v = leaf_value(7, sig);
            assert_eq!(v, leaf_value(7, sig));
            assert!((-1000..=1000).contains(&v));
        }
    }

    #[test]
    fn alpha_beta_equals_plain_minimax_on_small_tree() {
        let p = AbParams {
            root_branching: 3,
            branching: 3,
            depth: 3,
            instance_seed: 9,
            visit_cost: SimDuration::ZERO,
        };
        fn minimax(p: &AbParams, sig: u64, depth: u32) -> i64 {
            if depth == p.depth {
                return leaf_value(p.instance_seed, sig);
            }
            (0..p.branching)
                .map(|c| {
                    -minimax(
                        p,
                        sig.wrapping_mul(131).wrapping_add(u64::from(c) + 1),
                        depth + 1,
                    )
                })
                .max()
                .expect("children")
        }
        let brute: i64 = (0..p.root_branching)
            .map(|c| -minimax(&p, u64::from(c) + 1, 1))
            .max()
            .expect("roots");
        let (ab, _) = solve_sequential(&p);
        assert_eq!(ab, brute);
    }

    #[test]
    fn pruning_reduces_visits() {
        let p = AbParams::small();
        let (_, visits) = solve_sequential(&p);
        let full = u64::from(p.root_branching)
            * ((u64::from(p.branching).pow(p.depth) - 1) / (u64::from(p.branching) - 1));
        assert!(
            visits < full,
            "alpha-beta must visit fewer than {full} nodes, saw {visits}"
        );
    }
}
