//! Region Labeling: iterative connected-component labelling of a binary
//! image, row strips per processor, boundary rows exchanged through shared
//! buffer objects.
//!
//! The paper's fine-grained case: every iteration each node performs remote
//! guarded `BufGet` operations on its neighbours' buffers, which *block*
//! until the owner fills them. The kernel-space implementation pays an extra
//! context switch for each of those (Section 5: six seconds slower on 32
//! processors), while performance flattens beyond 16 processors as the
//! Ethernet saturates.

use bytes::Bytes;
use desim::SimDuration;
use orca::{BufferHandle, ObjId};

use crate::harness::{build_cluster, report, run_workers, AppReport, RunConfig};

/// Region Labeling workload parameters.
#[derive(Debug, Clone)]
pub struct RlParams {
    /// Grid side (the image is `size x size`).
    pub size: usize,
    /// Fixed iteration count (deterministic across node counts).
    pub iterations: u32,
    /// Seed for the blob image.
    pub instance_seed: u64,
    /// Virtual CPU time charged per cell visit.
    pub cell_cost: SimDuration,
}

impl RlParams {
    /// Paper-scale: calibrated to roughly 760 virtual seconds on one node.
    pub fn paper() -> Self {
        RlParams {
            size: 256,
            iterations: 1000,
            instance_seed: 0x71,
            cell_cost: SimDuration::from_nanos(11580),
        }
    }

    /// A small image for fast tests.
    pub fn small() -> Self {
        RlParams {
            size: 32,
            iterations: 12,
            instance_seed: 0x71,
            cell_cost: SimDuration::from_micros(10),
        }
    }
}

/// Generates a deterministic binary blob image (`true` = foreground).
pub fn generate_image(seed: u64, size: usize) -> Vec<Vec<bool>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut img = vec![vec![false; size]; size];
    let blobs = (size / 8).max(4);
    for _ in 0..blobs {
        let cx = (next() % size as u64) as i64;
        let cy = (next() % size as u64) as i64;
        let r = (next() % (size as u64 / 6).max(2)) as i64 + 2;
        for y in (cy - r).max(0)..(cy + r).min(size as i64) {
            for x in (cx - r).max(0)..(cx + r).min(size as i64) {
                if (x - cx).pow(2) + (y - cy).pow(2) <= r * r {
                    img[y as usize][x as usize] = true;
                }
            }
        }
    }
    img
}

type Labels = Vec<Vec<i64>>;

fn initial_labels(img: &[Vec<bool>]) -> Labels {
    let size = img.len();
    (0..size)
        .map(|y| {
            (0..size)
                .map(|x| if img[y][x] { (y * size + x) as i64 } else { -1 })
                .collect()
        })
        .collect()
}

/// One Jacobi-style labelling sweep of `rows[lo..hi]` using `above`/`below`
/// as the neighbouring boundary rows. Returns visited-cell count.
fn sweep(labels: &Labels, out: &mut Labels, above: Option<&[i64]>, below: Option<&[i64]>) -> u64 {
    let h = labels.len();
    let w = labels[0].len();
    let mut visits = 0u64;
    for y in 0..h {
        for x in 0..w {
            visits += 1;
            let cur = labels[y][x];
            if cur < 0 {
                out[y][x] = -1;
                continue;
            }
            let mut m = cur;
            let mut consider = |v: i64| {
                if v >= 0 && v < m {
                    m = v;
                }
            };
            if x > 0 {
                consider(labels[y][x - 1]);
            }
            if x + 1 < w {
                consider(labels[y][x + 1]);
            }
            if y > 0 {
                consider(labels[y - 1][x]);
            } else if let Some(a) = above {
                consider(a[x]);
            }
            if y + 1 < h {
                consider(labels[y + 1][x]);
            } else if let Some(b) = below {
                consider(b[x]);
            }
            out[y][x] = m;
        }
    }
    visits
}

/// Sequential reference run; returns the label checksum.
pub fn solve_sequential(params: &RlParams) -> i64 {
    let img = generate_image(params.instance_seed, params.size);
    let mut labels = initial_labels(&img);
    let mut next = labels.clone();
    for _ in 0..params.iterations {
        sweep(&labels, &mut next, None, None);
        std::mem::swap(&mut labels, &mut next);
    }
    checksum(&labels)
}

/// Partition-independent checksum of the final labels.
pub fn checksum(labels: &Labels) -> i64 {
    labels
        .iter()
        .map(|row| {
            let mut h = 17i64;
            for &v in row {
                h = h.wrapping_mul(31).wrapping_add(v);
            }
            h
        })
        .fold(0i64, |a, h| a ^ h)
}

fn strip_of(node: u32, nodes: u32, size: usize) -> std::ops::Range<usize> {
    let per = size / nodes as usize;
    let extra = size % nodes as usize;
    let start = node as usize * per + (node as usize).min(extra);
    let len = per + usize::from((node as usize) < extra);
    start..start + len
}

fn encode_row(row: &[i64]) -> Vec<u8> {
    let mut v = Vec::with_capacity(row.len() * 8);
    for &l in row {
        v.extend_from_slice(&l.to_be_bytes());
    }
    v
}

fn decode_row(b: &Bytes) -> Vec<i64> {
    b.chunks_exact(8)
        .map(|c| i64::from_be_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Buffer carrying node `i`'s bottom row down to node `i+1`; owned by `i`.
fn buf_down(i: u32) -> ObjId {
    ObjId(100 + i * 2)
}

/// Buffer carrying node `i+1`'s top row up to node `i`; owned by `i+1`.
fn buf_up(i: u32) -> ObjId {
    ObjId(101 + i * 2)
}

/// Runs Region Labeling; checksum is the final-label hash (identical across
/// implementations and node counts).
pub fn run(cfg: &RunConfig, params: &RlParams) -> AppReport {
    let mut cluster = build_cluster(cfg);
    let nodes = cluster.world.nodes();
    for i in 0..nodes.saturating_sub(1) {
        cluster
            .world
            .create_owned(buf_down(i), i, || orca::BoundedBuffer::new(2));
        cluster
            .world
            .create_owned(buf_up(i), i + 1, || orca::BoundedBuffer::new(2));
    }
    let params = params.clone();
    let (elapsed, results) = run_workers(&mut cluster, move |ctx, node, rts| {
        let nodes = rts.nodes();
        let img = generate_image(params.instance_seed, params.size);
        let all = initial_labels(&img);
        let strip = strip_of(node, nodes, params.size);
        let mut labels: Labels = all[strip.clone()].to_vec();
        let mut next: Labels = labels.clone();
        let up = (node > 0).then(|| {
            (
                BufferHandle::new(std::sync::Arc::clone(&rts), buf_up(node - 1)), // my top row goes up
                BufferHandle::new(std::sync::Arc::clone(&rts), buf_down(node - 1)), // neighbour's bottom row
            )
        });
        let down = (node + 1 < nodes).then(|| {
            (
                BufferHandle::new(std::sync::Arc::clone(&rts), buf_down(node)), // my bottom row goes down
                BufferHandle::new(std::sync::Arc::clone(&rts), buf_up(node)), // neighbour's top row
            )
        });
        for _ in 0..params.iterations {
            // Publish boundary rows (local put on own buffer for the
            // downward stream, remote put for the upward one).
            if let Some((my_top_out, _)) = &up {
                my_top_out
                    .put(ctx, &encode_row(&labels[0]))
                    .expect("put top row");
            }
            if let Some((my_bottom_out, _)) = &down {
                my_bottom_out
                    .put(ctx, &encode_row(labels.last().expect("non-empty strip")))
                    .expect("put bottom row");
            }
            // Fetch the neighbours' boundary rows (remote guarded BufGet —
            // blocks until the owner has put).
            let above = up
                .as_ref()
                .map(|(_, neigh)| decode_row(&neigh.get(ctx).expect("get above")));
            let below = down
                .as_ref()
                .map(|(_, neigh)| decode_row(&neigh.get(ctx).expect("get below")));
            let visits = sweep(&labels, &mut next, above.as_deref(), below.as_deref());
            std::mem::swap(&mut labels, &mut next);
            ctx.compute_sliced(params.cell_cost * visits, crate::harness::CPU_QUANTUM);
        }
        checksum(&labels)
    });
    let combined = results.iter().fold(0i64, |a, r| a ^ r);
    report("rl", cfg, &cluster, elapsed, combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_partition_the_grid() {
        for nodes in [1u32, 2, 7, 32] {
            let size = 64;
            let mut covered = vec![false; size];
            for node in 0..nodes {
                for r in strip_of(node, nodes, size) {
                    assert!(!covered[r]);
                    covered[r] = true;
                }
            }
            assert!(covered.iter().all(|&c| c));
        }
    }

    #[test]
    fn row_codec_roundtrip() {
        let row = vec![-1i64, 0, 5, 1 << 40];
        assert_eq!(decode_row(&Bytes::from(encode_row(&row))), row);
    }

    #[test]
    fn sequential_labelling_converges_to_component_minima() {
        let params = RlParams {
            size: 16,
            iterations: 40, // enough for full convergence at this size
            instance_seed: 3,
            cell_cost: SimDuration::ZERO,
        };
        let c1 = solve_sequential(&params);
        let more = RlParams {
            iterations: 60,
            ..params
        };
        assert_eq!(c1, solve_sequential(&more), "fully converged");
    }
}
