//! The Travelling Salesman Problem: replicated-bound branch-and-bound with a
//! central job queue (the paper's coarse-grained workhorse).
//!
//! Structure from Section 5: the frequently-read shortest-path bound is a
//! replicated object (reads are local; improvements broadcast), and workers
//! fetch jobs — depth-3 tour prefixes — from a central queue object. With 15
//! cities and a fixed first city that is exactly 14·13·12 = **2184 jobs**,
//! the number the paper reports. Superlinear speedups can occur because
//! parallel workers find good bounds early and change the pruning behaviour.

use bytes::Bytes;
use desim::{Ctx, SimDuration};
use orca::{IntHandle, ObjId, QueueHandle};

use crate::harness::{build_cluster, report, run_workers, AppReport, RunConfig};

/// TSP workload parameters.
#[derive(Debug, Clone)]
pub struct TspParams {
    /// Number of cities (city 0 is the fixed start).
    pub cities: usize,
    /// Tour-prefix depth used to generate jobs.
    pub job_depth: usize,
    /// Seed for the city layout.
    pub instance_seed: u64,
    /// Virtual CPU time charged per search-tree expansion.
    pub expansion_cost: SimDuration,
    /// Expansions between bound refreshes (local replicated reads).
    pub bound_check_interval: u64,
}

impl TspParams {
    /// The paper-scale instance: 15 cities, depth-3 prefixes = 2184 jobs,
    /// calibrated so one node runs for roughly the 790 virtual seconds of
    /// Table 3.
    pub fn paper() -> Self {
        TspParams {
            cities: 15,
            job_depth: 3,
            instance_seed: 0xa,
            expansion_cost: SimDuration::from_micros(333),
            bound_check_interval: 64,
        }
    }

    /// A small instance for fast tests.
    pub fn small() -> Self {
        TspParams {
            cities: 10,
            job_depth: 2,
            instance_seed: 0x7597,
            expansion_cost: SimDuration::from_micros(200),
            bound_check_interval: 32,
        }
    }
}

/// A TSP instance: symmetric distance matrix over clustered random cities.
#[derive(Debug, Clone)]
pub struct Instance {
    n: usize,
    dist: Vec<i64>,
    min_edge: Vec<i64>,
}

impl Instance {
    /// Generates a deterministic clustered instance.
    pub fn generate(seed: u64, n: usize) -> Instance {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Cities on a jittered ring: realistic enough, and branch-and-bound
        // prunes it well (a fully random or clustered layout blows the tree
        // up by orders of magnitude, which only changes the constant the
        // per-expansion cost is calibrated against).
        let pts: Vec<(i64, i64)> = (0..n)
            .map(|i| {
                let angle = i as f64 / n as f64 * std::f64::consts::TAU;
                let jitter_x = (next() % 440) as i64 - 220;
                let jitter_y = (next() % 440) as i64 - 220;
                (
                    (500.0 + 420.0 * angle.cos()) as i64 + jitter_x,
                    (500.0 + 420.0 * angle.sin()) as i64 + jitter_y,
                )
            })
            .collect();
        let mut dist = vec![0i64; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = (pts[i].0 - pts[j].0) as f64;
                let dy = (pts[i].1 - pts[j].1) as f64;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt().round() as i64;
            }
        }
        let min_edge = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| dist[i * n + j])
                    .min()
                    .expect("n >= 2")
            })
            .collect();
        Instance { n, dist, min_edge }
    }

    /// Distance between cities `i` and `j`.
    pub fn d(&self, i: usize, j: usize) -> i64 {
        self.dist[i * self.n + j]
    }

    /// A greedy nearest-neighbour tour length (the initial global bound).
    pub fn nearest_neighbour_bound(&self) -> i64 {
        let mut visited = 1u64;
        let mut at = 0usize;
        let mut len = 0i64;
        for _ in 1..self.n {
            let next = (0..self.n)
                .filter(|&j| visited & (1 << j) == 0)
                .min_by_key(|&j| self.d(at, j))
                .expect("unvisited city exists");
            len += self.d(at, next);
            visited |= 1 << next;
            at = next;
        }
        len + self.d(at, 0)
    }

    /// Admissible lower bound for completing a partial tour: the sum of the
    /// cheapest edges out of every unvisited city.
    fn completion_bound(&self, visited: u64) -> i64 {
        (0..self.n)
            .filter(|&j| visited & (1 << j) == 0)
            .map(|j| self.min_edge[j])
            .sum()
    }
}

/// Number of expansions the sequential solver performs (calibration aid).
pub fn sequential_expansions(inst: &Instance) -> u64 {
    let mut best = inst.nearest_neighbour_bound();
    let mut expansions = 0u64;
    dfs(inst, 0, 1, 0, &mut best, &mut expansions, &mut |_| {});
    expansions
}

/// Expansions needed to search one job prefix against a fixed bound
/// (calibration aid for job-size distribution).
pub fn job_expansions(inst: &Instance, job: &[u8], bound: i64) -> u64 {
    let mut visited = 1u64;
    let mut at = 0usize;
    let mut len = 0i64;
    for &c in job {
        let c = c as usize;
        len += inst.d(at, c);
        visited |= 1 << c;
        at = c;
    }
    let mut best = bound;
    let mut expansions = 0u64;
    dfs(
        inst,
        at,
        visited,
        len,
        &mut best,
        &mut expansions,
        &mut |_| {},
    );
    expansions
}

/// Exact sequential solver (reference for correctness tests).
pub fn solve_sequential(inst: &Instance) -> i64 {
    let mut best = inst.nearest_neighbour_bound();
    let mut expansions = 0u64;
    dfs(inst, 0, 1, 0, &mut best, &mut expansions, &mut |_| {});
    best
}

/// Depth-first branch and bound from (`at`, `visited`, `len`).
/// `on_expand` fires per tree node so callers can charge virtual CPU.
fn dfs(
    inst: &Instance,
    at: usize,
    visited: u64,
    len: i64,
    best: &mut i64,
    expansions: &mut u64,
    on_expand: &mut impl FnMut(u64),
) {
    *expansions += 1;
    on_expand(*expansions);
    if visited.count_ones() as usize == inst.n {
        let tour = len + inst.d(at, 0);
        if tour < *best {
            *best = tour;
        }
        return;
    }
    if len + inst.completion_bound(visited) >= *best {
        return;
    }
    // Nearest-first child order: finds good tours early.
    let mut children: Vec<usize> = (0..inst.n).filter(|&j| visited & (1 << j) == 0).collect();
    children.sort_by_key(|&j| inst.d(at, j));
    for j in children {
        let l = len + inst.d(at, j);
        if l + inst.completion_bound(visited | (1 << j)) < *best {
            dfs(inst, j, visited | (1 << j), l, best, expansions, on_expand);
        }
    }
}

/// Generates all depth-`depth` tour prefixes (the job list).
pub fn generate_jobs(n: usize, depth: usize) -> Vec<Vec<u8>> {
    let mut jobs = Vec::new();
    let mut prefix = Vec::new();
    gen_rec(n, depth, 1u64, 0, &mut prefix, &mut jobs);
    jobs
}

fn gen_rec(
    n: usize,
    depth: usize,
    visited: u64,
    _at: usize,
    prefix: &mut Vec<u8>,
    out: &mut Vec<Vec<u8>>,
) {
    if prefix.len() == depth {
        out.push(prefix.clone());
        return;
    }
    for j in 1..n {
        if visited & (1 << j) == 0 {
            prefix.push(j as u8);
            gen_rec(n, depth, visited | (1 << j), j, prefix, out);
            prefix.pop();
        }
    }
}

const BOUND_OBJ: ObjId = ObjId(1);
const QUEUE_OBJ: ObjId = ObjId(2);
const BARRIER_OBJ: ObjId = ObjId(3);

/// Runs TSP on the given cluster configuration; returns the run report.
/// The checksum is the optimal tour length (identical across protocol
/// implementations and node counts).
pub fn run(cfg: &RunConfig, params: &TspParams) -> AppReport {
    let inst = Instance::generate(params.instance_seed, params.cities);
    let initial_bound = inst.nearest_neighbour_bound();
    let mut cluster = build_cluster(cfg);
    cluster
        .world
        .create_replicated(BOUND_OBJ, move || orca::SharedInt::new(initial_bound));
    cluster
        .world
        .create_owned(QUEUE_OBJ, 0, orca::JobQueue::new);
    let n_nodes = cluster.world.nodes();
    cluster
        .world
        .create_replicated(BARRIER_OBJ, move || orca::Barrier::new(n_nodes));
    let params = params.clone();
    let (elapsed, results) = run_workers(&mut cluster, move |ctx, node, rts| {
        let bound = IntHandle::new(std::sync::Arc::clone(&rts), BOUND_OBJ);
        let queue = QueueHandle::new(std::sync::Arc::clone(&rts), QUEUE_OBJ);
        if node == 0 {
            // The master enumerates the 2184 depth-3 prefixes as jobs,
            // most-promising first (smallest optimistic completion): good
            // tours surface early and the global bound prunes the rest —
            // the dynamic search-order effect behind the paper's
            // superlinear TSP speedups.
            let mut jobs = generate_jobs(inst.n, params.job_depth);
            jobs.sort_by_key(|job| {
                let (visited, at, len) = decode_job(&inst, &Bytes::from(job.clone()));
                len + inst.completion_bound(visited) + inst.d(at, 0)
            });
            for job in jobs {
                queue.add(ctx, &job).expect("add job");
            }
            queue.close(ctx).expect("close queue");
        }
        let _ = worker_loop(ctx, &inst, &params, &bound, &queue);
        // Synchronize so every node's final read sees all bound updates.
        orca::BarrierHandle::new(std::sync::Arc::clone(&rts), BARRIER_OBJ)
            .sync(ctx)
            .expect("final barrier");
        bound.read(ctx).expect("agreed optimum")
    });
    let checksum = results[0];
    for (node, r) in results.iter().enumerate() {
        assert_eq!(*r, checksum, "node {node} disagrees on the optimum");
    }
    report("tsp", cfg, &cluster, elapsed, checksum)
}

fn worker_loop(
    ctx: &Ctx,
    inst: &Instance,
    params: &TspParams,
    bound: &IntHandle,
    queue: &QueueHandle,
) -> i64 {
    let mut cached_bound;
    while let Some(job) = queue.get(ctx).expect("job fetch") {
        let (visited, at, len) = decode_job(inst, &job);
        // Prune whole jobs against the freshest bound.
        cached_bound = bound.read(ctx).expect("bound read");
        if len + inst.completion_bound(visited) >= cached_bound {
            continue;
        }
        let mut local_best = cached_bound;
        let mut expansions = 0u64;
        let mut pending = 0u64;
        {
            let interval = params.bound_check_interval;
            let mut on_expand = |_e: u64| {
                pending += 1;
                if pending >= interval {
                    ctx.compute_sliced(
                        params.expansion_cost * pending,
                        crate::harness::CPU_QUANTUM,
                    );
                    pending = 0;
                }
            };
            dfs(
                inst,
                at,
                visited,
                len,
                &mut local_best,
                &mut expansions,
                &mut on_expand,
            );
        }
        if pending > 0 {
            ctx.compute_sliced(params.expansion_cost * pending, crate::harness::CPU_QUANTUM);
        }
        if local_best < cached_bound {
            // Publish the improvement (totally ordered broadcast).
            bound.min_update(ctx, local_best).expect("bound update");
        }
    }
    bound.read(ctx).expect("final bound")
}

fn decode_job(inst: &Instance, job: &Bytes) -> (u64, usize, i64) {
    let mut visited = 1u64;
    let mut at = 0usize;
    let mut len = 0i64;
    for &c in job.iter() {
        let c = c as usize;
        len += inst.d(at, c);
        visited |= 1 << c;
        at = c;
    }
    (visited, at, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_count_matches_paper() {
        // 15 cities, depth 3: 14 * 13 * 12 = 2184 jobs (Section 5).
        assert_eq!(generate_jobs(15, 3).len(), 2184);
        assert_eq!(generate_jobs(10, 2).len(), 72);
    }

    #[test]
    fn nn_bound_is_a_valid_tour() {
        let inst = Instance::generate(1, 8);
        let nn = inst.nearest_neighbour_bound();
        let opt = solve_sequential(&inst);
        assert!(
            opt <= nn,
            "optimum {opt} cannot exceed the greedy bound {nn}"
        );
        assert!(opt > 0);
    }

    #[test]
    fn completion_bound_is_admissible() {
        let inst = Instance::generate(2, 7);
        let opt = solve_sequential(&inst);
        // Bound from the start state must not exceed the optimum.
        assert!(inst.completion_bound(1) <= opt);
    }

    #[test]
    fn sequential_solver_deterministic() {
        let inst = Instance::generate(42, 9);
        assert_eq!(solve_sequential(&inst), solve_sequential(&inst));
    }
}
