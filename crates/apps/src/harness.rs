//! Shared harness: builds the paper's processor pool (8 machines per
//! 10 Mbit/s Ethernet segment, segments joined by a switch), brings up one
//! of the protocol implementations, runs an application's workers to
//! completion, and reports virtual execution time and communication
//! statistics.

use std::fmt;
use std::sync::Arc;

use amoeba::{CostModel, Machine};
use desim::{Ctx, SimDuration, Simulation};
use ethernet::{MacAddr, NetConfig, Network, TopologySpec};
use orca::{OrcaRts, OrcaWorld, RtsStats};
use panda::{KernelSpacePanda, Panda, PandaConfig, UserSpacePanda};

/// Scheduling quantum used by application compute phases: work is charged
/// in slices of this size so protocol daemons interleave, approximating
/// Amoeba's preemptive kernel threads.
pub const CPU_QUANTUM: SimDuration = SimDuration::from_millis(1);

/// Which protocol implementation an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoImpl {
    /// Amoeba's kernel-space protocols behind Panda wrappers.
    KernelSpace,
    /// Panda's user-space protocols over raw FLIP.
    UserSpace,
    /// User-space with a dedicated sequencer machine (one extra machine that
    /// runs only the sequencer — the paper's `User-space-dedicated`).
    UserSpaceDedicated,
}

impl fmt::Display for ProtoImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoImpl::KernelSpace => write!(f, "Kernel-space"),
            ProtoImpl::UserSpace => write!(f, "User-space"),
            ProtoImpl::UserSpaceDedicated => write!(f, "User-space-dedicated"),
        }
    }
}

/// Cluster-level configuration for one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of application nodes (worker processes).
    pub nodes: u32,
    /// Protocol implementation under test.
    pub implementation: ProtoImpl,
    /// Simulation seed.
    pub seed: u64,
    /// Machines per Ethernet segment (the paper's pool wires 8).
    pub per_segment: u32,
}

impl RunConfig {
    /// A run with the paper's pool layout.
    pub fn new(nodes: u32, implementation: ProtoImpl, seed: u64) -> Self {
        RunConfig {
            nodes,
            implementation,
            seed,
            per_segment: 8,
        }
    }
}

/// Outcome of one application run.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// Application name.
    pub app: &'static str,
    /// Implementation used.
    pub implementation: ProtoImpl,
    /// Application nodes.
    pub nodes: u32,
    /// Virtual wall-clock time of the whole run.
    pub elapsed: SimDuration,
    /// Application-defined answer (for cross-implementation checking).
    pub checksum: i64,
    /// Summed runtime statistics over all nodes.
    pub rts: RtsStats,
    /// Total frames carried by the network.
    pub frames: u64,
    /// Total wire bytes carried by the network.
    pub wire_bytes: u64,
}

impl fmt::Display for AppReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:<20} {:>3} nodes  {:>10.2}s  checksum {}",
            self.app,
            self.implementation.to_string(),
            self.nodes,
            self.elapsed.as_secs_f64(),
            self.checksum
        )
    }
}

/// A built cluster ready to run one application.
pub struct Cluster {
    /// The simulation driver.
    pub sim: Simulation,
    /// The network (for stats and fault injection).
    pub net: Network,
    /// The Orca world spanning the application nodes.
    pub world: OrcaWorld,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.world.nodes())
            .finish()
    }
}

/// Builds the pool: machines spread over segments of `per_segment`, a switch
/// when more than one segment, the chosen Panda implementation, and the Orca
/// world on top.
pub fn build_cluster(cfg: &RunConfig) -> Cluster {
    let mut sim = Simulation::new(cfg.seed);
    let mut net = Network::new(NetConfig::default());
    let total_machines = match cfg.implementation {
        ProtoImpl::UserSpaceDedicated => cfg.nodes + 1,
        _ => cfg.nodes,
    };
    let topo =
        TopologySpec::flat(total_machines, cfg.per_segment).build(&mut sim, &mut net, "pool");
    let cost = Arc::new(CostModel::default());
    let machines: Vec<Machine> = (0..total_machines)
        .map(|i| {
            Machine::boot_on(
                &mut sim,
                &mut net,
                topo.segment_of(i),
                MacAddr(i),
                &format!("m{i}"),
                Arc::clone(&cost),
                topo.lane_of(i),
            )
        })
        .collect();
    let pandas: Vec<Arc<dyn Panda>> = match cfg.implementation {
        ProtoImpl::KernelSpace => {
            KernelSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
                .into_iter()
                .map(|p| p as Arc<dyn Panda>)
                .collect()
        }
        ProtoImpl::UserSpace => UserSpacePanda::build(&mut sim, &machines, &PandaConfig::default())
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect(),
        ProtoImpl::UserSpaceDedicated => {
            let pc = PandaConfig {
                dedicated_sequencer: true,
                ..PandaConfig::default()
            };
            UserSpacePanda::build(&mut sim, &machines, &pc)
                .into_iter()
                .map(|p| p as Arc<dyn Panda>)
                .collect()
        }
    };
    assert_eq!(pandas.len() as u32, cfg.nodes);
    let world = OrcaWorld::build(&pandas);
    Cluster { sim, net, world }
}

/// Spawns one worker process per node and runs the cluster until all have
/// finished. Returns `(elapsed virtual time, per-node results)`.
///
/// # Panics
///
/// Panics if the simulation deadlocks (a bug in an application or protocol).
pub fn run_workers<F>(cluster: &mut Cluster, worker: F) -> (SimDuration, Vec<i64>)
where
    F: Fn(&Ctx, u32, Arc<OrcaRts>) -> i64 + Send + Sync + 'static,
{
    let worker = Arc::new(worker);
    let results = Arc::new(parking_lot::Mutex::new(vec![
        0i64;
        cluster.world.nodes() as usize
    ]));
    let start = cluster.sim.now();
    for node in 0..cluster.world.nodes() {
        let rts = cluster.world.rts(node);
        let worker = Arc::clone(&worker);
        let results = Arc::clone(&results);
        let proc = rts.panda().machine().proc();
        let lane = rts.panda().machine().lane();
        cluster
            .sim
            .spawn_on_lane(lane, proc, &format!("orca-p{node}"), move |ctx| {
                let r = worker(ctx, node, Arc::clone(&rts));
                results.lock()[node as usize] = r;
            });
    }
    cluster
        .sim
        .run()
        .unwrap_or_else(|e| panic!("application run failed: {e}"));
    let elapsed = cluster.sim.now().saturating_duration_since(start);
    let results = results.lock().clone();
    (elapsed, results)
}

/// Collects a report after [`run_workers`].
pub fn report(
    app: &'static str,
    cfg: &RunConfig,
    cluster: &Cluster,
    elapsed: SimDuration,
    checksum: i64,
) -> AppReport {
    let mut rts = RtsStats::default();
    for node in 0..cluster.world.nodes() {
        let s = cluster.world.rts(node).stats();
        rts.local_ops += s.local_ops;
        rts.rpcs += s.rpcs;
        rts.broadcasts += s.broadcasts;
        rts.continuations_queued += s.continuations_queued;
        rts.continuations_resumed += s.continuations_resumed;
    }
    let net = cluster.net.total_stats();
    AppReport {
        app,
        implementation: cfg.implementation,
        nodes: cfg.nodes,
        elapsed,
        checksum,
        rts,
        frames: net.frames,
        wire_bytes: net.wire_bytes,
    }
}
