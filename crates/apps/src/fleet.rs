//! Open-loop client fleet: scale-out workload for the multi-segment tree.
//!
//! A [`FleetSpec`] describes a pool built by the hierarchical topology
//! builder — servers on the backbone, clients filling the leaf segments —
//! and a request workload: every client thread sleeps a think time drawn
//! from its own deterministic RNG ([`ThinkDist::Exp`] gives Poisson
//! arrivals, [`ThinkDist::Pareto`] a heavy tail), fires an RPC at a server,
//! and records the virtual-time latency in a log-bucketed histogram. Every
//! `group_every`-th request a server additionally broadcasts to the group
//! service, so both protocol families carry load.
//!
//! Arrivals depend only on the per-client RNG and virtual time — never on
//! wall-clock, the execution backend, or the shard count — so one spec
//! produces bit-identical [`FleetReport`]s (checkable via
//! [`FleetReport::result_hash`]) under every runner configuration. That is
//! the scale-out determinism contract the `fleet_scale` tests pin.
//!
//! Both stacks avoid FLIP locate broadcast storms at fleet scale: client →
//! server routes are pre-seeded at boot ([`flip` route installation]) and
//! servers learn client routes from arriving requests (route learning), so
//! a 10k-machine fleet performs zero locate floods.
//!
//! [`flip` route installation]: https://docs.rs/flip

use std::sync::Arc;

use amoeba::{
    port_addr, CostModel, GroupMember, GroupSpec, Machine, Port, RpcClient, RpcConfig, RpcServer,
};
use bytes::Bytes;
use desim::{Backend, Ctx, SimDuration, Simulation};
use ethernet::{MacAddr, NetConfig, Network, TopologySpec};
use panda::{panda_addr, Panda, PandaConfig, ReplyTicket, UserSpacePanda};
use parking_lot::Mutex;

/// Base port servers listen on: server `s` serves `Port(FLEET_PORT_BASE + s)`.
const FLEET_PORT_BASE: u64 = 0x6000;
/// Group id of the kernel-space server replication group.
const FLEET_GROUP_ID: u64 = 0x88;
/// Worker threads parked in `get_request` per kernel server.
const KERNEL_SERVER_POOL: usize = 4;
/// Payload of the group broadcast a server issues every `group_every` ops.
const GROUP_PAYLOAD_BYTES: usize = 32;

/// Which protocol family the fleet exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetStack {
    /// Amoeba kernel-space RPC + kernel group among the servers. Clients are
    /// bare [`RpcClient`] endpoints — two threads per machine — so this
    /// stack scales to 10k machines inside the pid and memory budget.
    Kernel,
    /// Panda user-space RPC over FLIP (full per-node stack, group spanning
    /// all nodes). Heavier per machine; sized for fleets up to ~1k.
    User,
}

impl FleetStack {
    /// Short lowercase name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FleetStack::Kernel => "kernel",
            FleetStack::User => "user",
        }
    }
}

/// Think-time distribution between a client's requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThinkDist {
    /// Exponential think times: each client is a Poisson process.
    Exp,
    /// Pareto (α = 1.5) think times: heavy-tailed, bursty arrivals. Samples
    /// are capped at 100× the mean so one draw cannot silence a client for
    /// the whole run.
    Pareto,
}

/// Declarative description of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Total machines (servers + clients).
    pub machines: u32,
    /// Servers; they occupy the first machine ids and sit directly on the
    /// backbone segment.
    pub servers: u32,
    /// Clients per leaf segment.
    pub per_segment: u32,
    /// Leaf segments per edge switch.
    pub segments_per_switch: u32,
    /// Scheduler lanes the leaves round-robin over.
    pub lanes: u32,
    /// Backbone bandwidth in bit/s (leaves run the network default).
    pub backbone_bandwidth_bps: u64,
    /// Protocol family under test.
    pub stack: FleetStack,
    /// Virtual time during which clients issue requests.
    pub duration: SimDuration,
    /// Mean think time between a client's requests.
    pub mean_think: SimDuration,
    /// Think-time distribution.
    pub think: ThinkDist,
    /// Request payload bytes.
    pub request_bytes: usize,
    /// Reply payload bytes.
    pub reply_bytes: usize,
    /// Every `group_every`-th request handled by a server triggers a group
    /// broadcast (`0` disables group traffic).
    pub group_every: u32,
    /// Seed for all per-client randomness (and the simulation).
    pub seed: u64,
}

impl FleetSpec {
    /// A fleet with the scale-study defaults: 8 clients per leaf, 4 leaves
    /// per edge switch, a 100 Mbit/s backbone, Poisson clients with 20 ms
    /// mean think time, 128-byte requests, 256-byte replies, a group
    /// broadcast every 16th request, over 200 ms of virtual time.
    pub fn new(machines: u32, servers: u32, stack: FleetStack) -> FleetSpec {
        assert!(
            servers > 0 && servers < machines,
            "need servers and clients"
        );
        FleetSpec {
            machines,
            servers,
            per_segment: 8,
            segments_per_switch: 4,
            lanes: 1,
            backbone_bandwidth_bps: 100_000_000,
            stack,
            duration: SimDuration::from_millis(200),
            mean_think: SimDuration::from_millis(20),
            think: ThinkDist::Exp,
            request_bytes: 128,
            reply_bytes: 256,
            group_every: 16,
            seed: 42,
        }
    }

    /// The topology this fleet builds.
    pub fn topology(&self) -> TopologySpec {
        TopologySpec {
            machines: self.machines,
            per_segment: self.per_segment,
            backbone_stations: self.servers,
            segments_per_switch: self.segments_per_switch,
            lanes: self.lanes,
            backbone_bandwidth_bps: Some(self.backbone_bandwidth_bps),
        }
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per power of two: 32 gives ≤ 3.2% relative value error.
const SUB_COUNT: u64 = 32;
const SUB_BITS: u32 = 5;
const N_BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB_COUNT as usize) + SUB_COUNT as usize;

/// Log-linear latency histogram over nanoseconds (HDR-style: buckets are
/// powers of two split into [`SUB_COUNT`] linear sub-buckets). Recording is
/// commutative, so clients on different scheduler lanes can share one
/// histogram without perturbing determinism.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns < SUB_COUNT {
        ns as usize
    } else {
        let exp = 63 - ns.leading_zeros();
        let group = (exp - SUB_BITS + 1) as usize;
        group * SUB_COUNT as usize + ((ns >> (exp - SUB_BITS)) & (SUB_COUNT - 1)) as usize
    }
}

fn bucket_floor(idx: usize) -> u64 {
    let group = idx / SUB_COUNT as usize;
    let sub = (idx % SUB_COUNT as usize) as u64;
    if group == 0 {
        sub
    } else {
        (SUB_COUNT + sub) << (group - 1)
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> SimDuration {
        self.sum_ns
            .checked_div(self.count)
            .map(SimDuration::from_nanos)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// The `q`-quantile (`0.5` = p50, `0.999` = p999), resolved to the lower
    /// bound of its bucket (≤ 3.2% below the true value). Zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return SimDuration::from_nanos(bucket_floor(idx));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Folds the full bucket vector and counters into an FNV-1a hash.
    fn fold_hash(&self, h: &mut u64) {
        fnv(h, self.count);
        fnv(h, self.sum_ns);
        fnv(h, self.max_ns);
        for (idx, n) in self.buckets.iter().enumerate() {
            if *n > 0 {
                fnv(h, idx as u64);
                fnv(h, *n);
            }
        }
    }
}

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

// ---------------------------------------------------------------------------
// Deterministic per-client randomness
// ---------------------------------------------------------------------------

struct ClientRng(u64);

impl ClientRng {
    fn new(seed: u64, client: u32) -> ClientRng {
        // Decorrelate per-client streams from the shared seed.
        ClientRng(seed ^ (u64::from(client).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `(0, 1]` — never zero, so `ln` is always finite.
    fn u01(&mut self) -> f64 {
        ((self.next() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    fn think(&mut self, dist: ThinkDist, mean: SimDuration) -> SimDuration {
        let mean_ns = mean.as_nanos() as f64;
        let ns = match dist {
            ThinkDist::Exp => -mean_ns * self.u01().ln(),
            ThinkDist::Pareto => {
                // α = 1.5 ⇒ mean = 3·x_m; capped at 100× the mean.
                let xm = mean_ns / 3.0;
                (xm * self.u01().powf(-1.0 / 1.5)).min(mean_ns * 100.0)
            }
        };
        SimDuration::from_nanos(ns as u64)
    }
}

// ---------------------------------------------------------------------------
// Shared run state
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct FleetAgg {
    hist: LatencyHistogram,
    ops: u64,
    timeouts: u64,
    group_sends: u64,
    group_timeouts: u64,
}

/// Outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Completed RPCs.
    pub ops: u64,
    /// RPCs that exhausted every retransmission.
    pub timeouts: u64,
    /// Group broadcasts successfully sequenced.
    pub group_sends: u64,
    /// Group broadcasts that timed out.
    pub group_timeouts: u64,
    /// Latency distribution of the completed RPCs.
    pub hist: LatencyHistogram,
    /// Virtual time from boot until the queue drained.
    pub elapsed: SimDuration,
    /// Total frames the network carried.
    pub frames: u64,
    /// Total wire bytes the network carried.
    pub wire_bytes: u64,
    /// Scheduler events the simulation processed (wall-clock denominator
    /// for the selfperf `fleet` hot path).
    pub sim_events: u64,
    /// Window-engine accounting of the run. Everything except
    /// `barrier_wait_ns` is deterministic per spec; `barrier_wait_ns` is
    /// wall-clock, which is why this block never feeds
    /// [`FleetReport::result_hash`].
    pub window_stats: desim::WindowStats,
    /// Event-queue accounting summed over every scheduler lane (peak depth,
    /// tier routing, cascades). Deterministic per spec, but diagnostic — it
    /// describes *how* the queue ran, not *what* the fleet computed — so it
    /// stays out of [`FleetReport::result_hash`].
    pub queue_stats: desim::QueueStats,
}

impl FleetReport {
    /// Median latency.
    pub fn p50(&self) -> SimDuration {
        self.hist.quantile(0.5)
    }

    /// 99th percentile latency.
    pub fn p99(&self) -> SimDuration {
        self.hist.quantile(0.99)
    }

    /// 99.9th percentile latency.
    pub fn p999(&self) -> SimDuration {
        self.hist.quantile(0.999)
    }

    /// Completed RPCs per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// FNV-1a hash over every observable of the run: op/timeout/group
    /// counters, the full latency histogram, network frame and byte totals,
    /// and the drain time. Two runs of the same [`FleetSpec`] must produce
    /// the same hash on any backend and shard count.
    pub fn result_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv(&mut h, self.ops);
        fnv(&mut h, self.timeouts);
        fnv(&mut h, self.group_sends);
        fnv(&mut h, self.group_timeouts);
        fnv(&mut h, self.frames);
        fnv(&mut h, self.wire_bytes);
        fnv(&mut h, self.elapsed.as_nanos());
        self.hist.fold_hash(&mut h);
        h
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let ms = |d: SimDuration| d.as_nanos() as f64 / 1e6;
        format!(
            "{} ops ({} timeouts), {:.0} ops/s, p50 {:.2}ms p99 {:.2}ms \
             p999 {:.2}ms, {} group sends, {} frames, hash {:016x}",
            self.ops,
            self.timeouts,
            self.throughput(),
            ms(self.p50()),
            ms(self.p99()),
            ms(self.p999()),
            self.group_sends,
            self.frames,
            self.result_hash(),
        )
    }
}

// ---------------------------------------------------------------------------
// The run
// ---------------------------------------------------------------------------

/// A booted-but-not-yet-run fleet: every machine, daemon, server, and
/// client thread exists; no virtual time has passed. Split from
/// [`run_fleet`] so the selfperf memory probe can measure the resident
/// footprint of a booted world in isolation.
#[derive(Debug)]
pub struct FleetWorld {
    sim: Simulation,
    net: Network,
    agg: Arc<Mutex<FleetAgg>>,
}

impl FleetWorld {
    /// Runs the fleet to completion and collects the report.
    pub fn run(mut self) -> FleetReport {
        let report = self
            .sim
            .run()
            .unwrap_or_else(|e| panic!("fleet run failed: {e}"));
        let elapsed = self.sim.now().duration_since(desim::SimTime::ZERO);
        let net_stats = self.net.total_stats();
        let agg = self.agg.lock();
        FleetReport {
            ops: agg.ops,
            timeouts: agg.timeouts,
            group_sends: agg.group_sends,
            group_timeouts: agg.group_timeouts,
            hist: agg.hist.clone(),
            elapsed,
            frames: net_stats.frames,
            wire_bytes: net_stats.wire_bytes,
            sim_events: report.events,
            window_stats: self.sim.window_stats(),
            queue_stats: self.sim.queue_stats(),
        }
    }
}

/// Boots the fleet described by `spec` without running it.
pub fn build_fleet(spec: &FleetSpec, backend: Backend, shards: usize) -> FleetWorld {
    let topo_spec = spec.topology();
    // Every machine runs a netisr daemon plus one to six role threads; three
    // per machine covers the client-heavy lanes that dominate at scale.
    // Purely a sizing hint — run results are identical without it.
    let expected = topo_spec.max_machines_per_lane() as usize * 3;
    let mut sim = Simulation::builder()
        .seed(spec.seed)
        .backend(backend)
        .shards(shards)
        .expected_threads(expected)
        .build();
    let mut net = Network::new(NetConfig::default());
    let topo = topo_spec.build(&mut sim, &mut net, "fleet");
    let cost = Arc::new(CostModel::default());
    let machines: Vec<Machine> = (0..spec.machines)
        .map(|i| {
            Machine::boot_on(
                &mut sim,
                &mut net,
                topo.segment_of(i),
                MacAddr(i),
                &format!("m{i}"),
                Arc::clone(&cost),
                topo.lane_of(i),
            )
        })
        .collect();
    let agg = Arc::new(Mutex::new(FleetAgg::default()));
    match spec.stack {
        FleetStack::Kernel => build_kernel_fleet(&mut sim, spec, &machines, &agg),
        FleetStack::User => build_user_fleet(&mut sim, spec, &machines, &agg),
    }
    FleetWorld { sim, net, agg }
}

/// Boots the fleet described by `spec` on the given backend / shard count and
/// runs it to completion. The report is bit-identical across backends and
/// shard counts (`shards` 0 = auto).
pub fn run_fleet(spec: &FleetSpec, backend: Backend, shards: usize) -> FleetReport {
    build_fleet(spec, backend, shards).run()
}

/// The port server `s` answers on.
fn server_port(s: u32) -> Port {
    Port(FLEET_PORT_BASE + u64::from(s))
}

/// Spawns one client loop: think, fire, record — until `duration` elapses.
#[allow(clippy::too_many_arguments)]
fn spawn_client<F>(
    sim: &mut Simulation,
    spec: &FleetSpec,
    machine: &Machine,
    client_idx: u32,
    agg: &Arc<Mutex<FleetAgg>>,
    op: F,
) where
    F: Fn(&Ctx, u32) -> bool + Send + 'static,
{
    let mut rng = ClientRng::new(spec.seed, client_idx);
    let end = spec.duration;
    let servers = spec.servers;
    let think_dist = spec.think;
    let mean_think = spec.mean_think;
    let agg = Arc::clone(agg);
    sim.spawn_on_lane(
        machine.lane(),
        machine.proc(),
        &format!("client-{client_idx}"),
        move |ctx| loop {
            ctx.sleep(rng.think(think_dist, mean_think));
            if ctx.now().as_nanos() >= end.as_nanos() {
                break;
            }
            let server = (rng.next() % u64::from(servers)) as u32;
            let t0 = ctx.now();
            let ok = op(ctx, server);
            let latency = ctx.now().saturating_duration_since(t0);
            let mut a = agg.lock();
            if ok {
                a.ops += 1;
                a.hist.record(latency);
            } else {
                a.timeouts += 1;
            }
        },
    );
}

/// Kernel-space fleet: bare Amoeba RPC endpoints, servers in a kernel group.
fn build_kernel_fleet(
    sim: &mut Simulation,
    spec: &FleetSpec,
    machines: &[Machine],
    agg: &Arc<Mutex<FleetAgg>>,
) {
    let servers = spec.servers;
    let gspec = if spec.group_every > 0 && servers > 1 {
        Some(GroupSpec::build(FLEET_GROUP_ID, servers as usize, 0))
    } else {
        None
    };
    let reply = Bytes::from(vec![0u8; spec.reply_bytes]);
    let group_payload = Bytes::from(vec![0u8; GROUP_PAYLOAD_BYTES]);
    for s in 0..servers {
        let machine = &machines[s as usize];
        // Replies and the unicast legs of the group protocol route by
        // learned state instead of locate floods.
        machine.iface().set_route_learning(true);
        let server = RpcServer::register(machine, server_port(s));
        let member = gspec.as_ref().map(|g| {
            // Member-to-sequencer unicasts are pre-seeded too.
            for (j, addr) in g.member_addrs.iter().enumerate() {
                if j as u32 != s {
                    machine.iface().install_route(*addr, MacAddr(j as u32));
                }
            }
            Arc::new(GroupMember::join(machine, g.clone(), s))
        });
        if let Some(member) = &member {
            // Drain ordered deliveries so the backlog stays bounded.
            let drain = Arc::clone(member);
            sim.spawn_daemon_on_lane(
                machine.lane(),
                machine.proc(),
                &format!("srv{s}-gdrain"),
                move |ctx| loop {
                    let _ = drain.recv(ctx);
                },
            );
        }
        let handled = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for w in 0..KERNEL_SERVER_POOL {
            let server = server.clone();
            let member = member.clone();
            let handled = Arc::clone(&handled);
            let reply = reply.clone();
            let group_payload = group_payload.clone();
            let agg = Arc::clone(agg);
            let every = u64::from(spec.group_every);
            sim.spawn_daemon_on_lane(
                machine.lane(),
                machine.proc(),
                &format!("srv{s}-w{w}"),
                move |ctx| loop {
                    let (_req, token) = server.get_request(ctx);
                    let n = handled.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                    server.put_reply(ctx, token, reply.clone());
                    if let Some(member) = &member {
                        if every > 0 && n.is_multiple_of(every) {
                            let ok = member.send(ctx, group_payload.clone()).is_ok();
                            let mut a = agg.lock();
                            if ok {
                                a.group_sends += 1;
                            } else {
                                a.group_timeouts += 1;
                            }
                        }
                    }
                },
            );
        }
    }
    let request = Bytes::from(vec![0u8; spec.request_bytes]);
    for c in servers..spec.machines {
        let machine = &machines[c as usize];
        // Clients know where every server lives: no locate broadcasts.
        for s in 0..servers {
            machine
                .iface()
                .install_route(port_addr(server_port(s)), MacAddr(s));
        }
        let client = RpcClient::install(machine, RpcConfig::default());
        let request = request.clone();
        spawn_client(sim, spec, machine, c, agg, move |ctx, s| {
            client.trans(ctx, server_port(s), request.clone()).is_ok()
        });
    }
}

/// User-space fleet: the full Panda stack on every node; the first
/// `spec.servers` nodes answer RPCs, the group spans all nodes.
fn build_user_fleet(
    sim: &mut Simulation,
    spec: &FleetSpec,
    machines: &[Machine],
    agg: &Arc<Mutex<FleetAgg>>,
) {
    let servers = spec.servers;
    let nodes = UserSpacePanda::build(sim, machines, &PandaConfig::default());
    let reply = Bytes::from(vec![0u8; spec.reply_bytes]);
    let group_payload = Bytes::from(vec![0u8; GROUP_PAYLOAD_BYTES]);
    for (i, node) in nodes.iter().enumerate() {
        // Group deliveries are consumed on the spot.
        node.set_group_handler(Arc::new(|_ctx, _delivery| {}));
        if (i as u32) < servers {
            let machine = node.machine();
            machine.iface().set_route_learning(true);
            // Group broadcasts must not block the receive daemon the RPC
            // handler runs on, so the handler only enqueues a tick and a
            // per-server daemon performs the (blocking) sequenced send.
            let ticks: desim::SimChannel<()> = desim::SimChannel::new();
            if spec.group_every > 0 {
                let sender = Arc::clone(node);
                let ticks_rx = ticks.clone();
                let group_payload = group_payload.clone();
                let agg = Arc::clone(agg);
                sim.spawn_daemon_on_lane(
                    machine.lane(),
                    machine.proc(),
                    &format!("srv{i}-gsend"),
                    move |ctx| {
                        while ticks_rx.recv(ctx).is_some() {
                            let ok = sender.group_send(ctx, group_payload.clone()).is_ok();
                            let mut a = agg.lock();
                            if ok {
                                a.group_sends += 1;
                            } else {
                                a.group_timeouts += 1;
                            }
                        }
                    },
                );
            }
            let replier = Arc::clone(node);
            let reply = reply.clone();
            let every = u64::from(spec.group_every);
            let handled = Arc::new(std::sync::atomic::AtomicU64::new(0));
            node.set_rpc_handler(Arc::new(
                move |ctx: &Ctx, _from, _req: Bytes, ticket: ReplyTicket| {
                    replier.reply(ctx, ticket, reply.clone());
                    if every > 0 {
                        let n = handled.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                        if n.is_multiple_of(every) {
                            let _ = ticks.send(ctx, ());
                        }
                    }
                },
            ));
        }
    }
    let request = Bytes::from(vec![0u8; spec.request_bytes]);
    for c in servers..spec.machines {
        let node = Arc::clone(&nodes[c as usize]);
        let machine = machines[c as usize].clone();
        // Clients know where every server lives: no locate broadcasts.
        for s in 0..servers {
            machine.iface().install_route(panda_addr(s), MacAddr(s));
        }
        let request = request.clone();
        spawn_client(sim, spec, &machine, c, agg, move |ctx, s| {
            node.rpc(ctx, s, request.clone()).is_ok()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotone_and_invertible() {
        let mut prev = 0usize;
        for v in [0u64, 1, 5, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_of(v);
            assert!(idx >= prev, "bucket index monotone at {v}");
            assert!(bucket_floor(idx) <= v, "floor below value at {v}");
            prev = idx;
        }
        // The floor is within 1/32 of the true value.
        for v in [100u64, 12_345, 1 << 30, 987_654_321] {
            let floor = bucket_floor(bucket_of(v));
            assert!(v - floor <= v / 32 + 1, "{floor} too far below {v}");
        }
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_nanos(i * 1000));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).as_nanos();
        assert!((480_000..=520_000).contains(&p50), "p50 ≈ 500µs, got {p50}");
        let p999 = h.quantile(0.999).as_nanos();
        assert!(p999 >= 960_000, "p999 near the top, got {p999}");
        assert_eq!(h.max().as_nanos(), 1_000_000);
    }

    #[test]
    fn think_times_are_deterministic_and_plausible() {
        let mean = SimDuration::from_millis(10);
        for dist in [ThinkDist::Exp, ThinkDist::Pareto] {
            let mut a = ClientRng::new(7, 3);
            let mut b = ClientRng::new(7, 3);
            let mut sum = 0u64;
            for _ in 0..2000 {
                let t = a.think(dist, mean);
                assert_eq!(t, b.think(dist, mean), "same stream, same draws");
                sum += t.as_nanos();
            }
            let avg = sum / 2000;
            assert!(
                (2_000_000..50_000_000).contains(&avg),
                "{dist:?} sample mean within an order of magnitude: {avg}"
            );
        }
    }
}
