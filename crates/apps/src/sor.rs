//! Successive Overrelaxation: red-black relaxation of a Laplace grid, row
//! strips per processor, boundary rows exchanged through shared buffer
//! objects after every half-sweep.
//!
//! Like Region Labeling this is the paper's fine-grained regime: two remote
//! guarded buffer operations per neighbour per iteration, performance
//! flattening beyond 16 processors as the Ethernet saturates, and the
//! user-space implementation pulling ahead because blocked `BufGet`s do not
//! cost it an extra context switch (Table 3: 13s vs 11s at 32 nodes).

use bytes::Bytes;
use desim::SimDuration;
use orca::{BufferHandle, ObjId};

use crate::harness::{build_cluster, report, run_workers, AppReport, RunConfig};

/// SOR workload parameters.
#[derive(Debug, Clone)]
pub struct SorParams {
    /// Grid side.
    pub size: usize,
    /// Full red+black iterations.
    pub iterations: u32,
    /// Overrelaxation factor (in fixed-point thousandths).
    pub omega_milli: u32,
    /// Virtual CPU time charged per cell update.
    pub cell_cost: SimDuration,
}

impl SorParams {
    /// Paper-scale: calibrated to roughly 118 virtual seconds on one node.
    pub fn paper() -> Self {
        SorParams {
            size: 512,
            iterations: 100,
            omega_milli: 1400,
            cell_cost: SimDuration::from_nanos(4530),
        }
    }

    /// A small grid for fast tests.
    pub fn small() -> Self {
        SorParams {
            size: 24,
            iterations: 8,
            omega_milli: 1400,
            cell_cost: SimDuration::from_micros(10),
        }
    }
}

type Grid = Vec<Vec<f64>>;

/// Fixed boundary conditions: hot top edge, cold elsewhere.
pub fn initial_grid(size: usize) -> Grid {
    let mut g = vec![vec![0.0; size]; size];
    for x in 0..size {
        g[0][x] = 100.0;
    }
    g
}

/// Relaxes all cells of `parity` in the strip (Jacobi within the colour:
/// red cells read only black neighbours and vice versa, so the update order
/// does not matter and parallel equals sequential bit-for-bit).
/// `offset` is the strip's global row offset (parity is global).
#[allow(clippy::too_many_arguments)]
fn half_sweep(
    grid: &mut Grid,
    offset: usize,
    size: usize,
    parity: usize,
    omega: f64,
    above: Option<&[f64]>,
    below: Option<&[f64]>,
) -> u64 {
    let h = grid.len();
    let mut updates = 0u64;
    for y in 0..h {
        let gy = y + offset;
        if gy == 0 || gy == size - 1 {
            continue; // fixed boundary rows
        }
        for x in 1..size - 1 {
            if (gy + x) % 2 != parity {
                continue;
            }
            let up = if y > 0 {
                grid[y - 1][x]
            } else {
                above.expect("interior strip has an upper neighbour")[x]
            };
            let down = if y + 1 < h {
                grid[y + 1][x]
            } else {
                below.expect("interior strip has a lower neighbour")[x]
            };
            let left = grid[y][x - 1];
            let right = grid[y][x + 1];
            let old = grid[y][x];
            grid[y][x] = old + omega * ((up + down + left + right) / 4.0 - old);
            updates += 1;
        }
    }
    updates
}

/// Sequential reference; returns the grid checksum.
pub fn solve_sequential(params: &SorParams) -> i64 {
    let mut grid = initial_grid(params.size);
    let omega = f64::from(params.omega_milli) / 1000.0;
    for _ in 0..params.iterations {
        for parity in [0, 1] {
            half_sweep(&mut grid, 0, params.size, parity, omega, None, None);
        }
    }
    checksum(&grid)
}

/// Partition-independent checksum (XOR of per-row bit-exact hashes).
pub fn checksum(grid: &Grid) -> i64 {
    grid.iter()
        .map(|row| {
            let mut h = 23i64;
            for &v in row {
                h = h.wrapping_mul(1_000_003).wrapping_add(v.to_bits() as i64);
            }
            h
        })
        .fold(0i64, |a, h| a ^ h)
}

fn strip_of(node: u32, nodes: u32, size: usize) -> std::ops::Range<usize> {
    let per = size / nodes as usize;
    let extra = size % nodes as usize;
    let start = node as usize * per + (node as usize).min(extra);
    let len = per + usize::from((node as usize) < extra);
    start..start + len
}

fn encode_row(row: &[f64]) -> Vec<u8> {
    let mut v = Vec::with_capacity(row.len() * 8);
    for &x in row {
        v.extend_from_slice(&x.to_bits().to_be_bytes());
    }
    v
}

fn decode_row(b: &Bytes) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_be_bytes(c.try_into().expect("8 bytes"))))
        .collect()
}

fn buf_down(i: u32) -> ObjId {
    ObjId(100 + i * 2)
}

fn buf_up(i: u32) -> ObjId {
    ObjId(101 + i * 2)
}

/// Runs SOR; checksum is the bit-exact final-grid hash (identical across
/// implementations and node counts).
pub fn run(cfg: &RunConfig, params: &SorParams) -> AppReport {
    let mut cluster = build_cluster(cfg);
    // With more processors than grid rows (small test grids only) the
    // trailing nodes would get empty strips; they sit the computation out
    // and the exchange chain links the active prefix.
    let active = cluster.world.nodes().min(params.size as u32);
    for i in 0..active.saturating_sub(1) {
        cluster
            .world
            .create_owned(buf_down(i), i, || orca::BoundedBuffer::new(2));
        cluster
            .world
            .create_owned(buf_up(i), i + 1, || orca::BoundedBuffer::new(2));
    }
    let params = params.clone();
    let (elapsed, results) = run_workers(&mut cluster, move |ctx, node, rts| {
        let active = rts.nodes().min(params.size as u32);
        if node >= active {
            return 0i64; // XOR identity: no strip, no checksum contribution
        }
        let strip = strip_of(node, active, params.size);
        let full = initial_grid(params.size);
        let mut grid: Grid = full[strip.clone()].to_vec();
        let omega = f64::from(params.omega_milli) / 1000.0;
        let up = (node > 0).then(|| {
            (
                BufferHandle::new(std::sync::Arc::clone(&rts), buf_up(node - 1)),
                BufferHandle::new(std::sync::Arc::clone(&rts), buf_down(node - 1)),
            )
        });
        let down = (node + 1 < active).then(|| {
            (
                BufferHandle::new(std::sync::Arc::clone(&rts), buf_down(node)),
                BufferHandle::new(std::sync::Arc::clone(&rts), buf_up(node)),
            )
        });
        for _ in 0..params.iterations {
            for parity in [0usize, 1] {
                if let Some((out, _)) = &up {
                    out.put(ctx, &encode_row(&grid[0])).expect("put top");
                }
                if let Some((out, _)) = &down {
                    out.put(ctx, &encode_row(grid.last().expect("rows")))
                        .expect("put bottom");
                }
                let above = up
                    .as_ref()
                    .map(|(_, n)| decode_row(&n.get(ctx).expect("get above")));
                let below = down
                    .as_ref()
                    .map(|(_, n)| decode_row(&n.get(ctx).expect("get below")));
                let updates = half_sweep(
                    &mut grid,
                    strip.start,
                    params.size,
                    parity,
                    omega,
                    above.as_deref(),
                    below.as_deref(),
                );
                ctx.compute_sliced(
                    params.cell_cost * updates.max(1),
                    crate::harness::CPU_QUANTUM,
                );
            }
        }
        checksum(&grid)
    });
    let combined = results.iter().fold(0i64, |a, r| a ^ r);
    report("sor", cfg, &cluster, elapsed, combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_deterministic() {
        let p = SorParams::small();
        assert_eq!(solve_sequential(&p), solve_sequential(&p));
    }

    #[test]
    fn heat_diffuses_from_the_hot_edge() {
        let p = SorParams::small();
        let mut grid = initial_grid(p.size);
        let omega = 1.4;
        for _ in 0..p.iterations {
            for parity in [0, 1] {
                half_sweep(&mut grid, 0, p.size, parity, omega, None, None);
            }
        }
        assert!(
            grid[1][p.size / 2] > 1.0,
            "row under the hot edge warmed up"
        );
        assert_eq!(grid[0][3], 100.0, "boundary stays fixed");
    }

    #[test]
    fn row_codec_roundtrip_bit_exact() {
        let row = vec![0.0f64, -1.5, 1e-300, 100.0];
        assert_eq!(decode_row(&Bytes::from(encode_row(&row))), row);
    }
}
