//! Linear Equation Solver: Jacobi iteration with one totally ordered
//! broadcast per node per iteration.
//!
//! The paper's group-communication stress test. Every iteration each node
//! broadcasts its slice of the solution vector and reads everyone else's
//! (local guarded reads of a replicated board). On 32 processors the
//! user-space sequencer machine melts down — it handles every broadcast
//! request, runs its own worker, and pays the interrupt-to-thread dispatch
//! per message — which is exactly why the paper dedicates a machine to the
//! sequencer (`User-space-dedicated`): on 16 processors 15 workers then beat
//! the 16-worker shared configuration (94s vs 112s). Note also that
//! execution time *rises* from 16 to 32 processors: twice the messages at
//! half the size (Section 5).

use desim::SimDuration;
use orca::{BoardHandle, ObjId};

use crate::harness::{build_cluster, report, run_workers, AppReport, RunConfig};

/// LEQ workload parameters.
#[derive(Debug, Clone)]
pub struct LeqParams {
    /// Number of unknowns.
    pub unknowns: usize,
    /// Jacobi iterations (fixed; deterministic across node counts).
    pub iterations: u32,
    /// Seed for the diagonally dominant system.
    pub instance_seed: u64,
    /// Virtual CPU time charged per multiply-accumulate.
    pub mac_cost: SimDuration,
}

impl LeqParams {
    /// Paper-scale: calibrated to roughly 520 virtual seconds on one node.
    pub fn paper() -> Self {
        LeqParams {
            unknowns: 1024,
            iterations: 600,
            instance_seed: 0x1e9,
            mac_cost: SimDuration::from_nanos(830),
        }
    }

    /// A small system for fast tests.
    pub fn small() -> Self {
        LeqParams {
            unknowns: 64,
            iterations: 10,
            instance_seed: 0x1e9,
            mac_cost: SimDuration::from_micros(1),
        }
    }
}

/// The dense, diagonally dominant system `A x = b`, generated on demand
/// (every node derives identical coefficients from the seed).
#[derive(Debug)]
pub struct System {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl System {
    /// Generates the system deterministically.
    pub fn generate(seed: u64, n: usize) -> System {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = next() - 0.5;
                    a[i * n + j] = v;
                    row_sum += v.abs();
                }
            }
            a[i * n + i] = row_sum + 1.0 + next(); // strict diagonal dominance
            b[i] = next() * 10.0;
        }
        System { n, a, b }
    }

    /// One Jacobi update of unknown `i` given the current full vector.
    fn update(&self, i: usize, x: &[f64]) -> f64 {
        let mut sigma = 0.0;
        for j in 0..self.n {
            if j != i {
                sigma += self.a[i * self.n + j] * x[j];
            }
        }
        (self.b[i] - sigma) / self.a[i * self.n + i]
    }
}

/// Sequential reference; returns the solution checksum.
pub fn solve_sequential(params: &LeqParams) -> i64 {
    let sys = System::generate(params.instance_seed, params.unknowns);
    let mut x = vec![0.0; params.unknowns];
    for _ in 0..params.iterations {
        let x_new: Vec<f64> = (0..params.unknowns).map(|i| sys.update(i, &x)).collect();
        x = x_new;
    }
    checksum(&x)
}

/// Bit-exact checksum of the solution vector.
pub fn checksum(x: &[f64]) -> i64 {
    let mut h = 7i64;
    for &v in x {
        h = h.wrapping_mul(1_000_003).wrapping_add(v.to_bits() as i64);
    }
    h
}

fn slice_of(node: u32, nodes: u32, n: usize) -> std::ops::Range<usize> {
    let per = n / nodes as usize;
    let extra = n % nodes as usize;
    let start = node as usize * per + (node as usize).min(extra);
    let len = per + usize::from((node as usize) < extra);
    start..start + len
}

const BOARD_OBJ: ObjId = ObjId(1);

/// Runs LEQ; checksum is the bit-exact solution hash.
pub fn run(cfg: &RunConfig, params: &LeqParams) -> AppReport {
    let mut cluster = build_cluster(cfg);
    cluster
        .world
        .create_replicated(BOARD_OBJ, orca::IterBoard::new);
    let params = params.clone();
    let (elapsed, results) = run_workers(&mut cluster, move |ctx, node, rts| {
        let board = BoardHandle::new(std::sync::Arc::clone(&rts), BOARD_OBJ);
        let nodes = rts.nodes();
        let sys = System::generate(params.instance_seed, params.unknowns);
        let mut x = vec![0.0f64; params.unknowns];
        let my = slice_of(node, nodes, params.unknowns);
        for iter in 0..params.iterations {
            // Compute my slice from the current full vector.
            let slice: Vec<f64> = my.clone().map(|i| sys.update(i, &x)).collect();
            ctx.compute_sliced(
                params.mac_cost * (slice.len() as u64 * params.unknowns as u64),
                crate::harness::CPU_QUANTUM,
            );
            // Broadcast it (one group message per node per iteration).
            let mut buf = Vec::with_capacity(slice.len() * 8);
            for &v in &slice {
                buf.extend_from_slice(&v.to_bits().to_be_bytes());
            }
            board
                .publish(ctx, u64::from(iter), node, &buf)
                .expect("publish slice");
            // Assemble the next full vector from everyone's broadcast
            // (local guarded reads).
            for peer in 0..nodes {
                let bytes = board.get(ctx, u64::from(iter), peer).expect("slice");
                let range = slice_of(peer, nodes, params.unknowns);
                for (k, c) in bytes.chunks_exact(8).enumerate() {
                    x[range.start + k] =
                        f64::from_bits(u64::from_be_bytes(c.try_into().expect("8 bytes")));
                }
            }
        }
        checksum(&x)
    });
    let checksum = results[0];
    for r in &results {
        assert_eq!(*r, checksum, "all nodes assemble the same solution");
    }
    report("leq", cfg, &cluster, elapsed, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_converges_on_dominant_system() {
        let p = LeqParams::small();
        let sys = System::generate(p.instance_seed, p.unknowns);
        let mut x = vec![0.0; p.unknowns];
        for _ in 0..200 {
            let xn: Vec<f64> = (0..p.unknowns).map(|i| sys.update(i, &x)).collect();
            x = xn;
        }
        // Residual check: A x ~= b.
        for i in 0..p.unknowns {
            let mut ax = 0.0;
            for j in 0..p.unknowns {
                ax += sys.a[i * p.unknowns + j] * x[j];
            }
            assert!((ax - sys.b[i]).abs() < 1e-6, "row {i} residual too big");
        }
    }

    #[test]
    fn slice_partition_covers_everything() {
        for nodes in [1u32, 5, 16, 32] {
            let n = 130;
            let mut covered = vec![false; n];
            for node in 0..nodes {
                for i in slice_of(node, nodes, n) {
                    assert!(!covered[i]);
                    covered[i] = true;
                }
            }
            assert!(covered.iter().all(|&c| c));
        }
    }

    #[test]
    fn sequential_deterministic() {
        let p = LeqParams::small();
        assert_eq!(solve_sequential(&p), solve_sequential(&p));
    }
}
