//! # apps — the six parallel Orca applications of Table 3
//!
//! Real implementations of the paper's application suite, each built on the
//! Orca runtime's shared data-objects and runnable on either protocol
//! implementation through the shared [`harness`]:
//!
//! | App | Pattern | Paper's observation |
//! |---|---|---|
//! | [`tsp`] | central job queue + replicated bound | coarse grain, marginal difference |
//! | [`asp`] | one pivot-row broadcast per iteration | marginal difference, latency-bound speedup |
//! | [`ab`]  | job queue + replicated alpha | poor speedup from search overhead |
//! | [`rl`]  | guarded buffer exchange | user-space wins (continuation replies) |
//! | [`sor`] | guarded buffer exchange | user-space wins; saturates ≥16 nodes |
//! | [`leq`] | per-node broadcast every iteration | kernel wins unless the sequencer is dedicated |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Index-based loops in the numerical kernels mirror the matrix mathematics.
#![allow(clippy::needless_range_loop)]

pub mod ab;
pub mod asp;
pub mod fleet;
pub mod harness;
pub mod leq;
pub mod rl;
pub mod sor;
pub mod tsp;

pub use harness::{build_cluster, report, run_workers, AppReport, ProtoImpl, RunConfig};
