//! Quick smoke run of every application at toy scale on all implementations.
use apps::{ProtoImpl, RunConfig};

fn main() {
    for imp in [
        ProtoImpl::KernelSpace,
        ProtoImpl::UserSpace,
        ProtoImpl::UserSpaceDedicated,
    ] {
        for nodes in [1u32, 3] {
            let cfg = RunConfig::new(nodes, imp, 1);
            println!("{}", apps::tsp::run(&cfg, &apps::tsp::TspParams::small()));
            println!("{}", apps::asp::run(&cfg, &apps::asp::AspParams::small()));
            println!("{}", apps::ab::run(&cfg, &apps::ab::AbParams::small()));
            println!("{}", apps::rl::run(&cfg, &apps::rl::RlParams::small()));
            println!("{}", apps::sor::run(&cfg, &apps::sor::SorParams::small()));
            println!("{}", apps::leq::run(&cfg, &apps::leq::LeqParams::small()));
        }
    }
}
