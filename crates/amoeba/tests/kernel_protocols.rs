//! End-to-end tests of the kernel-space protocols: 3-way RPC semantics,
//! at-most-once under loss, the same-thread reply restriction, totally
//! ordered group communication, and the BB large-message method.

use amoeba::{GroupMember, GroupSpec, Machine, Port, RpcClient, RpcConfig, RpcServer};
use bytes::Bytes;
use chaos::testutil;
use desim::{ms, Simulation};
use ethernet::Network;

fn boot_cluster(sim: &mut Simulation, n: u32) -> (Network, Vec<Machine>) {
    let w = testutil::boot_machines(sim, n);
    (w.net, w.machines)
}

fn payload(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

// ---------------------------------------------------------------------------
// RPC
// ---------------------------------------------------------------------------

#[test]
fn rpc_request_reply_roundtrip() {
    let mut sim = Simulation::new(1);
    let (_net, machines) = boot_cluster(&mut sim, 2);
    let port = Port(7);
    let server = RpcServer::register(&machines[1], port);
    let client = RpcClient::install(&machines[0], RpcConfig::default());

    sim.spawn_daemon(machines[1].proc(), "server", move |ctx| loop {
        let (req, token) = server.get_request(ctx);
        let mut reply = req.to_vec();
        reply.reverse();
        server.put_reply(ctx, token, Bytes::from(reply));
    });
    let h = sim.spawn(machines[0].proc(), "client", move |ctx| {
        let reply = client
            .trans(ctx, port, Bytes::from_static(b"hello"))
            .expect("rpc ok");
        assert_eq!(&reply[..], b"olleh");
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn rpc_client_pays_no_context_switch() {
    // The kernel-space fast path: the reply is handed to the blocked client
    // from the interrupt handler, so the client machine sees zero
    // thread-level context switches for a pure RPC exchange.
    let mut sim = Simulation::new(1);
    let (_net, machines) = boot_cluster(&mut sim, 2);
    let port = Port(7);
    let server = RpcServer::register(&machines[1], port);
    let client = RpcClient::install(&machines[0], RpcConfig::default());
    sim.spawn_daemon(machines[1].proc(), "server", move |ctx| loop {
        let (req, token) = server.get_request(ctx);
        server.put_reply(ctx, token, req);
    });
    let h = sim.spawn(machines[0].proc(), "client", move |ctx| {
        for _ in 0..5 {
            client.trans(ctx, port, payload(64)).expect("rpc ok");
        }
    });
    sim.run_until_finished(&h).expect("run");
    let report = sim.report();
    let client_proc = report
        .procs
        .iter()
        .find(|p| p.name == "m0")
        .expect("client proc");
    assert_eq!(
        client_proc.switches, 0,
        "kernel RPC must not context-switch the client machine"
    );
    assert!(client_proc.interrupt_time > desim::SimDuration::ZERO);
}

#[test]
fn rpc_large_request_fragments() {
    let mut sim = Simulation::new(1);
    let (net, machines) = boot_cluster(&mut sim, 2);
    let port = Port(9);
    let server = RpcServer::register(&machines[1], port);
    let client = RpcClient::install(&machines[0], RpcConfig::default());
    sim.spawn_daemon(machines[1].proc(), "server", move |ctx| loop {
        let (req, token) = server.get_request(ctx);
        assert_eq!(req, payload(8000));
        server.put_reply(ctx, token, Bytes::new());
    });
    let h = sim.spawn(machines[0].proc(), "client", move |ctx| {
        client.trans(ctx, port, payload(8000)).expect("rpc ok");
    });
    sim.run_until_finished(&h).expect("run");
    // 8000B + 56B header = 6 fragments, plus reply, ack, locate, reply.
    assert!(net.total_stats().frames >= 6 + 2);
}

#[test]
fn rpc_survives_lost_request_and_reply() {
    let mut sim = Simulation::new(7);
    let (net, machines) = boot_cluster(&mut sim, 2);
    let port = Port(1);
    let server = RpcServer::register(&machines[1], port);
    let client = RpcClient::install(
        &machines[0],
        RpcConfig {
            timeout: ms(5),
            retries: 10,
        },
    );
    let executions = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    let exec2 = executions.clone();
    sim.spawn_daemon(machines[1].proc(), "server", move |ctx| loop {
        let (req, token) = server.get_request(ctx);
        exec2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        server.put_reply(ctx, token, req);
    });
    let net2 = net.clone();
    let h = sim.spawn(machines[0].proc(), "client", move |ctx| {
        // Warm the route first so the locate is not part of the drop dance.
        client.trans(ctx, port, payload(4)).expect("warmup");
        // Drop the next wire frame: the request dies, retransmit recovers.
        net2.faults().lock().force_drop_next = 1;
        let r = client.trans(ctx, port, payload(10)).expect("recovers");
        assert_eq!(r, payload(10));
        // Now drop two frames: request retransmit then reply both survive
        // eventually via further retries.
        net2.faults().lock().force_drop_next = 2;
        let r = client
            .trans(ctx, port, payload(20))
            .expect("recovers again");
        assert_eq!(r, payload(20));
    });
    sim.run_until_finished(&h).expect("run");
    // At-most-once: the lost-reply case must not have re-executed the
    // request (cached reply retransmission served it).
    let execs = executions.load(std::sync::atomic::Ordering::SeqCst);
    assert_eq!(execs, 3, "each trans executed exactly once");
}

#[test]
fn rpc_times_out_when_server_missing() {
    let mut sim = Simulation::new(1);
    let (_net, machines) = boot_cluster(&mut sim, 2);
    let client = RpcClient::install(
        &machines[0],
        RpcConfig {
            timeout: ms(2),
            retries: 2,
        },
    );
    let h = sim.spawn(machines[0].proc(), "client", move |ctx| {
        let err = client
            .trans(ctx, Port(0xdead), payload(4))
            .expect_err("no server");
        assert_eq!(err, amoeba::RpcError::Timeout);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
#[should_panic(expected = "put_reply from the thread that issued get_request")]
fn rpc_reply_from_wrong_thread_rejected() {
    let mut sim = Simulation::new(1);
    let (_net, machines) = boot_cluster(&mut sim, 2);
    let port = Port(2);
    let server = RpcServer::register(&machines[1], port);
    let client = RpcClient::install(&machines[0], RpcConfig::default());
    let server2 = server.clone();
    sim.spawn_daemon(machines[1].proc(), "server", move |ctx| {
        let (req, token) = server.get_request(ctx);
        // Hand the token to a different thread — Amoeba forbids this.
        let srv = server2.clone();
        let helper = ctx.spawn("helper", move |ctx2| {
            srv.put_reply(ctx2, token, req);
        });
        helper.join(ctx);
    });
    sim.spawn(machines[0].proc(), "client", move |ctx| {
        let _ = client.trans(ctx, port, payload(4));
    });
    let _ = sim.run();
}

// ---------------------------------------------------------------------------
// Group communication
// ---------------------------------------------------------------------------

/// Spawns a collector on each member that records delivered (sender, seq,
/// first payload byte) triples into a shared log.
type DeliveryLog = std::sync::Arc<std::sync::Mutex<Vec<Vec<(u32, u64, u8)>>>>;

fn spawn_collectors(
    sim: &mut Simulation,
    members: &[GroupMember],
    expect_each: usize,
) -> DeliveryLog {
    let log: DeliveryLog =
        std::sync::Arc::new(std::sync::Mutex::new(vec![Vec::new(); members.len()]));
    for (i, m) in members.iter().enumerate() {
        let m = m.clone();
        let log = log.clone();
        sim.spawn(m.machine().proc(), &format!("collect{i}"), move |ctx| {
            for _ in 0..expect_each {
                let msg = m.recv(ctx);
                log.lock().expect("log")[i].push((
                    msg.sender,
                    msg.seq,
                    msg.payload.first().copied().unwrap_or(0),
                ));
            }
        });
    }
    log
}

fn make_group(_sim: &mut Simulation, machines: &[Machine], sequencer: usize) -> Vec<GroupMember> {
    let spec = GroupSpec::build(1, machines.len(), sequencer);
    machines
        .iter()
        .enumerate()
        .map(|(i, m)| GroupMember::join(m, spec.clone(), i as u32))
        .collect()
}

#[test]
fn group_total_order_across_members() {
    let mut sim = Simulation::new(5);
    let (_net, machines) = boot_cluster(&mut sim, 4);
    let members = make_group(&mut sim, &machines, 0);
    let per_sender = 10usize;
    let total = per_sender * members.len();
    let log = spawn_collectors(&mut sim, &members, total);
    for (i, m) in members.iter().enumerate() {
        let m = m.clone();
        sim.spawn(m.machine().proc(), &format!("send{i}"), move |ctx| {
            for k in 0..per_sender {
                let body = Bytes::from(vec![(i * per_sender + k) as u8; 16]);
                m.send(ctx, body).expect("sequenced");
            }
        });
    }
    sim.run().expect("run");
    let log = log.lock().expect("log");
    assert_eq!(log[0].len(), total);
    // Sequence numbers are contiguous from 1 and identical at every member.
    for member_log in log.iter() {
        for (idx, (_, seq, _)) in member_log.iter().enumerate() {
            assert_eq!(*seq, idx as u64 + 1);
        }
        assert_eq!(member_log, &log[0], "identical total order everywhere");
    }
}

#[test]
fn group_send_returns_sequence_number() {
    let mut sim = Simulation::new(2);
    let (_net, machines) = boot_cluster(&mut sim, 2);
    let members = make_group(&mut sim, &machines, 0);
    let _log = spawn_collectors(&mut sim, &members, 3);
    let m1 = members[1].clone();
    let h = sim.spawn(m1.machine().proc(), "sender", move |ctx| {
        assert_eq!(m1.send(ctx, payload(4)).expect("ok"), 1);
        assert_eq!(m1.send(ctx, payload(4)).expect("ok"), 2);
        assert_eq!(m1.send(ctx, payload(4)).expect("ok"), 3);
    });
    sim.run_until_finished(&h).expect("run");
    let _ = sim.run();
}

#[test]
fn group_large_messages_use_bb_and_arrive_intact() {
    let mut sim = Simulation::new(3);
    let (_net, machines) = boot_cluster(&mut sim, 3);
    let members = make_group(&mut sim, &machines, 0);
    let body = payload(8000); // well past the BB threshold
    let check: DeliveryLog =
        std::sync::Arc::new(std::sync::Mutex::new(vec![Vec::new(); members.len()]));
    for (i, m) in members.iter().enumerate() {
        let m = m.clone();
        let check = check.clone();
        let expected = body.clone();
        sim.spawn(m.machine().proc(), &format!("collect{i}"), move |ctx| {
            let msg = m.recv(ctx);
            assert_eq!(msg.payload, expected, "BB payload intact at member {i}");
            check.lock().expect("log")[i].push((msg.sender, msg.seq, 0));
        });
    }
    let sender = members[1].clone();
    let body2 = body.clone();
    sim.spawn(sender.machine().proc(), "sender", move |ctx| {
        sender.send(ctx, body2).expect("sequenced");
    });
    sim.run().expect("run");
    for member_log in check.lock().expect("log").iter() {
        assert_eq!(member_log, &[(1, 1, 0)]);
    }
}

#[test]
fn group_recovers_from_lost_sequencer_multicast() {
    let mut sim = Simulation::new(11);
    let (net, machines) = boot_cluster(&mut sim, 3);
    let members = make_group(&mut sim, &machines, 0);
    let total = 6usize;
    let log = spawn_collectors(&mut sim, &members, total);
    let sender = members[1].clone();
    let net2 = net.clone();
    sim.spawn(sender.machine().proc(), "sender", move |ctx| {
        sender.send(ctx, payload(8)).expect("warm");
        // Kill the next two frames (the REQ or the sequenced multicast):
        // retransmission and gap-repair must recover.
        net2.faults().lock().force_drop_next = 2;
        for _ in 0..total - 1 {
            sender.send(ctx, payload(8)).expect("recovered");
        }
    });
    sim.run().expect("run");
    let log = log.lock().expect("log");
    for member_log in log.iter() {
        assert_eq!(member_log.len(), total);
        assert_eq!(member_log, &log[0]);
    }
}

#[test]
fn group_random_loss_still_totally_ordered() {
    let mut sim = Simulation::new(17);
    let (net, machines) = boot_cluster(&mut sim, 3);
    let members = make_group(&mut sim, &machines, 0);
    net.faults().lock().rx_loss_prob = 0.05;
    let per_sender = 15usize;
    let total = per_sender * members.len();
    let log = spawn_collectors(&mut sim, &members, total);
    for (i, m) in members.iter().enumerate() {
        let m = m.clone();
        sim.spawn(m.machine().proc(), &format!("send{i}"), move |ctx| {
            for _ in 0..per_sender {
                m.send(ctx, payload(40)).expect("sequenced despite loss");
            }
        });
    }
    sim.run().expect("run");
    let log = log.lock().expect("log");
    for member_log in log.iter() {
        assert_eq!(member_log.len(), total);
        assert_eq!(member_log, &log[0], "total order survives 5% receiver loss");
    }
}
