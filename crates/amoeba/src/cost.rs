//! The calibrated cost model of the simulated Amoeba/SPARC machines.
//!
//! Every constant is a knob: the ablation benchmark zeroes them one at a time
//! to reproduce the paper's Section 4 accounting of where the user-space
//! overhead comes from. Defaults are calibrated so the Table 1/2
//! micro-benchmarks land close to the published 50 MHz SPARCstation numbers.

use desim::SimDuration;

/// Size of the Amoeba kernel RPC header (paper, Section 4.2).
pub const AMOEBA_RPC_HEADER_BYTES: usize = 56;

/// Size of the Amoeba kernel group protocol header (paper, Section 4.3).
pub const AMOEBA_GROUP_HEADER_BYTES: usize = 52;

/// Per-operation CPU costs of the simulated machines.
///
/// All costs are charged through `desim`'s CPU model: thread-level costs via
/// `compute` (subject to context-switch charges and interrupt preemption) and
/// interrupt-level costs via `interrupt_compute` (which preempt thread work).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Full thread context switch (the paper measures two of these, 140 µs,
    /// on the user-space RPC client path).
    pub context_switch: SimDuration,
    /// Entering the kernel: trap plus saving the register windows in use.
    pub syscall_enter: SimDuration,
    /// One register-window underflow trap on the way back to user space
    /// (about 6 µs on the 50 MHz SPARC; Amoeba restores only the topmost
    /// window, so deep call stacks fault the rest back in one by one).
    pub window_trap: SimDuration,
    /// Taking a network interrupt (software interrupt entry/exit).
    pub interrupt_overhead: SimDuration,
    /// Kernel protocol processing to transmit one packet.
    pub kernel_packet_send: SimDuration,
    /// Kernel protocol processing to receive one packet.
    pub kernel_packet_recv: SimDuration,
    /// Protocol-layer processing per message hop (header construction,
    /// connection state, timer management) in either RPC or group stack.
    pub protocol_layer: SimDuration,
    /// Copying one byte across the user/kernel boundary.
    pub copy_byte: SimDuration,
    /// Crossing into user space to deliver a message to a user-level
    /// endpoint (address-space crossing plus wakeup bookkeeping).
    pub user_deliver: SimDuration,
    /// Extra cost of the unoptimized user-level FLIP interface (the paper's
    /// unexplained 54 µs RPC / 30 µs group gap: user-to-kernel address
    /// translation and friends).
    pub flip_user_interface: SimDuration,
    /// Running one extra (portable, user-space) fragmentation layer over a
    /// message — the paper charges 20 µs per message for Panda's double
    /// fragmentation.
    pub fragmentation_layer: SimDuration,
    /// Dispatch from the interrupt handler to a user-space sequencer thread:
    /// interrupt runs to completion, the scheduler is invoked, contexts are
    /// switched (110 µs in the paper).
    pub sequencer_thread_switch: SimDuration,
    /// The same dispatch when the sequencer machine is dedicated: the
    /// sequencer context is still loaded (60 µs in the paper).
    pub sequencer_thread_switch_dedicated: SimDuration,
    /// Number of register windows a shallow (kernel wrapper) call stack
    /// faults back in after a syscall.
    pub shallow_call_depth: u64,
    /// Number of register windows Panda's deeper layering faults back in
    /// (all six on the paper's SPARCs).
    pub deep_call_depth: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            context_switch: SimDuration::from_micros(70),
            syscall_enter: SimDuration::from_micros(20),
            window_trap: SimDuration::from_micros(6),
            interrupt_overhead: SimDuration::from_micros(25),
            kernel_packet_send: SimDuration::from_micros(55),
            kernel_packet_recv: SimDuration::from_micros(65),
            protocol_layer: SimDuration::from_micros(110),
            copy_byte: SimDuration::from_nanos(50),
            user_deliver: SimDuration::from_micros(35),
            flip_user_interface: SimDuration::from_micros(25),
            fragmentation_layer: SimDuration::from_micros(20),
            sequencer_thread_switch: SimDuration::from_micros(110),
            sequencer_thread_switch_dedicated: SimDuration::from_micros(60),
            shallow_call_depth: 3,
            deep_call_depth: 6,
        }
    }
}

impl CostModel {
    /// Cost of a system call with `windows` register windows to fault back.
    pub fn syscall(&self, windows: u64) -> SimDuration {
        self.syscall_enter + self.window_trap * windows
    }

    /// Cost of copying `bytes` across the user/kernel boundary.
    pub fn copy(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(self.copy_byte.as_nanos() * bytes as u64)
    }

    /// A cost model with every charge zeroed; the baseline for ablation.
    pub fn free() -> Self {
        CostModel {
            context_switch: SimDuration::ZERO,
            syscall_enter: SimDuration::ZERO,
            window_trap: SimDuration::ZERO,
            interrupt_overhead: SimDuration::ZERO,
            kernel_packet_send: SimDuration::ZERO,
            kernel_packet_recv: SimDuration::ZERO,
            protocol_layer: SimDuration::ZERO,
            copy_byte: SimDuration::ZERO,
            user_deliver: SimDuration::ZERO,
            flip_user_interface: SimDuration::ZERO,
            fragmentation_layer: SimDuration::ZERO,
            sequencer_thread_switch: SimDuration::ZERO,
            sequencer_thread_switch_dedicated: SimDuration::ZERO,
            shallow_call_depth: 0,
            deep_call_depth: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::us;

    #[test]
    fn syscall_scales_with_window_depth() {
        let c = CostModel::default();
        assert_eq!(c.syscall(0), c.syscall_enter);
        assert_eq!(c.syscall(6) - c.syscall(0), us(36));
    }

    #[test]
    fn copy_scales_with_bytes() {
        let c = CostModel::default();
        assert_eq!(c.copy(1000), us(50));
        assert_eq!(c.copy(0), SimDuration::ZERO);
    }

    #[test]
    fn free_model_charges_nothing() {
        let c = CostModel::free();
        assert_eq!(c.syscall(6), SimDuration::ZERO);
        assert_eq!(c.copy(4096), SimDuration::ZERO);
    }
}
