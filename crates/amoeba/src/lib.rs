//! # amoeba — the Amoeba microkernel model
//!
//! The kernel-resident half of the paper's comparison:
//!
//! - [`CostModel`]: calibrated per-operation CPU costs of the 50 MHz SPARC
//!   machines (context switches, register-window traps, system calls,
//!   interrupt processing, copies) — every constant an ablation knob;
//! - [`Machine`]: one booted machine — CPU, kernel FLIP interface, network
//!   interrupt service loop, and the syscall entry points user-space code
//!   (the Panda user-space implementation) uses to reach raw FLIP;
//! - [`RpcServer`]/[`RpcClient`]: Amoeba's kernel-space 3-way RPC with the
//!   `get_request`/`put_reply` same-thread restriction;
//! - [`GroupMember`]: Amoeba's kernel-space totally-ordered group
//!   communication with the sequencer running in interrupt context.
//!
//! The structural point reproduced here: kernel protocol work runs at
//! interrupt level, so a blocked caller is resumed without a context switch,
//! while user-space protocols must schedule daemon threads — the
//! microsecond-level asymmetry Section 4 of the paper accounts for.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod group;
mod machine;
mod rpc;

pub use cost::{CostModel, AMOEBA_GROUP_HEADER_BYTES, AMOEBA_RPC_HEADER_BYTES};
pub use group::{GroupConfig, GroupError, GroupMember, GroupMessage, GroupSpec};
pub use machine::{fragments_of, KernelHandler, Machine};
pub use rpc::{
    client_addr, port_addr, Port, ReplyToken, RpcClient, RpcConfig, RpcError, RpcServer,
};
