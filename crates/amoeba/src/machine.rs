//! One simulated Amoeba machine: a CPU, a FLIP interface in the kernel, the
//! network receive loop, and the cost-charging entry points through which all
//! protocol code reaches the network.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use desim::trace::Layer;
use desim::{Ctx, LaneId, ProcId, SimChannel, Simulation};
use ethernet::{MacAddr, McastAddr, Network, SegmentId};
use flip::{FlipAddr, FlipIface, FlipMessage, FLIP_FRAGMENT_BYTES};
use parking_lot::Mutex;

use crate::cost::CostModel;

/// A kernel-resident message handler, run in interrupt context by the
/// network receive loop (it must not block).
pub type KernelHandler = Arc<dyn Fn(&Ctx, FlipMessage) + Send + Sync>;

enum Sink {
    Kernel(KernelHandler),
    User(SimChannel<FlipMessage>),
}

struct MachineInner {
    name: String,
    proc: ProcId,
    lane: LaneId,
    iface: FlipIface,
    /// Shared, not cloned: at fleet scale thousands of machines reference
    /// one calibration instead of each carrying a private copy.
    cost: Arc<CostModel>,
    sinks: Mutex<HashMap<FlipAddr, Sink>>,
    dropped: Mutex<u64>,
}

/// Handle to a booted machine. Clonable; clones share the machine.
#[derive(Clone)]
pub struct Machine {
    inner: Arc<MachineInner>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("name", &self.inner.name)
            .field("mac", &self.inner.iface.mac())
            .finish()
    }
}

impl Machine {
    /// Boots a machine: adds a processor, attaches a NIC on `segment`, brings
    /// up the kernel FLIP interface, and starts the network receive loop.
    pub fn boot(
        sim: &mut Simulation,
        net: &mut Network,
        segment: SegmentId,
        mac: MacAddr,
        name: &str,
        cost: CostModel,
    ) -> Machine {
        Machine::boot_on(sim, net, segment, mac, name, Arc::new(cost), LaneId::ZERO)
    }

    /// Boots a machine on a specific scheduler lane. The lane must be the
    /// lane `segment`'s daemon runs on: a machine interacts with the medium
    /// through plain channels, which are only legal within one lane. The
    /// cost model is shared (`Arc`), so a fleet of identical machines
    /// carries one copy.
    pub fn boot_on(
        sim: &mut Simulation,
        net: &mut Network,
        segment: SegmentId,
        mac: MacAddr,
        name: &str,
        cost: Arc<CostModel>,
        lane: LaneId,
    ) -> Machine {
        assert_eq!(
            net.segment_lane(segment),
            lane,
            "machine {name} must boot on its segment's lane (NIC channels do not cross lanes)"
        );
        let proc = sim.add_processor_with_switch_cost_on(lane, name, cost.context_switch);
        let nic = net.attach(mac, segment);
        let iface = FlipIface::new(nic);
        let machine = Machine {
            inner: Arc::new(MachineInner {
                name: name.to_owned(),
                proc,
                lane,
                iface,
                cost,
                sinks: Mutex::new(HashMap::new()),
                dropped: Mutex::new(0),
            }),
        };
        let rx_machine = machine.clone();
        sim.spawn_daemon_on_lane(lane, proc, &format!("{name}-netisr"), move |ctx| {
            rx_machine.rx_loop(ctx);
        });
        machine
    }

    /// The kernel network interrupt service loop.
    fn rx_loop(&self, ctx: &Ctx) {
        let rx = self.inner.iface.nic().rx().clone();
        let cost = &self.inner.cost;
        while let Some(frame) = rx.recv(ctx) {
            // Interrupt entry plus kernel per-packet receive processing.
            ctx.trace_cost(Layer::Flip, "interrupt", cost.interrupt_overhead);
            ctx.trace_cost(Layer::Flip, "kernel_packet_recv", cost.kernel_packet_recv);
            ctx.interrupt_compute(cost.interrupt_overhead + cost.kernel_packet_recv);
            for msg in self.inner.iface.handle_frame(ctx, &frame) {
                self.dispatch(ctx, msg);
            }
        }
    }

    /// Routes a complete FLIP message to its kernel handler or user endpoint.
    /// Runs in whatever context the caller is in (interrupt for network
    /// arrivals, the calling thread for local loopback).
    pub(crate) fn dispatch(&self, ctx: &Ctx, msg: FlipMessage) {
        let sink = {
            let sinks = self.inner.sinks.lock();
            match sinks.get(&msg.dst) {
                Some(Sink::Kernel(h)) => Some(Ok(Arc::clone(h))),
                Some(Sink::User(ch)) => Some(Err(ch.clone())),
                None => None,
            }
        };
        match sink {
            Some(Ok(handler)) => handler(ctx, msg),
            Some(Err(channel)) => {
                // Crossing into user space: wakeup bookkeeping plus copying
                // the message out of kernel buffers.
                let cost = &self.inner.cost;
                ctx.trace_cost(Layer::Flip, "user_deliver", cost.user_deliver);
                ctx.trace_cost(Layer::Flip, "copy", cost.copy(msg.payload.len()));
                ctx.interrupt_compute(cost.user_deliver + cost.copy(msg.payload.len()));
                let _ = channel.send(ctx, msg);
            }
            None => {
                *self.inner.dropped.lock() += 1;
                ctx.trace_instant(
                    Layer::Flip,
                    "no_sink_drop",
                    &[("bytes", msg.payload.len() as u64)],
                );
            }
        }
    }

    /// Registers a kernel-resident protocol handler for `addr`.
    pub fn register_kernel_handler(&self, addr: FlipAddr, handler: KernelHandler) {
        self.inner.iface.register(addr);
        self.inner.sinks.lock().insert(addr, Sink::Kernel(handler));
    }

    /// Registers a user-space endpoint; complete messages for `addr` are
    /// copied out of the kernel into the returned channel.
    pub fn register_user_endpoint(&self, addr: FlipAddr) -> SimChannel<FlipMessage> {
        let ch = SimChannel::new();
        self.register_user_endpoint_into(addr, ch.clone());
        ch
    }

    /// Registers a user-space endpoint delivering into an existing channel
    /// (so one receive daemon can serve several addresses).
    pub fn register_user_endpoint_into(&self, addr: FlipAddr, ch: SimChannel<FlipMessage>) {
        self.inner.iface.register(addr);
        self.inner.sinks.lock().insert(addr, Sink::User(ch));
    }

    /// Joins FLIP group `group` (Ethernet multicast `eth`) with a
    /// kernel-resident handler.
    pub fn join_kernel_group(&self, group: FlipAddr, eth: McastAddr, handler: KernelHandler) {
        self.inner.iface.join_group(group, eth);
        self.inner.sinks.lock().insert(group, Sink::Kernel(handler));
    }

    /// Joins FLIP group `group` with delivery to a user-space endpoint.
    pub fn join_user_group(&self, group: FlipAddr, eth: McastAddr) -> SimChannel<FlipMessage> {
        let ch = SimChannel::new();
        self.join_user_group_into(group, eth, ch.clone());
        ch
    }

    /// Joins FLIP group `group` delivering into an existing channel.
    pub fn join_user_group_into(
        &self,
        group: FlipAddr,
        eth: McastAddr,
        ch: SimChannel<FlipMessage>,
    ) {
        self.inner.iface.join_group(group, eth);
        self.inner.sinks.lock().insert(group, Sink::User(ch));
    }

    /// Removes the sink (kernel or user) registered for `addr`.
    pub fn unregister(&self, addr: FlipAddr) {
        self.inner.iface.unregister(addr);
        self.inner.sinks.lock().remove(&addr);
    }

    /// Sends from kernel context (a protocol handler or a syscall already
    /// charged by the caller): pays kernel per-packet transmit processing at
    /// interrupt level and short-circuits local destinations through the
    /// dispatch table.
    pub fn kernel_send(&self, ctx: &Ctx, src: FlipAddr, dst: FlipAddr, payload: Bytes) {
        let frags = fragments_of(payload.len());
        ctx.trace_cost(
            Layer::Flip,
            "kernel_packet_send",
            self.inner.cost.kernel_packet_send * frags,
        );
        ctx.interrupt_compute(self.inner.cost.kernel_packet_send * frags);
        if let Some(local) = self.inner.iface.send(ctx, src, dst, payload) {
            self.dispatch(ctx, local);
        }
    }

    /// Multicasts from kernel context; the local copy (FLIP groups do not
    /// loop frames back) is dispatched through the local sink.
    pub fn kernel_send_group(&self, ctx: &Ctx, src: FlipAddr, group: FlipAddr, payload: Bytes) {
        let frags = fragments_of(payload.len());
        ctx.trace_cost(
            Layer::Flip,
            "kernel_packet_send",
            self.inner.cost.kernel_packet_send * frags,
        );
        ctx.interrupt_compute(self.inner.cost.kernel_packet_send * frags);
        if let Some(local) = self.inner.iface.send_group(ctx, src, group, payload) {
            self.dispatch(ctx, local);
        }
    }

    /// The user-level FLIP send syscall (the extension the paper's user-space
    /// implementation is built on): charges the full trap, copy, per-packet,
    /// and unoptimized-interface costs on the calling thread, then transmits.
    pub fn flip_send_syscall(&self, ctx: &Ctx, src: FlipAddr, dst: FlipAddr, payload: Bytes) {
        let cost = &self.inner.cost;
        let frags = fragments_of(payload.len());
        self.trace_flip_syscall_costs(ctx, payload.len(), frags);
        ctx.compute(
            cost.syscall(cost.deep_call_depth)
                + cost.flip_user_interface
                + cost.copy(payload.len())
                + cost.kernel_packet_send * frags,
        );
        if let Some(local) = self.inner.iface.send(ctx, src, dst, payload) {
            self.dispatch(ctx, local);
        }
    }

    /// The user-level FLIP multicast syscall; same cost structure as
    /// [`Machine::flip_send_syscall`]. The local copy is dispatched so a
    /// member machine sees its own group traffic.
    pub fn flip_send_group_syscall(
        &self,
        ctx: &Ctx,
        src: FlipAddr,
        group: FlipAddr,
        payload: Bytes,
    ) {
        let cost = &self.inner.cost;
        let frags = fragments_of(payload.len());
        self.trace_flip_syscall_costs(ctx, payload.len(), frags);
        ctx.compute(
            cost.syscall(cost.deep_call_depth)
                + cost.flip_user_interface
                + cost.copy(payload.len())
                + cost.kernel_packet_send * frags,
        );
        if let Some(local) = self.inner.iface.send_group(ctx, src, group, payload) {
            self.dispatch(ctx, local);
        }
    }

    /// Emits per-component cost events for the FLIP send syscall path.
    fn trace_flip_syscall_costs(&self, ctx: &Ctx, len: usize, frags: u64) {
        if !ctx.tracing_enabled() {
            return;
        }
        let cost = &self.inner.cost;
        ctx.trace_cost(Layer::Flip, "syscall", cost.syscall(cost.deep_call_depth));
        ctx.trace_cost(Layer::Flip, "flip_user_interface", cost.flip_user_interface);
        ctx.trace_cost(Layer::Flip, "copy", cost.copy(len));
        ctx.trace_cost(
            Layer::Flip,
            "kernel_packet_send",
            cost.kernel_packet_send * frags,
        );
    }

    /// The machine's CPU.
    pub fn proc(&self) -> ProcId {
        self.inner.proc
    }

    /// The scheduler lane the machine (its processor and all its daemons)
    /// runs on. [`ProcId`]s are per-lane indices, so protocol modules that
    /// spawn threads on [`Machine::proc`] must do so on this lane.
    pub fn lane(&self) -> LaneId {
        self.inner.lane
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The machine's station address.
    pub fn mac(&self) -> MacAddr {
        self.inner.iface.mac()
    }

    /// The kernel FLIP interface (for protocol modules in this crate and for
    /// tests; user code goes through the syscall wrappers).
    pub fn iface(&self) -> &FlipIface {
        &self.inner.iface
    }

    /// The machine's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// The shared handle to the cost model (for booting further machines
    /// without duplicating the calibration).
    pub fn cost_shared(&self) -> Arc<CostModel> {
        Arc::clone(&self.inner.cost)
    }

    /// Messages that arrived for an address with no registered sink.
    pub fn dropped_messages(&self) -> u64 {
        *self.inner.dropped.lock()
    }
}

/// Number of FLIP fragments a message of `len` bytes needs.
pub fn fragments_of(len: usize) -> u64 {
    len.div_ceil(FLIP_FRAGMENT_BYTES).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_counts() {
        assert_eq!(fragments_of(0), 1);
        assert_eq!(fragments_of(1), 1);
        assert_eq!(fragments_of(FLIP_FRAGMENT_BYTES), 1);
        assert_eq!(fragments_of(FLIP_FRAGMENT_BYTES + 1), 2);
        assert_eq!(fragments_of(4096), 3);
    }
}
