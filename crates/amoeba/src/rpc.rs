//! Amoeba's kernel-space RPC: the 3-way protocol with `get_request` /
//! `put_reply` server semantics.
//!
//! The protocol: the client kernel sends the request; the server kernel
//! queues it for a thread blocked in `get_request`; that same thread must
//! issue `put_reply` (the restriction the paper's Section 3.1 works around
//! for asynchronous Orca replies); the reply implicitly acknowledges the
//! request and the client kernel sends an explicit acknowledgement for the
//! reply. Requests are retransmitted on timeout; the server suppresses
//! duplicates and retransmits cached replies, giving at-most-once execution.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use desim::trace::{Layer, Phase};
use desim::{Ctx, RecvTimeoutError, SimChannel, SimDuration, SwitchCharge, ThreadId};
use ethernet::MacAddr;
use flip::{FlipAddr, FlipMessage};
use parking_lot::Mutex;

use crate::cost::AMOEBA_RPC_HEADER_BYTES;
use crate::machine::{fragments_of, Machine};

/// A service port (Amoeba capabilities reduced to their routing essence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u64);

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port:{:x}", self.0)
    }
}

/// FLIP address a service port listens on.
pub fn port_addr(port: Port) -> FlipAddr {
    FlipAddr(0x2000_0000_0000_0000 | port.0)
}

/// FLIP address of a machine's kernel RPC client endpoint.
pub fn client_addr(mac: MacAddr) -> FlipAddr {
    FlipAddr(0x4000_0000_0000_0000 | u64::from(mac.0))
}

/// Client-side RPC tuning.
#[derive(Debug, Clone)]
pub struct RpcConfig {
    /// How long to wait for a reply before retransmitting the request.
    pub timeout: SimDuration,
    /// Number of (re)transmissions before giving up.
    pub retries: u32,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            timeout: SimDuration::from_millis(200),
            retries: 5,
        }
    }
}

/// Errors reported by [`RpcClient::trans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply after all retransmissions; the server is unreachable or down.
    Timeout,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "no reply from the server after all retries"),
        }
    }
}

impl std::error::Error for RpcError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Request,
    Reply,
    Ack,
    /// Server-alive probe answer: the request is held (e.g. a blocked
    /// guarded operation); the client keeps waiting.
    Working,
}

impl Kind {
    fn to_byte(self) -> u8 {
        match self {
            Kind::Request => 0,
            Kind::Reply => 1,
            Kind::Ack => 2,
            Kind::Working => 3,
        }
    }
    fn from_byte(b: u8) -> Option<Kind> {
        match b {
            0 => Some(Kind::Request),
            1 => Some(Kind::Reply),
            2 => Some(Kind::Ack),
            3 => Some(Kind::Working),
            _ => None,
        }
    }
}

struct Header {
    kind: Kind,
    seq: u64,
    client: FlipAddr,
    port: Port,
}

impl Header {
    fn encode_with(&self, body: &[u8]) -> Bytes {
        let mut buf = BytesMut::with_capacity(AMOEBA_RPC_HEADER_BYTES + body.len());
        buf.put_u8(self.kind.to_byte());
        buf.put_u64(self.seq);
        buf.put_u64(self.client.0);
        buf.put_u64(self.port.0);
        buf.put_slice(&[0u8; AMOEBA_RPC_HEADER_BYTES - 25]);
        debug_assert_eq!(buf.len(), AMOEBA_RPC_HEADER_BYTES);
        buf.put_slice(body);
        buf.freeze()
    }

    fn decode(payload: &Bytes) -> Option<(Header, Bytes)> {
        if payload.len() < AMOEBA_RPC_HEADER_BYTES {
            return None;
        }
        let b = &payload[..];
        let kind = Kind::from_byte(b[0])?;
        let rd = |o: usize| u64::from_be_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        Some((
            Header {
                kind,
                seq: rd(1),
                client: FlipAddr(rd(9)),
                port: Port(rd(17)),
            },
            payload.slice(AMOEBA_RPC_HEADER_BYTES..),
        ))
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

enum CacheEntry {
    InProgress,
    Done(Bytes),
}

struct ServerState {
    cache: HashMap<(FlipAddr, u64), CacheEntry>,
    /// Highest acknowledged (fully completed) sequence number per client.
    /// Client sequence numbers increase monotonically, so a request at or
    /// below the watermark is a stale duplicate whose retransmission was
    /// still in flight when the ack cleared its cache entry — re-executing
    /// it would break at-most-once semantics.
    completed: HashMap<FlipAddr, u64>,
}

/// A kernel-registered RPC service; server threads block in
/// [`RpcServer::get_request`].
#[derive(Clone)]
pub struct RpcServer {
    machine: Machine,
    port: Port,
    queue: SimChannel<(Bytes, ReplyToken)>,
    state: Arc<Mutex<ServerState>>,
}

impl fmt::Debug for RpcServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcServer")
            .field("port", &self.port)
            .field("machine", &self.machine.name())
            .finish()
    }
}

/// Capability to answer one request. `put_reply` must be issued by the same
/// thread that performed the `get_request` — the Amoeba kernel restriction
/// the paper's Orca runtime has to work around.
#[derive(Debug)]
pub struct ReplyToken {
    client: FlipAddr,
    seq: u64,
    served_by: Option<ThreadId>,
}

impl RpcServer {
    /// Registers a service on `machine` listening on `port`.
    pub fn register(machine: &Machine, port: Port) -> RpcServer {
        let queue: SimChannel<(Bytes, ReplyToken)> = SimChannel::new();
        let state = Arc::new(Mutex::new(ServerState {
            cache: HashMap::new(),
            completed: HashMap::new(),
        }));
        let server = RpcServer {
            machine: machine.clone(),
            port,
            queue: queue.clone(),
            state: Arc::clone(&state),
        };
        let handler_server = server.clone();
        machine.register_kernel_handler(
            port_addr(port),
            Arc::new(move |ctx, msg| handler_server.kernel_handle(ctx, msg)),
        );
        server
    }

    /// Kernel-side handling of packets addressed to the service.
    fn kernel_handle(&self, ctx: &Ctx, msg: FlipMessage) {
        let Some((header, body)) = Header::decode(&msg.payload) else {
            return;
        };
        match header.kind {
            Kind::Request => {
                ctx.trace_instant(Layer::Rpc, "request_rx", &[("seq", header.seq)]);
                let key = (header.client, header.seq);
                let resend = {
                    let mut st = self.state.lock();
                    if st.completed.get(&header.client).copied().unwrap_or(0) >= header.seq {
                        ctx.trace_instant(Layer::Rpc, "dup_suppressed", &[("seq", header.seq)]);
                        ctx.trace_instant(Layer::Rpc, "stale_request", &[("seq", header.seq)]);
                        return;
                    }
                    match st.cache.get(&key) {
                        None => {
                            st.cache.insert(key, CacheEntry::InProgress);
                            None
                        }
                        Some(CacheEntry::InProgress) => {
                            // Duplicate while in service (e.g. a blocked
                            // guarded operation): tell the client the server
                            // is alive so it keeps waiting (Amoeba probes
                            // the server rather than giving up).
                            let wire = Header {
                                kind: Kind::Working,
                                seq: header.seq,
                                client: header.client,
                                port: self.port,
                            }
                            .encode_with(&[]);
                            ctx.trace_instant(Layer::Rpc, "dup_suppressed", &[("seq", header.seq)]);
                            ctx.trace_instant(Layer::Rpc, "working_tx", &[("seq", header.seq)]);
                            self.machine.kernel_send(
                                ctx,
                                port_addr(self.port),
                                header.client,
                                wire,
                            );
                            return;
                        }
                        Some(CacheEntry::Done(reply)) => Some(reply.clone()),
                    }
                };
                match resend {
                    Some(reply) => {
                        // Lost reply: retransmit the cached one from the kernel.
                        ctx.trace_instant(Layer::Rpc, "dup_suppressed", &[("seq", header.seq)]);
                        ctx.trace_instant(Layer::Rpc, "reply_resend", &[("seq", header.seq)]);
                        let wire = Header {
                            kind: Kind::Reply,
                            seq: header.seq,
                            client: header.client,
                            port: self.port,
                        }
                        .encode_with(&reply);
                        self.machine
                            .kernel_send(ctx, port_addr(self.port), header.client, wire);
                    }
                    None => {
                        // Cross into the server process: wake a get_request
                        // thread (one context switch at the server, as the
                        // paper counts for both implementations).
                        let cost = self.machine.cost();
                        ctx.trace_cost(Layer::Rpc, "protocol_layer", cost.protocol_layer);
                        ctx.trace_cost(Layer::Rpc, "user_deliver", cost.user_deliver);
                        ctx.trace_cost(Layer::Rpc, "copy", cost.copy(body.len()));
                        ctx.interrupt_compute(
                            cost.protocol_layer + cost.user_deliver + cost.copy(body.len()),
                        );
                        let token = ReplyToken {
                            client: header.client,
                            seq: header.seq,
                            // Bound to the serving thread by get_request.
                            served_by: None,
                        };
                        let _ = self.queue.send(ctx, (body, token));
                    }
                }
            }
            Kind::Ack => {
                let mut st = self.state.lock();
                st.cache.remove(&(header.client, header.seq));
                let w = st.completed.entry(header.client).or_insert(0);
                *w = (*w).max(header.seq);
            }
            Kind::Reply | Kind::Working => {} // not for the server side
        }
    }

    /// Blocks until a request arrives; returns it with the reply capability.
    ///
    /// Charged as a blocking system call on the calling thread.
    pub fn get_request(&self, ctx: &Ctx) -> (Bytes, ReplyToken) {
        let cost = self.machine.cost();
        ctx.trace_cost(Layer::Rpc, "syscall", cost.syscall_enter);
        ctx.compute(cost.syscall_enter);
        let (body, mut token) = self
            .queue
            .recv(ctx)
            .expect("service queue lives as long as the server");
        // Returning from the blocking syscall: window traps on the way out.
        ctx.trace_cost(
            Layer::Rpc,
            "window_trap",
            cost.window_trap * cost.shallow_call_depth,
        );
        ctx.compute(cost.window_trap * cost.shallow_call_depth);
        token.served_by = Some(ctx.thread_id());
        (body, token)
    }

    /// Sends the reply for `token`.
    ///
    /// # Panics
    ///
    /// Panics if called from a different thread than the matching
    /// [`RpcServer::get_request`] — the Amoeba kernel enforces this pairing.
    pub fn put_reply(&self, ctx: &Ctx, token: ReplyToken, reply: Bytes) {
        assert_eq!(
            token.served_by,
            Some(ctx.thread_id()),
            "Amoeba requires put_reply from the thread that issued get_request"
        );
        let cost = self.machine.cost();
        let wire_len = reply.len() + AMOEBA_RPC_HEADER_BYTES;
        ctx.trace_instant(
            Layer::Rpc,
            "reply_tx",
            &[("seq", token.seq), ("bytes", reply.len() as u64)],
        );
        ctx.trace_cost(Layer::Rpc, "syscall", cost.syscall(cost.shallow_call_depth));
        ctx.trace_cost(Layer::Rpc, "protocol_layer", cost.protocol_layer);
        ctx.trace_cost(Layer::Rpc, "copy", cost.copy(reply.len()));
        ctx.trace_cost(
            Layer::Rpc,
            "kernel_packet_send",
            cost.kernel_packet_send * fragments_of(wire_len),
        );
        ctx.compute(
            cost.syscall(cost.shallow_call_depth)
                + cost.protocol_layer
                + cost.copy(reply.len())
                + cost.kernel_packet_send * fragments_of(wire_len),
        );
        {
            let mut st = self.state.lock();
            st.cache
                .insert((token.client, token.seq), CacheEntry::Done(reply.clone()));
        }
        let wire = Header {
            kind: Kind::Reply,
            seq: token.seq,
            client: token.client,
            port: self.port,
        }
        .encode_with(&reply);
        // The packet-send cost was charged on the calling thread above; use
        // the iface directly to avoid double-charging in kernel_send.
        if let Some(local) =
            self.machine
                .iface()
                .send(ctx, port_addr(self.port), token.client, wire)
        {
            self.machine.dispatch(ctx, local);
        }
    }

    /// The machine hosting this service.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Events carry the sequence number they answer: reply slots are pooled and
/// reused across calls (a 10k-machine fleet would otherwise allocate a fresh
/// channel per RPC), and a late duplicate from a slot's previous life must be
/// recognizable so the new owner can discard it.
enum ClientEvent {
    Reply(u64, Bytes),
    Working(u64),
}

/// Reply slots kept for reuse per client endpoint. Concurrency per machine is
/// tiny (a handful of app threads), so a short free list captures all reuse.
const SLOT_POOL_MAX: usize = 4;

struct ClientState {
    next_seq: u64,
    waiting: HashMap<u64, SimChannel<ClientEvent>>,
    slot_pool: Vec<SimChannel<ClientEvent>>,
}

/// The kernel RPC client endpoint of a machine. One per machine; any number
/// of threads may issue [`RpcClient::trans`] concurrently.
#[derive(Clone)]
pub struct RpcClient {
    machine: Machine,
    config: RpcConfig,
    state: Arc<Mutex<ClientState>>,
}

impl fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcClient")
            .field("machine", &self.machine.name())
            .finish()
    }
}

impl RpcClient {
    /// Installs the kernel RPC client endpoint on `machine`.
    pub fn install(machine: &Machine, config: RpcConfig) -> RpcClient {
        let state = Arc::new(Mutex::new(ClientState {
            next_seq: 1,
            waiting: HashMap::new(),
            slot_pool: Vec::new(),
        }));
        let client = RpcClient {
            machine: machine.clone(),
            config,
            state: Arc::clone(&state),
        };
        let me = client_addr(machine.mac());
        let handler_client = client.clone();
        machine.register_kernel_handler(
            me,
            Arc::new(move |ctx, msg| handler_client.kernel_handle(ctx, msg)),
        );
        client
    }

    fn kernel_handle(&self, ctx: &Ctx, msg: FlipMessage) {
        let Some((header, body)) = Header::decode(&msg.payload) else {
            return;
        };
        if header.kind != Kind::Reply && header.kind != Kind::Working {
            return;
        }
        let slot = {
            let st = self.state.lock();
            st.waiting.get(&header.seq).cloned()
        };
        let Some(slot) = slot else {
            return; // duplicate reply after completion; the ack already went out
        };
        if header.kind == Kind::Working {
            ctx.trace_instant(Layer::Rpc, "working_rx", &[("seq", header.seq)]);
            let _ = slot.send(ctx, ClientEvent::Working(header.seq));
            return;
        }
        ctx.trace_instant(
            Layer::Rpc,
            "reply_rx",
            &[("seq", header.seq), ("bytes", body.len() as u64)],
        );
        ctx.trace_cost(
            Layer::Rpc,
            "protocol_layer",
            self.machine.cost().protocol_layer,
        );
        ctx.interrupt_compute(self.machine.cost().protocol_layer);
        // Wake the blocked client directly from the interrupt handler — this
        // is the kernel-space fast path: no context switch is charged because
        // no other thread gets scheduled in between.
        let _ = slot.send(ctx, ClientEvent::Reply(header.seq, body));
        // The kernel sends the explicit acknowledgement (3rd leg, off the
        // client's critical path).
        let ack = Header {
            kind: Kind::Ack,
            seq: header.seq,
            client: client_addr(self.machine.mac()),
            port: header.port,
        }
        .encode_with(&[]);
        ctx.trace_instant(Layer::Rpc, "ack_tx", &[("seq", header.seq)]);
        self.machine
            .kernel_send(ctx, client_addr(self.machine.mac()), msg.src, ack);
    }

    /// Performs a remote procedure call: sends `request` to `port` and blocks
    /// until the reply arrives.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] when no reply arrives after all retransmissions.
    pub fn trans(&self, ctx: &Ctx, port: Port, request: Bytes) -> Result<Bytes, RpcError> {
        let cost = self.machine.cost().clone();
        let me = client_addr(self.machine.mac());
        let (seq, slot) = {
            let mut st = self.state.lock();
            let seq = st.next_seq;
            st.next_seq += 1;
            let slot = st.slot_pool.pop().unwrap_or_default();
            st.waiting.insert(seq, slot.clone());
            (seq, slot)
        };
        let wire = Header {
            kind: Kind::Request,
            seq,
            client: me,
            port,
        }
        .encode_with(&request);
        ctx.trace_emit(
            Layer::Rpc,
            Phase::Begin,
            "trans",
            &[("seq", seq), ("bytes", request.len() as u64)],
        );
        // Entering the kernel, protocol processing, copying the request,
        // per-packet processing.
        ctx.trace_cost(Layer::Rpc, "syscall", cost.syscall(cost.shallow_call_depth));
        ctx.trace_cost(Layer::Rpc, "protocol_layer", cost.protocol_layer);
        ctx.trace_cost(Layer::Rpc, "copy", cost.copy(request.len()));
        ctx.trace_cost(
            Layer::Rpc,
            "kernel_packet_send",
            cost.kernel_packet_send * fragments_of(wire.len()),
        );
        ctx.compute(
            cost.syscall(cost.shallow_call_depth)
                + cost.protocol_layer
                + cost.copy(request.len())
                + cost.kernel_packet_send * fragments_of(wire.len()),
        );
        let mut result = Err(RpcError::Timeout);
        let mut attempt = 0u32;
        let mut sent = false;
        while attempt <= self.config.retries {
            if !sent {
                if attempt > 0 {
                    // Kernel retransmission of the request.
                    ctx.trace_instant(
                        Layer::Rpc,
                        "retransmit",
                        &[("seq", seq), ("attempt", u64::from(attempt))],
                    );
                    ctx.trace_cost(
                        Layer::Rpc,
                        "kernel_packet_send",
                        cost.kernel_packet_send * fragments_of(wire.len()),
                    );
                    ctx.compute(cost.kernel_packet_send * fragments_of(wire.len()));
                }
                ctx.trace_instant(Layer::Rpc, "request_tx", &[("seq", seq)]);
                if let Some(local) =
                    self.machine
                        .iface()
                        .send(ctx, me, port_addr(port), wire.clone())
                {
                    self.machine.dispatch(ctx, local);
                }
                sent = true;
            }
            let backoff = self.config.timeout * (1u64 << attempt.min(4));
            match slot.recv_timeout(ctx, backoff) {
                // Events from a pooled slot's previous life carry a stale
                // sequence number; discard them and keep waiting.
                Ok(ClientEvent::Reply(s, _)) | Ok(ClientEvent::Working(s)) if s != seq => {
                    continue;
                }
                Ok(ClientEvent::Reply(_, reply)) => {
                    result = Ok(reply);
                    break;
                }
                Ok(ClientEvent::Working(_)) => {
                    // The server holds the request (a blocked guarded
                    // operation): keep waiting indefinitely while it
                    // confirms it is alive.
                    attempt = 0;
                    continue;
                }
                Err(RecvTimeoutError::Timeout) => {
                    attempt += 1;
                    sent = false;
                    continue;
                }
                Err(RecvTimeoutError::Closed) => break,
            }
        }
        {
            let mut st = self.state.lock();
            st.waiting.remove(&seq);
            if st.slot_pool.len() < SLOT_POOL_MAX {
                st.slot_pool.push(slot);
            }
        }
        if result.is_ok() {
            // Return from the blocking trans() syscall. The `Auto` charge
            // stays free when only interrupt work ran while we were blocked.
            ctx.trace_cost(
                Layer::Rpc,
                "window_trap",
                cost.window_trap * cost.shallow_call_depth,
            );
            ctx.compute_charged(
                cost.window_trap * cost.shallow_call_depth,
                SwitchCharge::Auto,
            );
        }
        ctx.trace_emit(
            Layer::Rpc,
            Phase::End,
            "trans",
            &[("seq", seq), ("ok", u64::from(result.is_ok()))],
        );
        result
    }

    /// The machine this client endpoint belongs to.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            kind: Kind::Request,
            seq: 42,
            client: FlipAddr(0x77),
            port: Port(9),
        };
        let wire = h.encode_with(b"body");
        assert_eq!(wire.len(), AMOEBA_RPC_HEADER_BYTES + 4);
        let (h2, body) = Header::decode(&wire).expect("decode");
        assert_eq!(h2.kind, Kind::Request);
        assert_eq!(h2.seq, 42);
        assert_eq!(h2.client, FlipAddr(0x77));
        assert_eq!(h2.port, Port(9));
        assert_eq!(&body[..], b"body");
    }

    #[test]
    fn bad_header_rejected() {
        assert!(Header::decode(&Bytes::from_static(&[0u8; 4])).is_none());
        let mut wire = Header {
            kind: Kind::Ack,
            seq: 0,
            client: FlipAddr(0),
            port: Port(0),
        }
        .encode_with(&[])
        .to_vec();
        wire[0] = 99;
        assert!(Header::decode(&Bytes::from(wire)).is_none());
    }
}
