//! Amoeba's kernel-space totally-ordered group communication (the protocol
//! of Kaashoek's thesis, as used by the paper).
//!
//! A sequencer machine orders all messages. For small messages the sender
//! forwards the message to the sequencer (point-to-point), which tags it with
//! the next sequence number and multicasts it (the *PB* method). For large
//! messages the sender multicasts the data itself and the sequencer
//! multicasts a small *accept* carrying the sequence number (the *BB*
//! method). Receivers deliver strictly in sequence-number order, detect gaps,
//! and recover by asking the sequencer to resend from its history buffer.
//!
//! Everything here runs **in the kernel**: handlers execute in interrupt
//! context on the network receive path, so ordering, history, and
//! retransmission consume interrupt-level CPU and never cost a thread
//! switch — the structural advantage the paper measures for the kernel-space
//! implementation (Section 4.3).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use desim::trace::{Layer, Phase};
use desim::{Ctx, RecvTimeoutError, SimChannel, SimDuration, SimTime, SwitchCharge};
use ethernet::McastAddr;
use flip::{FlipAddr, FlipMessage};
use parking_lot::Mutex;

use crate::cost::AMOEBA_GROUP_HEADER_BYTES;
use crate::machine::{fragments_of, Machine};

/// A message delivered by the group protocol, identical (payload and order)
/// at every member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMessage {
    /// Member that sent the message.
    pub sender: u32,
    /// Global sequence number (contiguous from 1).
    pub seq: u64,
    /// Message body.
    pub payload: Bytes,
}

/// Errors reported by [`GroupMember::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupError {
    /// The message was never sequenced (sequencer unreachable).
    Timeout,
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::Timeout => write!(f, "group send was never sequenced"),
        }
    }
}

impl std::error::Error for GroupError {}

/// Group protocol tuning.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// Messages larger than this use the BB method (sender broadcasts data,
    /// sequencer broadcasts a small accept).
    pub bb_threshold: usize,
    /// Maximum history entries the sequencer retains past the slowest
    /// member's acknowledged point.
    pub history_max: usize,
    /// Maximum history entries resent per retransmission request.
    pub retrans_chunk: u64,
    /// How long a sender waits for its own message before retransmitting.
    pub send_timeout: SimDuration,
    /// Poll interval used by blocked receivers while a gap is outstanding.
    pub gap_poll: SimDuration,
    /// A member reports its delivery progress to the sequencer after this
    /// many deliveries (history flow control).
    pub status_interval: u64,
    /// Number of transmissions a `grp_send` attempts before giving up.
    pub send_retries: u32,
    /// Sequencer-driven laggard resync: while any member is known to lag,
    /// the sequencer resends missing history every interval. `ZERO`
    /// disables it entirely (the historical behavior): no resync daemon
    /// activity, no prompt status reports, bit-identical fault-free traces.
    pub resync_interval: SimDuration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            bb_threshold: flip::FLIP_FRAGMENT_BYTES - AMOEBA_GROUP_HEADER_BYTES,
            history_max: 4096,
            retrans_chunk: 32,
            send_timeout: SimDuration::from_millis(400),
            gap_poll: SimDuration::from_millis(20),
            status_interval: 20,
            send_retries: 6,
            resync_interval: SimDuration::ZERO,
        }
    }
}

/// Static description of a group: FLIP group address, Ethernet multicast
/// address, per-member kernel endpoints, and which member sequences.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// FLIP group address all data/accept multicasts go to.
    pub group: FlipAddr,
    /// Backing Ethernet multicast group.
    pub eth: McastAddr,
    /// Kernel endpoint of each member, indexed by member id.
    pub member_addrs: Vec<FlipAddr>,
    /// Index of the sequencer member.
    pub sequencer: usize,
    /// Protocol tuning.
    pub config: GroupConfig,
}

impl GroupSpec {
    /// Builds a spec for group `group_id` with `n_members` members,
    /// sequenced by member `sequencer`.
    pub fn build(group_id: u64, n_members: usize, sequencer: usize) -> GroupSpec {
        assert!(sequencer < n_members, "sequencer must be a member");
        GroupSpec {
            group: FlipAddr(0x3000_0000_0000_0000 | group_id),
            eth: McastAddr(0x1000 + group_id as u32),
            member_addrs: (0..n_members)
                .map(|i| FlipAddr(0x6000_0000_0000_0000 | (group_id << 16) | i as u64))
                .collect(),
            sequencer,
            config: GroupConfig::default(),
        }
    }

    fn sequencer_addr(&self) -> FlipAddr {
        self.member_addrs[self.sequencer]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Small message to the sequencer (PB): body attached.
    Req,
    /// Large-message announcement to the sequencer (BB): data went by
    /// multicast separately.
    ReqBb,
    /// Sequenced message multicast by the sequencer: body attached.
    Seq,
    /// Large-message data multicast by the sender.
    BbData,
    /// Sequencer's ordering decision for a BB message.
    Accept,
    /// Receiver asks the sequencer to resend history from `seqno`.
    RetransReq,
    /// Periodic delivery-progress report for history trimming.
    Status,
}

impl Kind {
    fn to_byte(self) -> u8 {
        match self {
            Kind::Req => 0,
            Kind::ReqBb => 1,
            Kind::Seq => 2,
            Kind::BbData => 3,
            Kind::Accept => 4,
            Kind::RetransReq => 5,
            Kind::Status => 6,
        }
    }
    fn from_byte(b: u8) -> Option<Kind> {
        Some(match b {
            0 => Kind::Req,
            1 => Kind::ReqBb,
            2 => Kind::Seq,
            3 => Kind::BbData,
            4 => Kind::Accept,
            5 => Kind::RetransReq,
            6 => Kind::Status,
            _ => return None,
        })
    }
}

struct Header {
    kind: Kind,
    sender: u32,
    msg_id: u64,
    seqno: u64,
    piggyback: u64,
}

impl Header {
    fn encode_with(&self, body: &[u8]) -> Bytes {
        let mut buf = BytesMut::with_capacity(AMOEBA_GROUP_HEADER_BYTES + body.len());
        buf.put_u8(self.kind.to_byte());
        buf.put_u32(self.sender);
        buf.put_u64(self.msg_id);
        buf.put_u64(self.seqno);
        buf.put_u64(self.piggyback);
        buf.put_slice(&[0u8; AMOEBA_GROUP_HEADER_BYTES - 29]);
        debug_assert_eq!(buf.len(), AMOEBA_GROUP_HEADER_BYTES);
        buf.put_slice(body);
        buf.freeze()
    }

    fn decode(payload: &Bytes) -> Option<(Header, Bytes)> {
        if payload.len() < AMOEBA_GROUP_HEADER_BYTES {
            return None;
        }
        let b = &payload[..];
        let kind = Kind::from_byte(b[0])?;
        let rd64 = |o: usize| u64::from_be_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        Some((
            Header {
                kind,
                sender: u32::from_be_bytes(b[1..5].try_into().expect("4 bytes")),
                msg_id: rd64(5),
                seqno: rd64(13),
                piggyback: rd64(21),
            },
            payload.slice(AMOEBA_GROUP_HEADER_BYTES..),
        ))
    }
}

/// Per-member receiver state (every member, including the sequencer).
struct MemberState {
    next_deliver: u64,
    ooo: BTreeMap<u64, (u32, u64, Bytes)>,
    bb_store: HashMap<(u32, u64), Bytes>,
    accepts: BTreeMap<u64, (u32, u64)>,
    delivered_msg: HashMap<u32, u64>,
    send_waiters: HashMap<u64, SimChannel<u64>>,
    next_msg_id: u64,
    since_status: u64,
    last_status_at: SimTime,
    last_gap_request: u64,
}

/// Sequencer-only state.
struct SeqState {
    next_seq: u64,
    history: BTreeMap<u64, (u32, u64, Bytes)>,
    seen: HashMap<(u32, u64), u64>,
    delivered: Vec<u64>,
    pending_bb: HashMap<(u32, u64), u64>,
    history_overflow_drops: u64,
}

struct GroupState {
    member: MemberState,
    seq: Option<SeqState>,
}

/// Wire traffic produced by the (locked) protocol state machine, executed
/// after the lock is released because transmission sleeps in virtual time.
enum WireOut {
    Unicast(FlipAddr, Bytes),
    Multicast(Bytes),
}

/// One member's handle on an Amoeba kernel group.
#[derive(Clone)]
pub struct GroupMember {
    machine: Machine,
    spec: Arc<GroupSpec>,
    my_id: u32,
    state: Arc<Mutex<GroupState>>,
    inbox: SimChannel<GroupMessage>,
    resync_wake: SimChannel<()>,
}

impl fmt::Debug for GroupMember {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupMember")
            .field("member", &self.my_id)
            .field("machine", &self.machine.name())
            .field("sequencer", &(self.my_id as usize == self.spec.sequencer))
            .finish()
    }
}

impl GroupMember {
    /// Joins `machine` to the group as member `my_id`, installing the kernel
    /// handlers. The member with `spec.sequencer == my_id` also runs the
    /// sequencer, entirely inside its kernel.
    pub fn join(machine: &Machine, spec: GroupSpec, my_id: u32) -> GroupMember {
        let is_seq = my_id as usize == spec.sequencer;
        let n = spec.member_addrs.len();
        let state = Arc::new(Mutex::new(GroupState {
            member: MemberState {
                next_deliver: 1,
                ooo: BTreeMap::new(),
                bb_store: HashMap::new(),
                accepts: BTreeMap::new(),
                delivered_msg: HashMap::new(),
                send_waiters: HashMap::new(),
                next_msg_id: 1,
                since_status: 0,
                last_status_at: SimTime::ZERO,
                last_gap_request: 0,
            },
            seq: is_seq.then(|| SeqState {
                next_seq: 1,
                history: BTreeMap::new(),
                seen: HashMap::new(),
                delivered: vec![0; n],
                pending_bb: HashMap::new(),
                history_overflow_drops: 0,
            }),
        }));
        let member = GroupMember {
            machine: machine.clone(),
            spec: Arc::new(spec),
            my_id,
            state,
            inbox: SimChannel::new(),
            resync_wake: SimChannel::new(),
        };
        let h1 = member.clone();
        machine.register_kernel_handler(
            member.spec.member_addrs[my_id as usize],
            Arc::new(move |ctx, msg| h1.kernel_handle(ctx, msg)),
        );
        let h2 = member.clone();
        machine.join_kernel_group(
            member.spec.group,
            member.spec.eth,
            Arc::new(move |ctx, msg| h2.kernel_handle(ctx, msg)),
        );
        member
    }

    /// This member's id within the group.
    pub fn member_id(&self) -> u32 {
        self.my_id
    }

    /// `true` if this member hosts the sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.my_id as usize == self.spec.sequencer
    }

    /// The machine this member runs on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of sequenced-but-undeliverable messages currently buffered
    /// (diagnostics; non-zero implies a gap).
    pub fn backlog(&self) -> usize {
        let st = self.state.lock();
        st.member.ooo.len() + st.member.accepts.len()
    }

    /// History entries the sequencer had to drop because the buffer
    /// overflowed (only meaningful on the sequencer member).
    pub fn history_overflow_drops(&self) -> u64 {
        self.state
            .lock()
            .seq
            .as_ref()
            .map_or(0, |s| s.history_overflow_drops)
    }

    /// Broadcasts `payload` to the group with total ordering. Blocks until
    /// the message has been sequenced (Amoeba `grp_send` semantics); the
    /// message is also delivered through [`GroupMember::recv`] at every
    /// member including this one. Returns the assigned sequence number.
    ///
    /// # Errors
    ///
    /// [`GroupError::Timeout`] if the message is never sequenced.
    pub fn send(&self, ctx: &Ctx, payload: Bytes) -> Result<u64, GroupError> {
        let cost = self.machine.cost().clone();
        let cfg = &self.spec.config;
        let (msg_id, waiter) = {
            let mut st = self.state.lock();
            let id = st.member.next_msg_id;
            st.member.next_msg_id += 1;
            let w = SimChannel::new();
            st.member.send_waiters.insert(id, w.clone());
            (id, w)
        };
        let piggyback = self.state.lock().member.next_deliver - 1;
        let big = payload.len() > cfg.bb_threshold;
        let req_kind = if big { Kind::ReqBb } else { Kind::Req };
        let req_body = if big { Bytes::new() } else { payload.clone() };
        let req_wire = Header {
            kind: req_kind,
            sender: self.my_id,
            msg_id,
            seqno: 0,
            piggyback,
        }
        .encode_with(&req_body);
        let bb_wire = big.then(|| {
            Header {
                kind: Kind::BbData,
                sender: self.my_id,
                msg_id,
                seqno: 0,
                piggyback,
            }
            .encode_with(&payload)
        });
        ctx.trace_emit(
            Layer::Group,
            Phase::Begin,
            "grp_send",
            &[
                ("msg_id", msg_id),
                ("bytes", payload.len() as u64),
                ("bb", u64::from(big)),
            ],
        );
        // Enter the kernel: traps, copy, per-packet processing.
        let wire_frags =
            fragments_of(req_wire.len()) + bb_wire.as_ref().map_or(0, |w| fragments_of(w.len()));
        ctx.trace_cost(
            Layer::Group,
            "syscall",
            cost.syscall(cost.shallow_call_depth),
        );
        ctx.trace_cost(Layer::Group, "protocol_layer", cost.protocol_layer);
        ctx.trace_cost(Layer::Group, "copy", cost.copy(payload.len()));
        ctx.trace_cost(
            Layer::Group,
            "kernel_packet_send",
            cost.kernel_packet_send * wire_frags,
        );
        ctx.compute(
            cost.syscall(cost.shallow_call_depth)
                + cost.protocol_layer
                + cost.copy(payload.len())
                + cost.kernel_packet_send * wire_frags,
        );
        let mut result = Err(GroupError::Timeout);
        for attempt in 0..cfg.send_retries {
            if attempt > 0 {
                ctx.trace_instant(
                    Layer::Group,
                    "retransmit",
                    &[("msg_id", msg_id), ("attempt", u64::from(attempt))],
                );
                ctx.trace_cost(
                    Layer::Group,
                    "kernel_packet_send",
                    cost.kernel_packet_send * fragments_of(req_wire.len()),
                );
                ctx.compute(cost.kernel_packet_send * fragments_of(req_wire.len()));
            }
            if let Some(bb) = &bb_wire {
                if attempt == 0 {
                    self.send_group_raw(ctx, bb.clone());
                }
            }
            self.send_unicast_raw(ctx, self.spec.sequencer_addr(), req_wire.clone());
            let backoff = cfg.send_timeout * (1u64 << attempt.min(3));
            match waiter.recv_timeout(ctx, backoff) {
                Ok(seq) => {
                    result = Ok(seq);
                    break;
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Closed) => break,
            }
        }
        self.state.lock().member.send_waiters.remove(&msg_id);
        if result.is_ok() {
            // Return from the blocking grp_send: the kernel woke us directly
            // from the interrupt handler, so `Auto` charges no switch.
            ctx.trace_cost(
                Layer::Group,
                "window_trap",
                cost.window_trap * cost.shallow_call_depth,
            );
            ctx.compute_charged(
                cost.window_trap * cost.shallow_call_depth,
                SwitchCharge::Auto,
            );
        }
        ctx.trace_emit(
            Layer::Group,
            Phase::End,
            "grp_send",
            &[("msg_id", msg_id), ("seq", *result.as_ref().unwrap_or(&0))],
        );
        result
    }

    /// Receives the next message in total order (every member sees the same
    /// sequence). Blocks until one is available.
    pub fn recv(&self, ctx: &Ctx) -> GroupMessage {
        let cost = self.machine.cost().clone();
        ctx.trace_cost(Layer::Group, "syscall", cost.syscall_enter);
        ctx.compute(cost.syscall_enter);
        let msg = loop {
            let gap = {
                let st = self.state.lock();
                !st.member.ooo.is_empty() || !st.member.accepts.is_empty()
            };
            if gap {
                match self.inbox.recv_timeout(ctx, self.spec.config.gap_poll) {
                    Ok(m) => break m,
                    Err(RecvTimeoutError::Timeout) => {
                        let next = self.state.lock().member.next_deliver;
                        let req = Header {
                            kind: Kind::RetransReq,
                            sender: self.my_id,
                            msg_id: 0,
                            seqno: next,
                            piggyback: next - 1,
                        }
                        .encode_with(&[]);
                        ctx.trace_instant(Layer::Group, "retrans_req_tx", &[("from_seq", next)]);
                        ctx.trace_cost(Layer::Group, "kernel_packet_send", cost.kernel_packet_send);
                        ctx.compute(cost.kernel_packet_send);
                        self.send_unicast_raw(ctx, self.spec.sequencer_addr(), req);
                    }
                    Err(RecvTimeoutError::Closed) => unreachable!("inbox never closes"),
                }
            } else {
                break self.inbox.recv(ctx).expect("inbox never closes");
            }
        };
        ctx.trace_cost(
            Layer::Group,
            "window_trap",
            cost.window_trap * cost.shallow_call_depth,
        );
        ctx.compute(cost.window_trap * cost.shallow_call_depth);
        msg
    }

    /// Raw kernel transmit helpers (no syscall charge; callers charge).
    fn send_unicast_raw(&self, ctx: &Ctx, dst: FlipAddr, wire: Bytes) {
        let src = self.spec.member_addrs[self.my_id as usize];
        if let Some(local) = self.machine.iface().send(ctx, src, dst, wire) {
            self.machine.dispatch(ctx, local);
        }
    }

    fn send_group_raw(&self, ctx: &Ctx, wire: Bytes) {
        let src = self.spec.member_addrs[self.my_id as usize];
        if let Some(local) = self
            .machine
            .iface()
            .send_group(ctx, src, self.spec.group, wire)
        {
            self.machine.dispatch(ctx, local);
        }
    }

    /// The kernel protocol handler (interrupt context or local dispatch).
    fn kernel_handle(&self, ctx: &Ctx, msg: FlipMessage) {
        let Some((header, body)) = Header::decode(&msg.payload) else {
            return;
        };
        // Run the state machine under the lock; collect wire traffic and CPU
        // charges to execute afterwards (transmission sleeps).
        let (outs, icost) = {
            let mut st = self.state.lock();
            let mut outs = Vec::new();
            let mut deliveries = 0usize;
            let mut delivered_bytes = 0usize;
            self.state_machine(
                ctx,
                &mut st,
                header,
                body,
                &mut outs,
                &mut deliveries,
                &mut delivered_bytes,
            );
            let cost = self.machine.cost();
            ctx.trace_cost(Layer::Group, "protocol_layer", cost.protocol_layer);
            ctx.trace_cost(
                Layer::Group,
                "user_deliver",
                cost.user_deliver * deliveries as u64,
            );
            ctx.trace_cost(Layer::Group, "copy", cost.copy(delivered_bytes));
            let icost = cost.protocol_layer
                + cost.user_deliver * deliveries as u64
                + cost.copy(delivered_bytes);
            (outs, icost)
        };
        ctx.interrupt_compute(icost);
        for out in outs {
            match out {
                WireOut::Unicast(dst, wire) => {
                    let c = self.machine.cost().kernel_packet_send * fragments_of(wire.len());
                    ctx.trace_cost(Layer::Group, "kernel_packet_send", c);
                    ctx.interrupt_compute(c);
                    self.send_unicast_raw(ctx, dst, wire);
                }
                WireOut::Multicast(wire) => {
                    let c = self.machine.cost().kernel_packet_send * fragments_of(wire.len());
                    ctx.trace_cost(Layer::Group, "kernel_packet_send", c);
                    ctx.interrupt_compute(c);
                    self.send_group_raw(ctx, wire);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn state_machine(
        &self,
        ctx: &Ctx,
        st: &mut GroupState,
        header: Header,
        body: Bytes,
        outs: &mut Vec<WireOut>,
        deliveries: &mut usize,
        delivered_bytes: &mut usize,
    ) {
        match header.kind {
            Kind::Req | Kind::ReqBb => {
                let key = (header.sender, header.msg_id);
                let bb_data = st.member.bb_store.get(&key).cloned();
                let Some(seq) = st.seq.as_mut() else { return };
                if (header.sender as usize) < seq.delivered.len() {
                    let d = &mut seq.delivered[header.sender as usize];
                    *d = (*d).max(header.piggyback);
                }
                if let Some(&assigned) = seq.seen.get(&key) {
                    ctx.trace_instant(
                        Layer::Group,
                        "dup_suppressed",
                        &[("sender", u64::from(header.sender)), ("seq", assigned)],
                    );
                    // Duplicate REQ: the sender missed its own message. For
                    // BB-sized entries the sender still holds the data, so a
                    // small accept suffices and avoids re-flooding the wire.
                    if let Some((s, m, payload)) = seq.history.get(&assigned) {
                        let wire = if payload.len() > self.spec.config.bb_threshold {
                            Header {
                                kind: Kind::Accept,
                                sender: *s,
                                msg_id: *m,
                                seqno: assigned,
                                piggyback: 0,
                            }
                            .encode_with(&[])
                        } else {
                            Header {
                                kind: Kind::Seq,
                                sender: *s,
                                msg_id: *m,
                                seqno: assigned,
                                piggyback: 0,
                            }
                            .encode_with(payload)
                        };
                        outs.push(WireOut::Unicast(
                            self.spec.member_addrs[header.sender as usize],
                            wire,
                        ));
                    }
                    return;
                }
                let payload = match header.kind {
                    Kind::Req => body,
                    _ => match bb_data {
                        Some(data) => data,
                        None => {
                            // BB data not here yet; hold the request.
                            seq.pending_bb.insert(key, header.piggyback);
                            return;
                        }
                    },
                };
                self.assign_seq(ctx, st, header.sender, header.msg_id, payload, outs);
                self.try_deliver(ctx, st, deliveries, delivered_bytes, outs);
            }
            Kind::BbData => {
                let key = (header.sender, header.msg_id);
                let already = st
                    .member
                    .delivered_msg
                    .get(&header.sender)
                    .is_some_and(|&m| m >= header.msg_id);
                if !already {
                    st.member.bb_store.insert(key, body.clone());
                }
                // If an accept already arrived, the message can now be placed.
                let slot = st
                    .member
                    .accepts
                    .iter()
                    .find(|(_, k)| **k == key)
                    .map(|(s, _)| *s);
                if let Some(s) = slot {
                    st.member.accepts.remove(&s);
                    st.member
                        .ooo
                        .insert(s, (header.sender, header.msg_id, body.clone()));
                }
                // The sequencer may have been waiting for this data.
                if st.seq.is_some() {
                    let pending = st
                        .seq
                        .as_mut()
                        .and_then(|sq| sq.pending_bb.remove(&key))
                        .is_some();
                    if pending {
                        self.assign_seq(ctx, st, header.sender, header.msg_id, body, outs);
                    }
                }
                self.try_deliver(ctx, st, deliveries, delivered_bytes, outs);
            }
            Kind::Seq => {
                if header.seqno >= st.member.next_deliver {
                    st.member
                        .ooo
                        .insert(header.seqno, (header.sender, header.msg_id, body));
                    st.member.accepts.remove(&header.seqno);
                } else {
                    self.stale_seq_status(ctx, st, outs);
                }
                self.try_deliver(ctx, st, deliveries, delivered_bytes, outs);
                self.request_gap_fill(st, outs);
            }
            Kind::Accept => {
                if header.seqno >= st.member.next_deliver {
                    let key = (header.sender, header.msg_id);
                    if let Some(data) = st.member.bb_store.get(&key).cloned() {
                        st.member.ooo.insert(header.seqno, (key.0, key.1, data));
                    } else {
                        st.member.accepts.insert(header.seqno, key);
                    }
                } else {
                    self.stale_seq_status(ctx, st, outs);
                }
                self.try_deliver(ctx, st, deliveries, delivered_bytes, outs);
                self.request_gap_fill(st, outs);
            }
            Kind::RetransReq => {
                ctx.trace_instant(
                    Layer::Group,
                    "retrans_req_rx",
                    &[
                        ("sender", u64::from(header.sender)),
                        ("from_seq", header.seqno),
                    ],
                );
                let Some(seq) = st.seq.as_mut() else { return };
                if (header.sender as usize) < seq.delivered.len() {
                    let d = &mut seq.delivered[header.sender as usize];
                    *d = (*d).max(header.piggyback);
                }
                let from = header.seqno;
                let to = (from + self.spec.config.retrans_chunk).min(seq.next_seq);
                for s in from..to {
                    if let Some((sender, msg_id, payload)) = seq.history.get(&s) {
                        let wire = Header {
                            kind: Kind::Seq,
                            sender: *sender,
                            msg_id: *msg_id,
                            seqno: s,
                            piggyback: 0,
                        }
                        .encode_with(payload);
                        outs.push(WireOut::Unicast(
                            self.spec.member_addrs[header.sender as usize],
                            wire,
                        ));
                    }
                }
            }
            Kind::Status => {
                let Some(seq) = st.seq.as_mut() else { return };
                if (header.sender as usize) < seq.delivered.len() {
                    let d = &mut seq.delivered[header.sender as usize];
                    *d = (*d).max(header.piggyback);
                }
                Self::trim_history(seq, self.spec.config.history_max);
            } // Handled above; a member never receives raw user traffic here.
        }
    }

    /// Sequencer: assign the next sequence number and emit the ordering
    /// multicast (data for PB, accept for BB).
    fn assign_seq(
        &self,
        ctx: &Ctx,
        st: &mut GroupState,
        sender: u32,
        msg_id: u64,
        payload: Bytes,
        outs: &mut Vec<WireOut>,
    ) {
        let cfg = &self.spec.config;
        let big = payload.len() > cfg.bb_threshold;
        let seq = st.seq.as_mut().expect("assign_seq runs on the sequencer");
        let s = seq.next_seq;
        seq.next_seq += 1;
        ctx.trace_instant(
            Layer::Group,
            "seq_assign",
            &[
                ("seq", s),
                ("sender", u64::from(sender)),
                ("msg_id", msg_id),
            ],
        );
        seq.seen.insert((sender, msg_id), s);
        seq.history.insert(s, (sender, msg_id, payload.clone()));
        Self::trim_history(seq, cfg.history_max);
        let wire = if big {
            Header {
                kind: Kind::Accept,
                sender,
                msg_id,
                seqno: s,
                piggyback: 0,
            }
            .encode_with(&[])
        } else {
            Header {
                kind: Kind::Seq,
                sender,
                msg_id,
                seqno: s,
                piggyback: 0,
            }
            .encode_with(&payload)
        };
        outs.push(WireOut::Multicast(wire));
        // The sequencer places its own copy directly (its member handler will
        // also see the multicast loopback, which dedups harmlessly).
        if s >= st.member.next_deliver {
            st.member.ooo.insert(s, (sender, msg_id, payload));
            st.member.accepts.remove(&s);
        }
        if !cfg.resync_interval.is_zero() {
            let _ = self.resync_wake.send(ctx, ());
        }
    }

    /// A stale (already-delivered) Seq/Accept means the sequencer resent
    /// history we did not need: report our true progress so its resync
    /// stops targeting us. Throttled; only active when resync is enabled.
    fn stale_seq_status(&self, ctx: &Ctx, st: &mut GroupState, outs: &mut Vec<WireOut>) {
        if self.spec.config.resync_interval.is_zero() || self.is_sequencer() {
            return;
        }
        let now = ctx.now();
        if now.saturating_duration_since(st.member.last_status_at) < SimDuration::from_millis(1) {
            return;
        }
        st.member.since_status = 0;
        st.member.last_status_at = now;
        let wire = Header {
            kind: Kind::Status,
            sender: self.my_id,
            msg_id: 0,
            seqno: 0,
            piggyback: st.member.next_deliver - 1,
        }
        .encode_with(&[]);
        outs.push(WireOut::Unicast(self.spec.sequencer_addr(), wire));
    }

    /// The sequencer's laggard-resync daemon body (kernel thread). Spawn on
    /// the sequencer machine when `config.resync_interval` is non-zero:
    /// while any member is known to lag behind the history tip, missing
    /// entries are resent every interval; when nobody lags the daemon
    /// blocks until the next sequence number is assigned, so a quiesced
    /// group generates no traffic and no timer events.
    pub fn run_resync_daemon(&self, ctx: &Ctx) {
        let interval = self.spec.config.resync_interval;
        if interval.is_zero() || !self.is_sequencer() {
            return;
        }
        loop {
            let lagging = {
                let st = self.state.lock();
                let seq = st.seq.as_ref().expect("sequencer state");
                seq.delivered.iter().copied().min().unwrap_or(0) + 1 < seq.next_seq
            };
            if lagging {
                match self.resync_wake.recv_timeout(ctx, interval) {
                    Ok(()) => continue,
                    Err(RecvTimeoutError::Timeout) => self.resync_laggards(ctx),
                    Err(RecvTimeoutError::Closed) => return,
                }
            } else {
                match self.resync_wake.recv(ctx) {
                    Some(()) => continue,
                    None => return,
                }
            }
        }
    }

    /// One resync round: resend missing history to each laggard, bounded by
    /// `retrans_chunk` and a per-member byte budget per round so the
    /// backstop can never flood the wire. The duplicates a wrong guess
    /// causes prompt the member to report its true progress, which stops
    /// the resync.
    fn resync_laggards(&self, ctx: &Ctx) {
        let cost = self.machine.cost().clone();
        let mut outs: Vec<WireOut> = Vec::new();
        {
            let st = self.state.lock();
            let seq = st.seq.as_ref().expect("sequencer state");
            let top = seq.next_seq;
            for (m, &d) in seq.delivered.iter().enumerate() {
                if d + 1 >= top || m == self.spec.sequencer {
                    continue;
                }
                ctx.trace_instant(
                    Layer::Group,
                    "resync",
                    &[("member", m as u64), ("from_seq", d + 1)],
                );
                let to = (d + 1 + self.spec.config.retrans_chunk).min(top);
                let mut budget: usize = 8192;
                let mut sent_any = false;
                for s in (d + 1)..to {
                    let Some((snd, mid, data)) = seq.history.get(&s) else {
                        continue;
                    };
                    let big = data.len() > self.spec.config.bb_threshold;
                    // The member still holds data it sent itself: a small
                    // accept suffices instead of re-flooding the payload.
                    let wire = if big && *snd == m as u32 {
                        Header {
                            kind: Kind::Accept,
                            sender: *snd,
                            msg_id: *mid,
                            seqno: s,
                            piggyback: 0,
                        }
                        .encode_with(&[])
                    } else {
                        // The first resend is exempt from the byte budget:
                        // it is what repairs a genuinely lost message.
                        if sent_any && data.len() > budget {
                            break;
                        }
                        budget = budget.saturating_sub(data.len());
                        Header {
                            kind: Kind::Seq,
                            sender: *snd,
                            msg_id: *mid,
                            seqno: s,
                            piggyback: 0,
                        }
                        .encode_with(data)
                    };
                    sent_any = true;
                    outs.push(WireOut::Unicast(self.spec.member_addrs[m], wire));
                }
            }
        }
        for out in outs {
            let WireOut::Unicast(dst, wire) = out else {
                unreachable!("resync only unicasts")
            };
            let c = cost.kernel_packet_send * fragments_of(wire.len());
            ctx.trace_cost(Layer::Group, "kernel_packet_send", c);
            ctx.compute(c);
            self.send_unicast_raw(ctx, dst, wire);
        }
    }

    fn trim_history(seq: &mut SeqState, max: usize) {
        let min_delivered = seq.delivered.iter().copied().min().unwrap_or(0);
        let keys: Vec<u64> = seq
            .history
            .range(..=min_delivered)
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            let e = seq.history.remove(&k).expect("key from range");
            seq.seen.remove(&(e.0, e.1));
        }
        while seq.history.len() > max {
            let (&k, _) = seq.history.iter().next().expect("non-empty");
            let e = seq.history.remove(&k).expect("key exists");
            seq.seen.remove(&(e.0, e.1));
            seq.history_overflow_drops += 1;
        }
    }

    /// Deliver everything contiguous; wake local senders; emit status.
    fn try_deliver(
        &self,
        ctx: &Ctx,
        st: &mut GroupState,
        deliveries: &mut usize,
        delivered_bytes: &mut usize,
        outs: &mut Vec<WireOut>,
    ) {
        loop {
            let next = st.member.next_deliver;
            let Some((sender, msg_id, payload)) = st.member.ooo.remove(&next) else {
                break;
            };
            st.member.accepts.remove(&next);
            st.member.bb_store.remove(&(sender, msg_id));
            let dm = st.member.delivered_msg.entry(sender).or_insert(0);
            *dm = (*dm).max(msg_id);
            *deliveries += 1;
            *delivered_bytes += payload.len();
            ctx.trace_instant(
                Layer::Group,
                "deliver",
                &[
                    ("seq", next),
                    ("sender", u64::from(sender)),
                    ("bytes", payload.len() as u64),
                ],
            );
            let _ = self.inbox.send(
                ctx,
                GroupMessage {
                    sender,
                    seq: next,
                    payload,
                },
            );
            if sender == self.my_id {
                if let Some(w) = st.member.send_waiters.remove(&msg_id) {
                    let _ = w.send(ctx, next);
                }
            }
            st.member.next_deliver += 1;
            st.member.since_status += 1;
        }
        // Report progress when the interval passes or, with resync enabled,
        // promptly (throttled) once the member is fully caught up — without
        // the prompt report an idle stretch makes the sequencer believe
        // members lag and its resync resends history nobody needs.
        let caught_up = st.member.ooo.is_empty() && st.member.accepts.is_empty();
        let prompt_due = !self.spec.config.resync_interval.is_zero()
            && caught_up
            && st.member.since_status > 0
            && ctx
                .now()
                .saturating_duration_since(st.member.last_status_at)
                >= SimDuration::from_millis(10);
        let due = st.member.since_status >= self.spec.config.status_interval || prompt_due;
        if due && !self.is_sequencer() {
            st.member.since_status = 0;
            st.member.last_status_at = ctx.now();
            let wire = Header {
                kind: Kind::Status,
                sender: self.my_id,
                msg_id: 0,
                seqno: 0,
                piggyback: st.member.next_deliver - 1,
            }
            .encode_with(&[]);
            outs.push(WireOut::Unicast(self.spec.sequencer_addr(), wire));
        } else if self.is_sequencer() {
            let next = st.member.next_deliver;
            let seq = st.seq.as_mut().expect("sequencer state");
            seq.delivered[self.spec.sequencer] = seq.delivered[self.spec.sequencer].max(next - 1);
        }
    }

    /// If a gap is visible (buffered messages ahead of `next_deliver`), ask
    /// the sequencer once per gap position to fill it.
    fn request_gap_fill(&self, st: &mut GroupState, outs: &mut Vec<WireOut>) {
        let next = st.member.next_deliver;
        let has_ahead = st.member.ooo.keys().next().is_some_and(|&k| k > next)
            || st.member.accepts.keys().next().is_some_and(|&k| k > next);
        if has_ahead && st.member.last_gap_request < next && !self.is_sequencer() {
            st.member.last_gap_request = next;
            let wire = Header {
                kind: Kind::RetransReq,
                sender: self.my_id,
                msg_id: 0,
                seqno: next,
                piggyback: next - 1,
            }
            .encode_with(&[]);
            outs.push(WireOut::Unicast(self.spec.sequencer_addr(), wire));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            kind: Kind::Accept,
            sender: 3,
            msg_id: 9,
            seqno: 1234,
            piggyback: 1200,
        };
        let wire = h.encode_with(b"xyz");
        assert_eq!(wire.len(), AMOEBA_GROUP_HEADER_BYTES + 3);
        let (h2, body) = Header::decode(&wire).expect("decode");
        assert_eq!(h2.kind, Kind::Accept);
        assert_eq!(h2.sender, 3);
        assert_eq!(h2.msg_id, 9);
        assert_eq!(h2.seqno, 1234);
        assert_eq!(h2.piggyback, 1200);
        assert_eq!(&body[..], b"xyz");
    }

    #[test]
    fn spec_builder_validates() {
        let spec = GroupSpec::build(1, 4, 0);
        assert_eq!(spec.member_addrs.len(), 4);
        assert_eq!(spec.sequencer_addr(), spec.member_addrs[0]);
    }

    #[test]
    #[should_panic(expected = "sequencer must be a member")]
    fn bad_sequencer_rejected() {
        let _ = GroupSpec::build(1, 2, 5);
    }
}
