//! Integration tests for the desim scheduler, CPU model, and determinism.

use desim::{
    ms, secs, us, Backend, SimChannel, SimCondvar, SimDuration, SimError, SimMutex, SimTime,
    Simulation, SwitchCharge,
};

#[test]
fn empty_simulation_runs() {
    let mut sim = Simulation::new(0);
    let report = sim.run().expect("empty run");
    assert_eq!(report.final_time, SimTime::ZERO);
    assert_eq!(report.events, 0);
}

#[test]
fn sleep_advances_virtual_time_only() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    let h = sim.spawn(cpu, "sleeper", |ctx| {
        ctx.sleep(desim::secs(3600)); // an hour of virtual time is instant
        assert_eq!(ctx.now(), SimTime::ZERO + desim::secs(3600));
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn compute_serializes_on_one_cpu() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    let done = SimMutex::new(Vec::<(u32, u64)>::new());
    for i in 0..3u32 {
        let done = done.clone();
        sim.spawn(cpu, &format!("w{i}"), move |ctx| {
            ctx.compute(us(100));
            done.lock(ctx).push((i, ctx.now().as_nanos()));
        });
    }
    let done2 = done.clone();
    let checker = sim.spawn(cpu, "checker", move |ctx| {
        ctx.sleep(ms(1));
        let g = done2.lock(ctx);
        assert_eq!(
            *g,
            vec![(0, 100_000), (1, 200_000), (2, 300_000)],
            "three 100us jobs on one CPU must finish back-to-back in FIFO order"
        );
    });
    sim.run_until_finished(&checker).expect("run");
}

#[test]
fn compute_parallel_on_two_cpus() {
    let mut sim = Simulation::new(0);
    let a = sim.add_processor("a");
    let b = sim.add_processor("b");
    let ha = sim.spawn(a, "wa", |ctx| {
        ctx.compute(us(100));
        assert_eq!(ctx.now().as_micros_f64(), 100.0);
    });
    let hb = sim.spawn(b, "wb", |ctx| {
        ctx.compute(us(100));
        assert_eq!(ctx.now().as_micros_f64(), 100.0);
    });
    sim.run_until_finished(&ha).expect("a");
    sim.run_until_finished(&hb).expect("b");
}

#[test]
fn context_switch_charged_between_threads_not_within() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor_with_switch_cost("m0", us(70));
    // Thread A computes twice in a row: second compute pays no switch.
    let ha = sim.spawn(cpu, "a", |ctx| {
        ctx.compute(us(10));
        ctx.compute(us(10));
        assert_eq!(ctx.now().as_micros_f64(), 20.0, "no self-switch charge");
    });
    sim.run_until_finished(&ha).expect("a");
    let report = sim.report();
    assert_eq!(report.procs[0].switches, 0);

    // A fresh thread B on the same CPU now pays one switch.
    let hb = sim.spawn(cpu, "b", |ctx| {
        let t0 = ctx.now();
        ctx.compute(us(10));
        assert_eq!(
            (ctx.now() - t0).as_micros_f64(),
            80.0,
            "70us switch + 10us work"
        );
    });
    sim.run_until_finished(&hb).expect("b");
    assert_eq!(sim.report().procs[0].switches, 1);
}

#[test]
fn switch_charge_policies() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor_with_switch_cost("m0", us(70));
    let h = sim.spawn(cpu, "a", |ctx| {
        ctx.compute_charged(us(10), SwitchCharge::Free);
        ctx.compute_charged(us(10), SwitchCharge::Fixed(us(110)));
        assert_eq!(ctx.now().as_micros_f64(), 130.0);
    });
    sim.run_until_finished(&h).expect("run");
    assert_eq!(
        sim.report().procs[0].switches,
        1,
        "only the Fixed charge counts"
    );
}

#[test]
fn interrupt_compute_extends_thread_compute() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    // Interrupt work lands in the middle of a 100us thread compute; the
    // thread compute must stretch by the stolen 30us.
    sim.spawn(cpu, "irq", |ctx| {
        ctx.sleep(us(20));
        ctx.interrupt_compute(us(30)); // finishes (and is charged) at t=50
    });
    let h = sim.spawn(cpu, "worker", |ctx| {
        ctx.compute(us(100));
        assert_eq!(ctx.now().as_micros_f64(), 130.0, "100us work + 30us stolen");
    });
    sim.run_until_finished(&h).expect("run");
    let report = sim.report();
    assert_eq!(report.procs[0].interrupt_time, us(30));
}

#[test]
fn interrupt_does_not_update_last_thread_holder() {
    // The kernel-space fast path: after interrupt-level work, the previous
    // thread resumes with no context-switch charge.
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor_with_switch_cost("m0", us(70));
    let h = sim.spawn(cpu, "client", |ctx| {
        ctx.compute(us(10)); // t=10
        ctx.sleep(us(100)); // blocked, e.g. awaiting a reply
        ctx.compute(us(10)); // no switch: only interrupts ran meanwhile
        assert_eq!(ctx.now().as_micros_f64(), 120.0);
    });
    sim.spawn(cpu, "irq", |ctx| {
        ctx.sleep(us(50));
        ctx.interrupt_compute(us(20));
    });
    sim.run_until_finished(&h).expect("run");
    assert_eq!(sim.report().procs[0].switches, 0);
}

#[test]
fn deadlock_detected_for_stuck_nondaemon() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    let ch: SimChannel<u8> = SimChannel::new();
    sim.spawn(cpu, "stuck", move |ctx| {
        let _ = ch.recv(ctx); // nobody ever sends
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked }) => {
            assert_eq!(blocked.len(), 1);
            assert_eq!(blocked[0].0, "stuck");
            assert_eq!(blocked[0].1, "chan.recv");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn daemons_may_block_forever() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    let ch: SimChannel<u8> = SimChannel::new();
    let rx = ch.clone();
    sim.spawn_daemon(cpu, "daemon", move |ctx| while rx.recv(ctx).is_some() {});
    sim.spawn(cpu, "main", move |ctx| {
        ch.send(ctx, 1).expect("open");
        ctx.sleep(us(10));
    });
    sim.run().expect("daemon blocked at exit is fine");
}

#[test]
fn event_limit_enforced() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    sim.set_max_events(100);
    sim.spawn(cpu, "spinner", |ctx| loop {
        ctx.sleep(us(1));
    });
    match sim.run() {
        Err(SimError::EventLimitExceeded { limit }) => assert_eq!(limit, 100),
        other => panic!("expected event limit, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "simulated thread 'boom' panicked")]
fn thread_panic_propagates() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    sim.spawn(cpu, "boom", |_ctx| panic!("kaboom"));
    let _ = sim.run();
}

#[test]
fn join_waits_for_completion() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    let child = sim.spawn(cpu, "child", |ctx| ctx.sleep(us(500)));
    let child2 = child.clone();
    let parent = sim.spawn(cpu, "parent", move |ctx| {
        child2.join(ctx);
        assert_eq!(ctx.now().as_micros_f64(), 500.0);
        child2.join(ctx); // second join returns immediately
    });
    sim.run_until_finished(&parent).expect("run");
    assert!(child.is_finished());
}

#[test]
fn spawn_from_within_thread() {
    let mut sim = Simulation::new(0);
    let a = sim.add_processor("a");
    let b = sim.add_processor("b");
    let h = sim.spawn(a, "parent", move |ctx| {
        let c1 = ctx.spawn("kid-same-cpu", |ctx| ctx.compute(us(10)));
        let c2 = ctx.spawn_on(b, "kid-other-cpu", |ctx| ctx.compute(us(10)));
        c1.join(ctx);
        c2.join(ctx);
        // Both kids computed in parallel on distinct CPUs.
        assert_eq!(ctx.now().as_micros_f64(), 10.0);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn determinism_same_seed_same_schedule() {
    // Results escape the simulation through a plain Arc<Mutex>; that is fine
    // as long as the lock is never held across a simulated block.
    fn run_once(seed: u64) -> Vec<u64> {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut sim = Simulation::new(seed);
        let cpu = sim.add_processor("m0");
        let mut handles = Vec::new();
        for i in 0..5u32 {
            let log = std::sync::Arc::clone(&log);
            handles.push(sim.spawn(cpu, &format!("w{i}"), move |ctx| {
                let jitter = ctx.rand_range(50);
                ctx.sleep(SimDuration::from_micros(jitter));
                ctx.compute(us(10 + u64::from(i)));
                log.lock().expect("log").push(ctx.now().as_nanos());
            }));
        }
        sim.run().expect("run");
        let out = log.lock().expect("log").clone();
        assert_eq!(out.len(), 5);
        out
    }
    assert_eq!(run_once(1234), run_once(1234));
    assert_ne!(
        run_once(1234),
        run_once(9999),
        "different seeds should differ"
    );
}

#[test]
fn trace_collects_messages() {
    let mut sim = Simulation::new(0);
    sim.enable_trace();
    let cpu = sim.add_processor("m0");
    let h = sim.spawn(cpu, "t", |ctx| {
        ctx.trace("hello");
        ctx.sleep(us(3));
        ctx.trace("world");
    });
    sim.run_until_finished(&h).expect("run");
    let trace = sim.take_trace();
    assert_eq!(trace.len(), 2);
    assert!(trace[0].contains("hello"));
    assert!(trace[1].contains("world") && trace[1].contains("3.000us"));
}

#[test]
fn compute_sliced_lets_other_threads_interleave() {
    // One long sliced computation plus a short compute from another thread:
    // the short one runs within a quantum, not after the whole slab.
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    sim.spawn(cpu, "big", |ctx| {
        ctx.compute_sliced(ms(100), ms(5));
    });
    let h = sim.spawn(cpu, "small", |ctx| {
        ctx.compute(us(100));
        assert!(
            ctx.now().as_millis_f64() < 15.0,
            "short work interleaves at quantum granularity, finished at {}",
            ctx.now()
        );
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn compute_sliced_total_time_is_preserved() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    let h = sim.spawn(cpu, "only", |ctx| {
        ctx.compute_sliced(ms(37), ms(5));
        assert_eq!(
            ctx.now().as_millis_f64(),
            37.0,
            "alone on the CPU: exact total"
        );
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
#[should_panic(expected = "quantum must be positive")]
fn compute_sliced_rejects_zero_quantum() {
    let mut sim = Simulation::new(0);
    let cpu = sim.add_processor("m0");
    sim.spawn(cpu, "bad", |ctx| {
        ctx.compute_sliced(ms(1), SimDuration::ZERO);
    });
    let _ = sim.run();
}

fn shutdown_under_load_on(backend: Backend) {
    // Drop the simulation while threads are parked in every blocking
    // primitive; shutdown must unpark and unwind all of them (the test
    // passing IS the assertion — a lost wakeup would hang here forever).
    use std::sync::Arc;

    let mut sim = Simulation::builder().seed(321).backend(backend).build();
    let m0 = sim.add_processor("m0");
    let m1 = sim.add_processor("m1");
    let mutex = Arc::new(SimMutex::new(0u32));
    let cv = Arc::new(SimCondvar::new());
    let cv_mutex = Arc::new(SimMutex::new(false));
    let never: SimChannel<u8> = SimChannel::new();

    // Holds the mutex forever (blocked in chan.recv with the guard live).
    let holder_mutex = Arc::clone(&mutex);
    let holder_ch = never.clone();
    let holder = sim.spawn(m0, "holder", move |ctx| {
        let _guard = holder_mutex.lock(ctx);
        let _ = holder_ch.recv(ctx);
    });
    // Blocked in mutex.lock.
    let waiter_mutex = Arc::clone(&mutex);
    sim.spawn(m0, "mutex-waiter", move |ctx| {
        ctx.sleep(us(1)); // let the holder take it first
        let _guard = waiter_mutex.lock(ctx);
    });
    // Blocked in condvar.wait.
    let w_cv = Arc::clone(&cv);
    let w_cv_mutex = Arc::clone(&cv_mutex);
    sim.spawn(m0, "cv-waiter", move |ctx| {
        let guard = w_cv_mutex.lock(ctx);
        let _guard = w_cv.wait(ctx, guard);
    });
    // Blocked in chan.recv.
    let rx = never.clone();
    sim.spawn(m0, "recv-waiter", move |ctx| {
        let _ = rx.recv(ctx);
    });
    // Blocked in the timer wheel.
    sim.spawn(m0, "sleeper", move |ctx| {
        ctx.sleep(secs(1000));
    });
    // Blocked in join (the holder never finishes).
    let join_target = holder.clone();
    sim.spawn(m0, "joiner", move |ctx| {
        join_target.join(ctx);
    });
    // Blocked waiting for a CPU another thread occupies.
    sim.spawn(m1, "hog", move |ctx| {
        ctx.compute(secs(1000));
    });
    sim.spawn(m1, "cpu-waiter", move |ctx| {
        ctx.sleep(us(1));
        ctx.compute(us(1));
    });

    let controller = sim.spawn(m0, "controller", move |ctx| {
        ctx.sleep(us(10));
    });
    sim.run_until_finished(&controller)
        .expect("controller finishes while everyone else is parked");
    drop(sim); // initiate_shutdown: every parked thread must unwind
}

#[test]
fn shutdown_under_load_reclaims_threads_blocked_in_every_primitive() {
    shutdown_under_load_on(Backend::OsThreads);
}

#[test]
fn shutdown_under_load_reclaims_fibers_blocked_in_every_primitive() {
    if !Backend::fibers_supported() {
        return;
    }
    shutdown_under_load_on(Backend::Fibers);
}

/// Number of mappings in /proc/self/maps — a leaked fiber stack (mmap +
/// guard page) shows up as extra lines here.
#[cfg(target_os = "linux")]
fn mapping_count() -> usize {
    std::fs::read_to_string("/proc/self/maps")
        .expect("read /proc/self/maps")
        .lines()
        .count()
}

#[test]
#[cfg(target_os = "linux")]
fn fiber_create_drop_cycles_release_guard_paged_stacks() {
    // 100 create/drop cycles with fibers parked mid-run each time: every
    // cycle must unwind all live fibers and munmap their guard-paged
    // stacks, so the process mapping count stays flat instead of growing
    // by (threads × cycles) stack mappings.
    if !Backend::fibers_supported() {
        return;
    }
    let cycle = || {
        let mut sim = Simulation::builder()
            .seed(5)
            .backend(Backend::Fibers)
            .build();
        let m0 = sim.add_processor("m0");
        let never: SimChannel<u8> = SimChannel::new();
        for i in 0..8 {
            let rx = never.clone();
            sim.spawn(m0, &format!("blocked{i}"), move |ctx| {
                let _ = rx.recv(ctx);
            });
        }
        let controller = sim.spawn(m0, "controller", |ctx| ctx.sleep(us(1)));
        sim.run_until_finished(&controller).expect("controller");
        // sim dropped here with 8 fibers parked in chan.recv
    };
    cycle(); // warm up allocator / lazy runtime mappings
    let before = mapping_count();
    for _ in 0..100 {
        cycle();
    }
    let after = mapping_count();
    // Allow a little allocator noise, but 100 cycles × 8 fibers would leak
    // hundreds of mappings if teardown didn't release the stacks.
    assert!(
        after <= before + 8,
        "mapping count grew from {before} to {after}: fiber stacks leaked"
    );
}

#[test]
fn builder_selects_backend_explicitly() {
    let sim = Simulation::builder()
        .seed(1)
        .backend(Backend::OsThreads)
        .build();
    assert_eq!(sim.backend(), Backend::OsThreads);
    if Backend::fibers_supported() {
        let sim = Simulation::builder()
            .seed(1)
            .backend(Backend::Fibers)
            .build();
        assert_eq!(sim.backend(), Backend::Fibers);
    }
}

#[test]
fn backend_override_takes_effect_for_default_constructor() {
    // The override outranks DESIM_BACKEND and the target default. Both
    // backends behave identically, so flipping the process default under
    // concurrently-running tests is safe; still restore it promptly.
    desim::set_backend_override(Some(Backend::OsThreads));
    let sim = Simulation::new(1);
    let picked = sim.backend();
    desim::set_backend_override(None);
    assert_eq!(picked, Backend::OsThreads);
}

#[test]
fn backends_agree_on_schedule_and_stale_wake_counters() {
    // The same program on both backends must produce identical virtual
    // end times, event counts, and stale-wake counters — the counters
    // live behind the per-simulation backend seam, so two simulations in
    // one process never share or double-count them.
    fn run_on(backend: Backend) -> (SimTime, u64, u64) {
        let mut sim = Simulation::builder().seed(42).backend(backend).build();
        let m0 = sim.add_processor("m0");
        let m1 = sim.add_processor("m1");
        let ch: SimChannel<u32> = SimChannel::new();
        let tx = ch.clone();
        sim.spawn(m0, "producer", move |ctx| {
            for i in 0..50 {
                ctx.sleep(us(3));
                tx.send(ctx, i).unwrap();
            }
            tx.close(ctx);
        });
        sim.spawn(m1, "consumer", move |ctx| {
            // recv_timeout races against the producer's sends, generating
            // stale timer wakes when the message wins.
            while ch.recv_timeout(ctx, us(5)).is_ok() {}
        });
        sim.run().expect("run");
        let report = sim.report();
        (report.final_time, report.events, sim.stale_wakes())
    }
    let os = run_on(Backend::OsThreads);
    if Backend::fibers_supported() {
        let fib = run_on(Backend::Fibers);
        assert_eq!(os, fib, "os-threads vs fibers diverged");
    }
    // Run os-threads again after the fiber run: counters must match the
    // first os run exactly (nothing accumulated across simulations).
    assert_eq!(os, run_on(Backend::OsThreads));
}
