//! Windowed parallel execution is observably identical to serial execution
//! of the same lane federation.
//!
//! Deterministic smoke tests pin the cross-link delivery semantics; the
//! proptest sweeps random topologies (lane counts, link delays — i.e.
//! random lookahead windows, thread programs) and asserts that every
//! observable — per-lane event pop order (via structured trace renders),
//! per-lane final virtual clocks, event counts, reports, and string-trace
//! merges — matches a serial (`shards(1)`) reference execution exactly.
//! Failures minimize through proptest's shrinking.

use desim::{us, LaneId, SimChannel, SimTime, Simulation, WindowStats};
use proptest::prelude::*;

/// Everything observable about one run, for exact comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Artifacts {
    per_lane_traces: Vec<Vec<String>>,
    per_lane_final_times: Vec<SimTime>,
    final_time: SimTime,
    events: u64,
    proc_names: Vec<String>,
    trace_lines: Vec<String>,
    switches: Vec<u64>,
    /// Window-engine accounting with the wall-clock gate wait zeroed —
    /// window count, flush/elision split, and idle-lane skips are
    /// properties of the program and must not depend on the shard count.
    windows: WindowStats,
}

/// One lane's workload parameters (drawn by proptest, fixed per case).
#[derive(Debug, Clone)]
struct LaneSpec {
    /// Sender iterations.
    rounds: u64,
    /// Whether the sender computes (CPU model) in addition to sleeping.
    compute: bool,
}

/// Builds an `n`-lane ring — lane `i` sends to lane `(i+1) % n` through a
/// cross-link of delay `delays[i]` — runs it with the given shard count,
/// and captures every observable.
fn run_ring(seed: u64, specs: &[LaneSpec], delays_us: &[u64], shards: usize) -> Artifacts {
    let n = specs.len();
    let mut sim = Simulation::builder().seed(seed).shards(shards).build();
    sim.enable_tracing_with_capacity(1 << 16);
    sim.enable_trace();

    let lanes: Vec<LaneId> = (0..n)
        .map(|i| if i == 0 { LaneId::ZERO } else { sim.add_lane() })
        .collect();
    let procs: Vec<_> = lanes
        .iter()
        .enumerate()
        .map(|(i, &l)| sim.add_processor_on(l, &format!("m{i}")))
        .collect();
    let inboxes: Vec<SimChannel<u64>> = (0..n).map(|_| SimChannel::new()).collect();

    // Ring links (only meaningful with at least two lanes).
    let senders: Vec<_> = if n > 1 {
        (0..n)
            .map(|i| {
                let dst = (i + 1) % n;
                Some(sim.cross_link(
                    &format!("ring-{i}"),
                    us(delays_us[i]),
                    lanes[i],
                    lanes[dst],
                    procs[dst],
                    inboxes[dst].clone(),
                ))
            })
            .collect()
    } else {
        vec![None]
    };

    let mut handles = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let tx = senders[i].clone();
        let spec = spec.clone();
        handles.push(
            sim.spawn_on_lane(lanes[i], procs[i], &format!("sender-{i}"), move |ctx| {
                for round in 0..spec.rounds {
                    ctx.sleep(us(1 + ctx.rand_range(50)));
                    if spec.compute {
                        ctx.compute(us(1 + ctx.rand_range(10)));
                    }
                    if let Some(tx) = tx.as_ref() {
                        tx.send(ctx, (i as u64) << 32 | round);
                    }
                }
            }),
        );
        let inbox = inboxes[i].clone();
        sim.spawn_daemon_on_lane(lanes[i], procs[i], &format!("recv-{i}"), move |ctx| {
            while let Some(v) = inbox.recv(ctx) {
                ctx.trace(format!("got {:x} at {}", v, ctx.now()));
            }
        });
    }

    let report = sim.run().expect("ring runs to completion");
    for h in &handles {
        assert!(h.is_finished());
    }
    Artifacts {
        per_lane_traces: lanes
            .iter()
            .map(|&l| {
                sim.lane_trace_events(l)
                    .iter()
                    .map(|e| e.render())
                    .collect()
            })
            .collect(),
        per_lane_final_times: lanes.iter().map(|&l| sim.lane_now(l)).collect(),
        final_time: report.final_time,
        events: report.events,
        proc_names: sim.proc_names(),
        trace_lines: sim.take_trace(),
        switches: report.procs.iter().map(|p| p.switches).collect(),
        windows: WindowStats {
            barrier_wait_ns: 0,
            ..sim.window_stats()
        },
    }
}

#[test]
fn cross_link_delivers_at_exactly_send_plus_delay() {
    let mut sim = Simulation::new(7);
    let l1 = sim.add_lane();
    let p0 = sim.add_processor("m0");
    let p1 = sim.add_processor_on(l1, "m1");
    let inbox: SimChannel<u64> = SimChannel::new();
    let tx = sim.cross_link("l01", us(30), LaneId::ZERO, l1, p1, inbox.clone());
    sim.spawn(p0, "src", move |ctx| {
        ctx.sleep(us(5));
        tx.send(ctx, 42);
        ctx.sleep(us(100));
        tx.send(ctx, 43);
    });
    let sink = sim.spawn_on_lane(l1, p1, "sink", move |ctx| {
        assert_eq!(inbox.recv(ctx), Some(42));
        assert_eq!(ctx.now(), SimTime::ZERO + us(5) + us(30));
        assert_eq!(inbox.recv(ctx), Some(43));
        assert_eq!(ctx.now(), SimTime::ZERO + us(105) + us(30));
    });
    sim.run_until_finished(&sink).expect("sink finishes");
    assert_eq!(sim.lookahead(), Some(us(30)));
}

#[test]
fn independent_lanes_drain_in_one_unbounded_window() {
    for shards in [1, 2, 4] {
        let mut sim = Simulation::builder().seed(3).shards(shards).build();
        let l1 = sim.add_lane();
        let p0 = sim.add_processor("a");
        let p1 = sim.add_processor_on(l1, "b");
        sim.spawn(p0, "ta", |ctx| ctx.sleep(us(10)));
        sim.spawn_on_lane(l1, p1, "tb", |ctx| ctx.sleep(us(25)));
        let report = sim.run().expect("independent lanes drain");
        assert_eq!(sim.lookahead(), None);
        assert_eq!(report.final_time, SimTime::ZERO + us(25));
        assert_eq!(sim.lane_now(LaneId::ZERO), SimTime::ZERO + us(10));
        assert_eq!(sim.lane_now(l1), SimTime::ZERO + us(25));
    }
}

#[test]
fn event_budget_stops_a_windowed_run() {
    let mut sim = Simulation::new(11);
    let l1 = sim.add_lane();
    let p0 = sim.add_processor("a");
    let p1 = sim.add_processor_on(l1, "b");
    let inbox: SimChannel<u64> = SimChannel::new();
    let tx = sim.cross_link("x", us(10), LaneId::ZERO, l1, p1, inbox.clone());
    sim.set_max_events(500);
    sim.spawn(p0, "spin", move |ctx| loop {
        ctx.sleep(us(1));
        tx.send(ctx, 0);
    });
    sim.spawn_daemon_on_lane(
        l1,
        p1,
        "drain",
        move |ctx| {
            while inbox.recv(ctx).is_some() {}
        },
    );
    match sim.run() {
        Err(desim::SimError::EventLimitExceeded { limit }) => assert_eq!(limit, 500),
        other => panic!("expected EventLimitExceeded, got {other:?}"),
    }
}

#[test]
fn two_lane_ring_is_shard_count_independent() {
    let specs = vec![
        LaneSpec {
            rounds: 40,
            compute: true,
        },
        LaneSpec {
            rounds: 25,
            compute: false,
        },
    ];
    let delays = vec![30, 45];
    let reference = run_ring(0xA5, &specs, &delays, 1);
    assert!(
        reference.trace_lines.iter().any(|l| l.contains("got")),
        "ring must actually deliver cross-lane traffic"
    );
    for shards in [2, 4, 0] {
        assert_eq!(reference, run_ring(0xA5, &specs, &delays, shards));
    }
}

#[test]
fn quiet_windows_elide_flush_work() {
    // Lane 0 fires one early burst at lane 1, then lane 1 grinds through a
    // long local program: every later window carries no cross traffic, so
    // its flush must be elided (dirty-flag fast path) and drained lane 0
    // skipped without taking its state lock.
    let mut sim = Simulation::builder().seed(5).shards(2).build();
    let l1 = sim.add_lane();
    let p0 = sim.add_processor("m0");
    let p1 = sim.add_processor_on(l1, "m1");
    let inbox: SimChannel<u64> = SimChannel::new();
    let tx = sim.cross_link("burst", us(10), LaneId::ZERO, l1, p1, inbox.clone());
    sim.spawn(p0, "burst", move |ctx| {
        for i in 0..3 {
            tx.send(ctx, i);
        }
    });
    sim.spawn_on_lane(l1, p1, "grind", move |ctx| {
        for _ in 0..3 {
            inbox.recv(ctx);
        }
        for _ in 0..200 {
            ctx.sleep(us(3));
        }
    });
    sim.run().expect("burst run completes");
    let w = sim.window_stats();
    assert!(w.windows > 10, "the grind spans many windows: {w:?}");
    assert!(
        w.flushes_elided > w.flushes,
        "quiet windows dominate, so elisions must outnumber real flushes: {w:?}"
    );
    assert!(
        w.lanes_skipped > 0,
        "drained lane 0 must be skipped lock-free: {w:?}"
    );
    assert_eq!(w.events, sim.report().events);
}

fn lane_spec() -> impl Strategy<Value = LaneSpec> {
    (1u64..12, any::<bool>()).prop_map(|(rounds, compute)| LaneSpec { rounds, compute })
}

/// Like [`lane_spec`], but weighted toward fully idle lanes (no sender
/// rounds at all) so the idle-lane skip and flush-elision fast paths are on
/// the exercised path.
fn sparse_lane_spec() -> impl Strategy<Value = LaneSpec> {
    (0u64..12, any::<bool>(), any::<bool>()).prop_map(|(rounds, compute, idle)| LaneSpec {
        // Half the draws collapse to a fully idle lane regardless of the
        // rounds draw, so idle-heavy topologies are common, not rare.
        rounds: if idle { 0 } else { rounds },
        compute,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random topology (1–3 lanes), random lookahead (link delays), random
    /// per-lane programs: `shards=2` and `shards=auto` must reproduce the
    /// `shards=1` serial reference bit for bit.
    #[test]
    fn windowed_matches_serial_reference(
        seed in any::<u64>(),
        specs in proptest::collection::vec(lane_spec(), 1..4),
        delays in proptest::collection::vec(5u64..200, 3..4),
    ) {
        let delays = delays[..specs.len()].to_vec();
        let reference = run_ring(seed, &specs, &delays, 1);
        for shards in [2usize, 0] {
            let other = run_ring(seed, &specs, &delays, shards);
            prop_assert_eq!(&reference, &other);
        }
    }

    /// Topologies where lanes sit fully idle: the idle-lane skip and the
    /// dirty-flag flush elision must not change a single observable — every
    /// delivery instant, trace line, and clock matches the serial
    /// (`shards=1`) reference exactly, and the window-engine counters
    /// themselves are shard-count independent.
    #[test]
    fn idle_lanes_and_quiet_links_match_serial_reference(
        seed in any::<u64>(),
        specs in proptest::collection::vec(sparse_lane_spec(), 2..5),
        delays in proptest::collection::vec(5u64..200, 4..5),
    ) {
        let delays = delays[..specs.len()].to_vec();
        let reference = run_ring(seed, &specs, &delays, 1);
        for shards in [2usize, 0] {
            let other = run_ring(seed, &specs, &delays, shards);
            prop_assert_eq!(&reference, &other);
        }
        // An idle lane's outbound link never turns dirty, so with at least
        // one idle lane every window must elide at least one flush.
        if specs.iter().any(|s| s.rounds == 0) {
            prop_assert!(
                reference.windows.flushes_elided >= reference.windows.windows,
                "idle link never elided: {:?}", reference.windows
            );
        }
    }
}
