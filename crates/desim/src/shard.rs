//! Conservative windowed parallel execution: lanes, shard-count selection,
//! and cross-lane links.
//!
//! A [`crate::Simulation`] normally runs one scheduler. With
//! [`crate::Simulation::add_lane`] it becomes a *federation* of schedulers
//! — each lane owns its own event queue, virtual clock, sequence counter,
//! RNG, perturbation stream, and trace buffers, so a lane's execution is a
//! complete, self-contained deterministic simulation. Lanes may only
//! interact through [`XSender`] links, which carry a fixed positive delay.
//! The minimum delay over all links is the **lookahead**: a value sent at
//! or after instant `T` cannot take effect on another lane before
//! `T + lookahead`.
//!
//! The driver exploits that bound with the classic conservative-window
//! scheme. Each round it computes `T_min`, the earliest queued instant
//! across all lanes, opens the window `[T_min, T_min + lookahead)`, lets
//! every lane advance independently (and in parallel, up to the configured
//! shard count) until its next event would land at or past the window end,
//! and then — with all lanes stopped — flushes every link's outbox into its
//! destination lane. Because a message sent during the window was sent at
//! some `t ≥ T_min`, it is delivered at `t + delay ≥ T_min + lookahead`,
//! i.e. at or past the window end: no lane can ever receive a message for
//! an instant it has already executed, and no lane's intra-window schedule
//! can depend on what other lanes did concurrently.
//!
//! **Bit-identity follows by construction.** The window boundaries depend
//! only on queue contents and the lookahead; the barrier-time flush order
//! is the fixed link registration order; and each lane's pop order within
//! a window is its own `(time, tie, seq)` order (see `queue.rs`). None of
//! that mentions how many OS threads advance lanes concurrently, so
//! `shards=1` and `shards=N` produce byte-identical traces, reports, and
//! hashes — the property `tests/shard_equivalence.rs` pins.
//!
//! # Shard-count selection
//!
//! The shard count is the *maximum number of runner OS threads*; the
//! effective parallelism is `min(shards, lanes)`, so single-lane
//! simulations are untouched by any setting. Priority, highest first:
//!
//! 1. [`crate::SimulationBuilder::shards`] — explicit per-simulation choice.
//! 2. [`set_shards_override`] — a process-global override, for tests and
//!    harnesses that construct simulations indirectly.
//! 3. The `DESIM_SHARDS` environment variable (a number, or `auto`/`0` for
//!    one runner per host core), read afresh at each construction.
//! 4. `auto`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::channel::SimChannel;
use crate::core::{Core, CoreState, LaneInjector};
use crate::time::{SimDuration, SimTime};
use crate::Ctx;

/// Identifies one scheduler lane of a [`crate::Simulation`]. Lane 0 always
/// exists; further lanes come from [`crate::Simulation::add_lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LaneId(pub(crate) u32);

impl LaneId {
    /// The default lane every single-lane simulation runs on.
    pub const ZERO: LaneId = LaneId(0);

    /// The lane's index (lane 0 is the default lane).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lane{}", self.0)
    }
}

/// Derives the RNG seed for lane `lane` from the simulation seed. Lane 0
/// keeps the seed unchanged, so every single-lane simulation is
/// byte-identical to what it was before lanes existed; further lanes get
/// independent streams via a splitmix64 scramble.
pub(crate) fn lane_seed(seed: u64, lane: u64) -> u64 {
    if lane == 0 {
        return seed;
    }
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Requested shard count, before clamping to the lane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardCount {
    /// One runner per host core.
    Auto,
    /// Exactly this many runners (at least 1).
    Fixed(usize),
}

impl ShardCount {
    /// The runner count this setting stands for on this host.
    pub(crate) fn resolve(self) -> usize {
        match self {
            ShardCount::Fixed(n) => n.max(1),
            ShardCount::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

const NO_OVERRIDE: usize = usize::MAX;

// usize::MAX = no override, 0 = auto, n = fixed.
static OVERRIDE: AtomicUsize = AtomicUsize::new(NO_OVERRIDE);

/// Sets (or clears, with `None`) a process-global shard-count override that
/// outranks `DESIM_SHARDS` but not an explicit
/// [`crate::SimulationBuilder::shards`] call. `Some(0)` means `auto` (one
/// runner per host core). Intended for tests and CLIs that drive code
/// which constructs `Simulation`s internally; tests sharing a process must
/// serialize around it. The shard count never affects observable results —
/// only wall-clock time — so a stray override can slow a run down but not
/// change it.
pub fn set_shards_override(shards: Option<usize>) {
    OVERRIDE.store(shards.unwrap_or(NO_OVERRIDE), Ordering::SeqCst);
}

/// The shard count a simulation gets without an explicit builder call: the
/// process override if set, else `DESIM_SHARDS`, else `auto`. Panics on an
/// unparseable `DESIM_SHARDS` so typos fail loudly.
pub(crate) fn default_shards() -> ShardCount {
    match OVERRIDE.load(Ordering::SeqCst) {
        NO_OVERRIDE => {}
        0 => return ShardCount::Auto,
        n => return ShardCount::Fixed(n),
    }
    if let Ok(v) = std::env::var("DESIM_SHARDS") {
        let t = v.trim();
        if t.eq_ignore_ascii_case("auto") {
            return ShardCount::Auto;
        }
        return match t.parse::<usize>() {
            Ok(0) => ShardCount::Auto,
            Ok(n) => ShardCount::Fixed(n),
            Err(_) => panic!("DESIM_SHARDS={v:?} is not a shard count (use a number or \"auto\")"),
        };
    }
    ShardCount::Auto
}

/// What one barrier-time [`XPort::flush`] did.
pub(crate) enum FlushResult {
    /// Nothing was sent since the last flush: the dirty-flag fast path
    /// returned after one atomic swap, taking no lock.
    Quiet,
    /// The outbox was merged into the pending list; the earliest pending
    /// delivery was already covered by a queued injection event.
    Merged,
    /// The outbox was merged and a fresh injection event was pushed into
    /// the destination lane's queue at this instant. The driver folds it
    /// into the lane's published next-event slot, so a lane made runnable
    /// only by this flush is not skipped.
    Armed(SimTime),
}

/// Barrier-side face of a cross-lane link, held by the `Simulation` driver.
/// Only called between windows, when no lane is running.
pub(crate) trait XPort: Send + Sync {
    /// The link's fixed delay; the global lookahead is the minimum over all
    /// registered links.
    fn min_delay(&self) -> SimDuration;

    /// The destination lane's index, so the driver can fold a flush's
    /// newly armed instant into that lane's published next-event slot.
    fn dst_lane(&self) -> usize;

    /// Moves everything sent during the last window into the destination
    /// lane's pending list and, when the earliest pending delivery is not
    /// already covered by a queued injection event, pushes one directly
    /// into the destination lane's event queue. `floor` is the committed
    /// global horizon: conservative lookahead guarantees every delivery
    /// lands at or past it, which is debug-asserted here (the
    /// cross-shard-injection assertion of `queue.rs`'s module docs).
    ///
    /// Quiet links — nothing sent since the last flush — return
    /// [`FlushResult::Quiet`] after a single atomic swap on the link's
    /// dirty flag, taking no lock at all: the common case in switch-tree
    /// topologies, where most windows carry no cross-lane traffic on most
    /// links.
    fn flush(&self, floor: SimTime) -> FlushResult;
}

/// Shared state of one [`XSender`] link.
///
/// Values travel in three hops, none of which lets a receiver observe a
/// value early:
///
/// 1. `send` (source lane, during a window) appends `(now + delay, value)`
///    to the `outbox` — invisible to the destination — and raises the
///    link's dirty flag.
/// 2. `flush` (driver, at the window barrier) merges the outbox into
///    `pending`, sorted by delivery time, and pushes an *injection event*
///    ([`LaneInjector`]) into the destination lane's queue at the earliest
///    pending instant.
/// 3. When the injection event pops — at exactly the delivery instant, on
///    the destination lane — [`XShared::deliver_due`] runs under that
///    lane's state lock and enqueues every due value with a deferred
///    channel send, so the receiving side sees a plain in-lane message
///    with the correct timestamp and pick order. No injector daemon, no
///    daemon wake, no channel hop: a cross-lane frame costs one queue pop.
struct XShared<T> {
    delay: SimDuration,
    /// Destination lane index (for the driver's slot bookkeeping).
    dst_lane: usize,
    /// This link's index in the destination lane's injector table; carried
    /// by every injection event the link arms.
    idx: usize,
    /// Set by `send`, cleared by `flush`; lets a quiet window skip the
    /// outbox and pending locks entirely.
    dirty: AtomicBool,
    /// `(delivery instant, value)` pairs sent during the current window, in
    /// send order (per-lane virtual time is monotone, so also time order).
    outbox: Mutex<Vec<(SimTime, T)>>,
    /// Flushed, undelivered values sorted by delivery instant (stable, so
    /// same-instant values keep flush order).
    pending: Mutex<PendingBox<T>>,
    dst_core: Arc<Core>,
    dst: SimChannel<T>,
    /// `Arc::as_ptr` of the source lane's core, for the debug-only
    /// wrong-lane check in `send`.
    src_core_addr: usize,
}

struct PendingBox<T> {
    q: VecDeque<(SimTime, T)>,
    /// Instants of this link's injection events currently queued in the
    /// destination lane, strictly decreasing (a re-arm always beats every
    /// existing arming, so the earliest — the next to fire — is the last
    /// element). Usually one entry; superseded later events stay queued
    /// and pop as harmless no-ops that advance the clock like any event.
    armed: Vec<SimTime>,
}

impl<T> PendingBox<T> {
    /// Whether a delivery at `front` needs a fresh injection event, i.e.
    /// no queued one fires early enough.
    fn needs_arm(&self, front: SimTime) -> bool {
        self.armed.last().is_none_or(|&a| front < a)
    }
}

impl<T: Send + 'static> LaneInjector for XShared<T> {
    /// Runs on the destination lane when one of this link's injection
    /// events pops at `now`: delivers every pending value due by `now` and
    /// reports when the next one falls due (if no later queued injection
    /// event covers it). Receiver wakes go through the deferred-send path,
    /// which is the exact enqueue+wake sequence of an in-lane
    /// `SimChannel::send` — same `(time, tie, seq)` draws, same pick order.
    fn deliver_due(&self, st: &mut CoreState, now: SimTime) -> Option<SimTime> {
        let mut p = self.pending.lock();
        debug_assert_eq!(
            p.armed.last().copied(),
            Some(now),
            "injection events fire in arming order"
        );
        p.armed.pop();
        while p.q.front().is_some_and(|e| e.0 <= now) {
            let (_, v) = p.q.pop_front().expect("peeked");
            // A closed channel drops the value, like the daemon's send did.
            if let Ok(Some(w)) = self.dst.send_deferred(v) {
                let (t, wid) = w.into_parts();
                st.schedule_wake_now(t, wid);
            }
        }
        let front = p.q.front().map(|e| e.0)?;
        if p.needs_arm(front) {
            p.armed.push(front);
            return Some(front);
        }
        None
    }
}

impl<T: Send + 'static> XPort for XShared<T> {
    fn min_delay(&self) -> SimDuration {
        self.delay
    }

    fn dst_lane(&self) -> usize {
        self.dst_lane
    }

    fn flush(&self, floor: SimTime) -> FlushResult {
        // Quiet link: nothing was sent since the last flush, and anything
        // still pending already has an injection event queued (armed at
        // flush or re-armed at delivery). One uncontended atomic, no locks.
        if !self.dirty.swap(false, Ordering::Acquire) {
            return FlushResult::Quiet;
        }
        let out: Vec<(SimTime, T)> = std::mem::take(&mut *self.outbox.lock());
        let front = {
            let mut p = self.pending.lock();
            for (at, v) in out {
                debug_assert!(
                    at >= floor,
                    "cross-shard injection below the committed window floor"
                );
                // Stable insert: later flushes of equal instants go after.
                let pos = p.q.partition_point(|e| e.0 <= at);
                p.q.insert(pos, (at, v));
            }
            let front = match p.q.front().map(|e| e.0) {
                Some(f) => f,
                None => return FlushResult::Merged,
            };
            if !p.needs_arm(front) {
                return FlushResult::Merged;
            }
            p.armed.push(front);
            front
            // Pending lock released before the destination state lock:
            // barrier-time flushes and in-window deliveries never overlap
            // (every lane is stopped here), but keeping the lock ranges
            // disjoint keeps the ordering trivially sound.
        };
        self.dst_core
            .state
            .lock()
            .schedule_injection(front, self.idx);
        FlushResult::Armed(front)
    }
}

/// Sending end of a cross-lane link created by
/// [`crate::Simulation::cross_link`]. Clonable; every clone must be used
/// from the link's *source* lane only (debug-asserted).
///
/// This is the **only** legal way for simulated code on one lane to affect
/// another lane. Sharing a [`SimChannel`], [`crate::SimMutex`], or
/// [`crate::ThreadHandle::join`] across lanes is a bug (and debug-asserted
/// where cheap): those primitives schedule wakes directly into a core and
/// would bypass the lookahead bound that makes parallel windows safe.
pub struct XSender<T> {
    shared: Arc<XShared<T>>,
}

impl<T> Clone for XSender<T> {
    fn clone(&self) -> Self {
        XSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> fmt::Debug for XSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XSender")
            .field("delay", &self.shared.delay)
            .finish()
    }
}

impl<T: Send + 'static> XSender<T> {
    /// Sends `value` to the destination lane's channel, arriving exactly
    /// `delay` after the current instant. Never blocks; the value becomes
    /// visible to the destination at the next window boundary (which the
    /// lookahead guarantees is before the delivery instant).
    pub fn send(&self, ctx: &Ctx, value: T) {
        debug_assert_eq!(
            Arc::as_ptr(ctx.core()) as usize,
            self.shared.src_core_addr,
            "XSender used from a lane other than its source lane"
        );
        let at = ctx.now() + self.shared.delay;
        self.shared.outbox.lock().push((at, value));
        // Raised after the push; the window barrier orders both against the
        // driver's flush, so Release is belt-and-braces, not load-bearing.
        self.shared.dirty.store(true, Ordering::Release);
    }

    /// The link's fixed delivery delay.
    pub fn delay(&self) -> SimDuration {
        self.shared.delay
    }
}

/// Builds a link's shared state, registers its delivery hook with the
/// destination lane, and returns `(sender, port)` for
/// [`crate::Simulation::cross_link`] to wire up: the port goes into the
/// driver's flush list; deliveries happen via barrier-time injection
/// events, so no daemon is spawned anywhere.
pub(crate) fn new_link<T: Send + 'static>(
    delay: SimDuration,
    src_core: &Arc<Core>,
    dst_core: &Arc<Core>,
    dst_lane: usize,
    dst: SimChannel<T>,
) -> (XSender<T>, Arc<dyn XPort>) {
    assert!(
        !delay.is_zero(),
        "cross-lane links need a positive delay: it is the lookahead that \
         makes parallel windows safe"
    );
    let idx = dst_core.state.lock().injectors.len();
    let shared = Arc::new(XShared {
        delay,
        dst_lane,
        idx,
        dirty: AtomicBool::new(false),
        outbox: Mutex::new(Vec::new()),
        pending: Mutex::new(PendingBox {
            q: VecDeque::new(),
            armed: Vec::new(),
        }),
        dst_core: Arc::clone(dst_core),
        dst,
        src_core_addr: Arc::as_ptr(src_core) as usize,
    });
    let registered = dst_core.register_injector(Arc::clone(&shared) as Arc<dyn LaneInjector>);
    debug_assert_eq!(registered, idx);
    let sender = XSender {
        shared: Arc::clone(&shared),
    };
    let port: Arc<dyn XPort> = shared as Arc<dyn XPort>;
    (sender, port)
}

/// One lane's published position, written lock-free by whichever runner
/// drove the lane last: the earliest queued instant (`u64::MAX` = drained)
/// and the lane's cumulative event count. Lets the coordinator compute
/// `T_min`, the summed event-budget check, and the idle-lane skip without
/// touching any lane's state lock between windows.
pub(crate) struct LaneSlot {
    /// Nanoseconds of the lane's earliest queued event; `u64::MAX` when
    /// the lane is drained.
    pub next: AtomicU64,
    /// Mirror of the lane's `events_processed`.
    pub events: AtomicU64,
}

use std::sync::atomic::AtomicU64;

/// Sense-reversing window gate: the coordinator opens each window by
/// bumping a generation counter and the workers report completion by
/// decrementing an active count — one atomic store-and-wait pair per
/// window instead of the two `std::sync::Barrier` futex round trips the
/// driver used to pay. Waiters spin briefly (multicore hosts only, same
/// heuristic as the scheduler hand-off) and then `yield_now`, which on an
/// oversubscribed host immediately schedules the runner holding the work —
/// the profile that made the old barrier cost ~90 µs per window on the
/// one-core reference container.
pub(crate) struct WindowGate {
    /// Window generation; bumped by [`WindowGate::open`].
    gen: AtomicU64,
    /// Workers still driving the current window.
    active: AtomicUsize,
    /// Worker count (runners minus the coordinator).
    workers: usize,
    /// Spin before yielding (multicore hosts).
    spin: bool,
}

impl WindowGate {
    pub(crate) fn new(workers: usize) -> WindowGate {
        WindowGate {
            gen: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            workers,
            spin: crate::core::spin_before_park(),
        }
    }

    #[inline]
    fn wait_until(&self, mut ready: impl FnMut() -> bool) {
        if self.spin {
            for _ in 0..128 {
                if ready() {
                    return;
                }
                std::hint::spin_loop();
            }
        }
        while !ready() {
            std::thread::yield_now();
        }
    }

    /// Coordinator: open the next window. The `active` store precedes the
    /// generation bump, and every pre-window write (window bounds, lane
    /// slots) precedes this call, so a worker's acquire on the generation
    /// sees them all.
    pub(crate) fn open(&self) {
        self.active.store(self.workers, Ordering::Release);
        self.gen.fetch_add(1, Ordering::Release);
    }

    /// Worker: block until a generation newer than `seen` opens; returns
    /// the new generation.
    pub(crate) fn wait_open(&self, seen: u64) -> u64 {
        self.wait_until(|| self.gen.load(Ordering::Acquire) != seen);
        self.gen.load(Ordering::Acquire)
    }

    /// Worker: report this window's lanes done. The release pairs with the
    /// coordinator's acquire in [`WindowGate::wait_done`], publishing the
    /// worker's slot stores.
    pub(crate) fn done(&self) {
        self.active.fetch_sub(1, Ordering::Release);
    }

    /// Coordinator: block until every worker reported done.
    pub(crate) fn wait_done(&self) {
        self.wait_until(|| self.active.load(Ordering::Acquire) == 0);
    }
}
