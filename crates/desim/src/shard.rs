//! Conservative windowed parallel execution: lanes, shard-count selection,
//! and cross-lane links.
//!
//! A [`crate::Simulation`] normally runs one scheduler. With
//! [`crate::Simulation::add_lane`] it becomes a *federation* of schedulers
//! — each lane owns its own event queue, virtual clock, sequence counter,
//! RNG, perturbation stream, and trace buffers, so a lane's execution is a
//! complete, self-contained deterministic simulation. Lanes may only
//! interact through [`XSender`] links, which carry a fixed positive delay.
//! The minimum delay over all links is the **lookahead**: a value sent at
//! or after instant `T` cannot take effect on another lane before
//! `T + lookahead`.
//!
//! The driver exploits that bound with the classic conservative-window
//! scheme. Each round it computes `T_min`, the earliest queued instant
//! across all lanes, opens the window `[T_min, T_min + lookahead)`, lets
//! every lane advance independently (and in parallel, up to the configured
//! shard count) until its next event would land at or past the window end,
//! and then — with all lanes stopped — flushes every link's outbox into its
//! destination lane. Because a message sent during the window was sent at
//! some `t ≥ T_min`, it is delivered at `t + delay ≥ T_min + lookahead`,
//! i.e. at or past the window end: no lane can ever receive a message for
//! an instant it has already executed, and no lane's intra-window schedule
//! can depend on what other lanes did concurrently.
//!
//! **Bit-identity follows by construction.** The window boundaries depend
//! only on queue contents and the lookahead; the barrier-time flush order
//! is the fixed link registration order; and each lane's pop order within
//! a window is its own `(time, tie, seq)` order (see `queue.rs`). None of
//! that mentions how many OS threads advance lanes concurrently, so
//! `shards=1` and `shards=N` produce byte-identical traces, reports, and
//! hashes — the property `tests/shard_equivalence.rs` pins.
//!
//! # Shard-count selection
//!
//! The shard count is the *maximum number of runner OS threads*; the
//! effective parallelism is `min(shards, lanes)`, so single-lane
//! simulations are untouched by any setting. Priority, highest first:
//!
//! 1. [`crate::SimulationBuilder::shards`] — explicit per-simulation choice.
//! 2. [`set_shards_override`] — a process-global override, for tests and
//!    harnesses that construct simulations indirectly.
//! 3. The `DESIM_SHARDS` environment variable (a number, or `auto`/`0` for
//!    one runner per host core), read afresh at each construction.
//! 4. `auto`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::channel::SimChannel;
use crate::core::{shutdown_unwind_unless_panicking, Core, ThreadId, WakeStatus};
use crate::time::{SimDuration, SimTime};
use crate::Ctx;

/// Identifies one scheduler lane of a [`crate::Simulation`]. Lane 0 always
/// exists; further lanes come from [`crate::Simulation::add_lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LaneId(pub(crate) u32);

impl LaneId {
    /// The default lane every single-lane simulation runs on.
    pub const ZERO: LaneId = LaneId(0);

    /// The lane's index (lane 0 is the default lane).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lane{}", self.0)
    }
}

/// Derives the RNG seed for lane `lane` from the simulation seed. Lane 0
/// keeps the seed unchanged, so every single-lane simulation is
/// byte-identical to what it was before lanes existed; further lanes get
/// independent streams via a splitmix64 scramble.
pub(crate) fn lane_seed(seed: u64, lane: u64) -> u64 {
    if lane == 0 {
        return seed;
    }
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Requested shard count, before clamping to the lane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardCount {
    /// One runner per host core.
    Auto,
    /// Exactly this many runners (at least 1).
    Fixed(usize),
}

impl ShardCount {
    /// The runner count this setting stands for on this host.
    pub(crate) fn resolve(self) -> usize {
        match self {
            ShardCount::Fixed(n) => n.max(1),
            ShardCount::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

const NO_OVERRIDE: usize = usize::MAX;

// usize::MAX = no override, 0 = auto, n = fixed.
static OVERRIDE: AtomicUsize = AtomicUsize::new(NO_OVERRIDE);

/// Sets (or clears, with `None`) a process-global shard-count override that
/// outranks `DESIM_SHARDS` but not an explicit
/// [`crate::SimulationBuilder::shards`] call. `Some(0)` means `auto` (one
/// runner per host core). Intended for tests and CLIs that drive code
/// which constructs `Simulation`s internally; tests sharing a process must
/// serialize around it. The shard count never affects observable results —
/// only wall-clock time — so a stray override can slow a run down but not
/// change it.
pub fn set_shards_override(shards: Option<usize>) {
    OVERRIDE.store(shards.unwrap_or(NO_OVERRIDE), Ordering::SeqCst);
}

/// The shard count a simulation gets without an explicit builder call: the
/// process override if set, else `DESIM_SHARDS`, else `auto`. Panics on an
/// unparseable `DESIM_SHARDS` so typos fail loudly.
pub(crate) fn default_shards() -> ShardCount {
    match OVERRIDE.load(Ordering::SeqCst) {
        NO_OVERRIDE => {}
        0 => return ShardCount::Auto,
        n => return ShardCount::Fixed(n),
    }
    if let Ok(v) = std::env::var("DESIM_SHARDS") {
        let t = v.trim();
        if t.eq_ignore_ascii_case("auto") {
            return ShardCount::Auto;
        }
        return match t.parse::<usize>() {
            Ok(0) => ShardCount::Auto,
            Ok(n) => ShardCount::Fixed(n),
            Err(_) => panic!("DESIM_SHARDS={v:?} is not a shard count (use a number or \"auto\")"),
        };
    }
    ShardCount::Auto
}

/// Barrier-side face of a cross-lane link, held by the `Simulation` driver.
/// Only called between windows, when no lane is running.
pub(crate) trait XPort: Send + Sync {
    /// The link's fixed delay; the global lookahead is the minimum over all
    /// registered links.
    fn min_delay(&self) -> SimDuration;

    /// Moves everything sent during the last window into the destination
    /// lane's pending list and (re-)arms the injector daemon's wake for the
    /// earliest pending delivery. `floor` is the committed global horizon:
    /// conservative lookahead guarantees every delivery lands at or past
    /// it, which is debug-asserted here (the cross-shard-injection
    /// assertion of `queue.rs`'s module docs).
    fn flush(&self, floor: SimTime);
}

/// Shared state of one [`XSender`] link.
///
/// Values travel in three hops, none of which lets a receiver observe a
/// value early:
///
/// 1. `send` (source lane, during a window) appends `(now + delay, value)`
///    to the `outbox` — invisible to the destination.
/// 2. `flush` (driver, at the window barrier) merges the outbox into
///    `pending`, sorted by delivery time, and schedules a wake for the
///    injector daemon at the earliest pending instant.
/// 3. The injector daemon (destination lane) wakes at exactly the delivery
///    instant and performs ordinary `SimChannel::send`s, so the receiving
///    side sees a plain in-lane message with the correct timestamp, pick
///    order, and trace emission.
struct XShared<T> {
    delay: SimDuration,
    /// `(delivery instant, value)` pairs sent during the current window, in
    /// send order (per-lane virtual time is monotone, so also time order).
    outbox: Mutex<Vec<(SimTime, T)>>,
    /// Flushed, undelivered values sorted by delivery instant (stable, so
    /// same-instant values keep flush order).
    pending: Mutex<PendingBox<T>>,
    /// The injector daemon's current block registration: `(thread, wait
    /// token)`, overwritten each time the daemon blocks. `flush` schedules
    /// wakes against it; superseded wakes go stale harmlessly (the wake
    /// table cancels them like any other dead generation).
    waiting: Mutex<Option<(ThreadId, u64)>>,
    dst_core: Arc<Core>,
    dst: SimChannel<T>,
    /// `Arc::as_ptr` of the source lane's core, for the debug-only
    /// wrong-lane check in `send`.
    src_core_addr: usize,
}

struct PendingBox<T> {
    q: VecDeque<(SimTime, T)>,
    /// Earliest instant a wake is already queued for under the daemon's
    /// current registration (`None` = none). Lets `flush` skip scheduling
    /// duplicate wakes when nothing earlier arrived.
    armed_at: Option<SimTime>,
}

impl<T: Send + 'static> XShared<T> {
    /// Body of the injector daemon, spawned on the destination lane by
    /// [`crate::Simulation::cross_link`].
    fn injector_loop(self: &Arc<Self>, ctx: &Ctx) {
        loop {
            // Deliver everything due at the current instant, then note when
            // the next pending value falls due. Also record that instant as
            // armed: the self-timer below is scheduled before anything else
            // can run on this lane, and flush only looks between windows.
            let now = ctx.now();
            let (due, next_at) = {
                let mut p = self.pending.lock();
                let mut due = Vec::new();
                while p.q.front().is_some_and(|e| e.0 <= now) {
                    due.push(p.q.pop_front().expect("peeked").1);
                }
                let next_at = p.q.front().map(|e| e.0);
                p.armed_at = next_at;
                (due, next_at)
            };
            for v in due {
                let _ = self.dst.send(ctx, v);
            }
            {
                let mut st = ctx.core().state.lock();
                let wid = st.prepare_block(ctx.thread_id(), "xlink");
                if let Some(at) = next_at {
                    st.schedule_wake(at, ctx.thread_id(), wid);
                }
                drop(st);
                *self.waiting.lock() = Some((ctx.thread_id(), wid));
            }
            if ctx.yield_blocked() == WakeStatus::Shutdown {
                shutdown_unwind_unless_panicking();
                return;
            }
        }
    }
}

impl<T: Send> XPort for XShared<T> {
    fn min_delay(&self) -> SimDuration {
        self.delay
    }

    fn flush(&self, floor: SimTime) {
        let out: Vec<(SimTime, T)> = std::mem::take(&mut *self.outbox.lock());
        let mut p = self.pending.lock();
        for (at, v) in out {
            debug_assert!(
                at >= floor,
                "cross-shard injection below the committed window floor"
            );
            // Stable insert: later flushes of equal instants go after.
            let pos = p.q.partition_point(|e| e.0 <= at);
            p.q.insert(pos, (at, v));
        }
        let Some(front) = p.q.front().map(|e| e.0) else {
            return;
        };
        let need = match p.armed_at {
            None => true,
            Some(a) => front < a,
        };
        if need {
            if let Some((t, w)) = *self.waiting.lock() {
                self.dst_core.state.lock().schedule_wake(front, t, w);
                p.armed_at = Some(front);
            }
            // No registration yet means the daemon's start wake is still
            // queued; its first run arms the timer itself.
        }
    }
}

/// Sending end of a cross-lane link created by
/// [`crate::Simulation::cross_link`]. Clonable; every clone must be used
/// from the link's *source* lane only (debug-asserted).
///
/// This is the **only** legal way for simulated code on one lane to affect
/// another lane. Sharing a [`SimChannel`], [`crate::SimMutex`], or
/// [`crate::ThreadHandle::join`] across lanes is a bug (and debug-asserted
/// where cheap): those primitives schedule wakes directly into a core and
/// would bypass the lookahead bound that makes parallel windows safe.
pub struct XSender<T> {
    shared: Arc<XShared<T>>,
}

impl<T> Clone for XSender<T> {
    fn clone(&self) -> Self {
        XSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> fmt::Debug for XSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XSender")
            .field("delay", &self.shared.delay)
            .finish()
    }
}

impl<T: Send + 'static> XSender<T> {
    /// Sends `value` to the destination lane's channel, arriving exactly
    /// `delay` after the current instant. Never blocks; the value becomes
    /// visible to the destination at the next window boundary (which the
    /// lookahead guarantees is before the delivery instant).
    pub fn send(&self, ctx: &Ctx, value: T) {
        debug_assert_eq!(
            Arc::as_ptr(ctx.core()) as usize,
            self.shared.src_core_addr,
            "XSender used from a lane other than its source lane"
        );
        let at = ctx.now() + self.shared.delay;
        self.shared.outbox.lock().push((at, value));
    }

    /// The link's fixed delivery delay.
    pub fn delay(&self) -> SimDuration {
        self.shared.delay
    }
}

/// Builds a link's shared state and returns `(sender, port, injector)`
/// for [`crate::Simulation::cross_link`] to wire up: the port goes into
/// the driver's flush list and the injector closure is spawned as a daemon
/// on the destination lane.
#[allow(clippy::type_complexity)]
pub(crate) fn new_link<T: Send + 'static>(
    delay: SimDuration,
    src_core: &Arc<Core>,
    dst_core: &Arc<Core>,
    dst: SimChannel<T>,
) -> (
    XSender<T>,
    Arc<dyn XPort>,
    impl FnOnce(&Ctx) + Send + 'static,
) {
    assert!(
        !delay.is_zero(),
        "cross-lane links need a positive delay: it is the lookahead that \
         makes parallel windows safe"
    );
    let shared = Arc::new(XShared {
        delay,
        outbox: Mutex::new(Vec::new()),
        pending: Mutex::new(PendingBox {
            q: VecDeque::new(),
            armed_at: None,
        }),
        waiting: Mutex::new(None),
        dst_core: Arc::clone(dst_core),
        dst,
        src_core_addr: Arc::as_ptr(src_core) as usize,
    });
    let sender = XSender {
        shared: Arc::clone(&shared),
    };
    let port: Arc<dyn XPort> = Arc::clone(&shared) as Arc<dyn XPort>;
    let injector = move |ctx: &Ctx| shared.injector_loop(ctx);
    (sender, port, injector)
}
