//! Virtual time for the simulation.
//!
//! The simulator keeps time as an integer number of nanoseconds since the
//! start of the run. [`SimTime`] is an instant, [`SimDuration`] a span.
//! Nanosecond resolution keeps wire-time arithmetic (0.8 µs per byte on a
//! 10 Mbit/s Ethernet) exact in integers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use desim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(250);
/// assert_eq!(t.as_nanos(), 250_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) microseconds since simulation start.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as (fractional) milliseconds since simulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the instant as (fractional) seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the duration elapsed since an `earlier` instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Returns the duration since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of virtual time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use desim::SimDuration;
///
/// let wire = SimDuration::from_nanos(800) * 1500; // 1500 bytes at 10 Mbit/s
/// assert_eq!(wire.as_micros_f64(), 1200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional microseconds, rounding to nanoseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000_000.0).round().max(0.0) as u64)
    }

    /// Returns the span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamping at zero.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1_000.0)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1_000_000_000.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// Shorthand for [`SimDuration::from_micros`].
pub const fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// Shorthand for [`SimDuration::from_millis`].
pub const fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Shorthand for [`SimDuration::from_secs`].
pub const fn secs(v: u64) -> SimDuration {
    SimDuration::from_secs(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + us(100) + ms(2);
        assert_eq!(t.as_nanos(), 2_100_000);
        assert_eq!(
            t - SimTime::from_nanos(100_000),
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(us(10) * 3, us(30));
        assert_eq!(ms(1) / 4, us(250));
        assert_eq!(
            vec![us(1), us(2), us(3)].into_iter().sum::<SimDuration>(),
            us(6)
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", us(70)), "70.000us");
        assert_eq!(format!("{}", ms(12)), "12.000ms");
        assert_eq!(format!("{}", secs(3)), "3.000s");
        assert_eq!(format!("{}", SimDuration::ZERO), "0s");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(us(1).saturating_sub(us(5)), SimDuration::ZERO);
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_nanos(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fractional_constructors() {
        assert_eq!(
            SimDuration::from_micros_f64(0.8),
            SimDuration::from_nanos(800)
        );
        assert_eq!(SimDuration::from_secs_f64(0.5), ms(500));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = us(1) - us(2);
    }
}
