//! FIFO message channels between simulated threads.
//!
//! [`SimChannel`] is the workhorse of the protocol stack: NIC receive queues,
//! daemon-thread inboxes, and reply slots are all channels. A channel is a
//! clonable handle; all clones share the same queue.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::core::{shutdown_unwind_unless_panicking, ThreadId, WakeStatus};
use crate::time::SimDuration;
use crate::Ctx;

/// Error returned by [`SimChannel::send`] when the channel is closed.
///
/// The unsent value is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a closed channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`SimChannel::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed before a message arrived.
    Timeout,
    /// The channel is closed and drained.
    Closed,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting for a message"),
            RecvTimeoutError::Closed => write!(f, "channel is closed"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Inner<T> {
    queue: VecDeque<T>,
    recv_waiters: VecDeque<(ThreadId, u64)>,
    closed: bool,
}

/// A receiver wake captured by [`SimChannel::send_deferred`] and not yet
/// scheduled. Commit it (and any siblings, in capture order) with
/// [`Ctx::commit_wakes`]; dropping it instead would strand a blocked
/// receiver until its next timeout.
#[derive(Debug)]
#[must_use = "an uncommitted wake strands the blocked receiver"]
pub struct PendingWake {
    thread: ThreadId,
    wait_id: u64,
}

impl PendingWake {
    pub(crate) fn into_parts(self) -> (ThreadId, u64) {
        (self.thread, self.wait_id)
    }
}

/// An unbounded multi-producer multi-consumer FIFO channel in virtual time.
///
/// # Examples
///
/// ```
/// use desim::{Simulation, SimChannel, us};
///
/// let mut sim = Simulation::new(3);
/// let cpu = sim.add_processor("m0");
/// let ch = SimChannel::new();
/// let tx = ch.clone();
/// sim.spawn(cpu, "producer", move |ctx| {
///     ctx.sleep(us(5));
///     tx.send(ctx, 42u32).expect("open");
/// });
/// let consumer = sim.spawn(cpu, "consumer", move |ctx| {
///     assert_eq!(ch.recv(ctx), Some(42));
/// });
/// sim.run_until_finished(&consumer).expect("run");
/// ```
pub struct SimChannel<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for SimChannel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SimChannel")
            .field("len", &inner.queue.len())
            .field("closed", &inner.closed)
            .finish()
    }
}

impl<T> Default for SimChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SimChannel<T> {
    /// Creates an empty open channel.
    pub fn new() -> Self {
        SimChannel {
            inner: Arc::new(Mutex::new(Inner {
                queue: VecDeque::new(),
                recv_waiters: VecDeque::new(),
                closed: false,
            })),
        }
    }

    /// Enqueues `value` and wakes one waiting receiver.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] with the value if the channel is closed.
    pub fn send(&self, ctx: &Ctx, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        if let Some((t, w)) = inner.recv_waiters.pop_front() {
            ctx.core().state.lock().schedule_wake_now(t, w);
        }
        Ok(())
    }

    /// Enqueues `value` like [`SimChannel::send`] but *defers* scheduling
    /// the receiver's wake: if a receiver was blocked, its wake is returned
    /// for the caller to commit via [`Ctx::commit_wakes`].
    ///
    /// This exists for broadcast fan-out: delivering one frame to N group
    /// members costs N scheduler-lock round-trips with plain `send`; with
    /// deferred sends the frames are enqueued first and all wakes are
    /// scheduled in one batch. Committing the wakes in capture order makes
    /// the result bit-identical to the unbatched sequence, because only the
    /// sending thread runs between the enqueue and the commit.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] with the value if the channel is closed.
    pub fn send_deferred(&self, value: T) -> Result<Option<PendingWake>, SendError<T>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        Ok(inner
            .recv_waiters
            .pop_front()
            .map(|(thread, wait_id)| PendingWake { thread, wait_id }))
    }

    /// Receives the next message, blocking until one is available.
    ///
    /// Returns `None` once the channel is closed and drained.
    pub fn recv(&self, ctx: &Ctx) -> Option<T> {
        let me = ctx.thread_id();
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(v) = inner.queue.pop_front() {
                    return Some(v);
                }
                if inner.closed {
                    return None;
                }
                let wid = ctx.core().state.lock().prepare_block(me, "chan.recv");
                inner.recv_waiters.push_back((me, wid));
            }
            if ctx.yield_blocked() == WakeStatus::Shutdown {
                shutdown_unwind_unless_panicking();
                return None; // benign value for unwinding destructors
            }
        }
    }

    /// Receives the next message, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
    /// [`RecvTimeoutError::Closed`] if the channel is closed and drained.
    pub fn recv_timeout(&self, ctx: &Ctx, timeout: SimDuration) -> Result<T, RecvTimeoutError> {
        let me = ctx.thread_id();
        let deadline = ctx.now() + timeout;
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.closed {
                    return Err(RecvTimeoutError::Closed);
                }
                let mut core = ctx.core().state.lock();
                if core.now >= deadline {
                    // Deregister: a leftover entry would swallow a future
                    // sender's wake and starve a live receiver.
                    inner.recv_waiters.retain(|(t, _)| *t != me);
                    return Err(RecvTimeoutError::Timeout);
                }
                let wid = core.prepare_block(me, "chan.recv_timeout");
                core.schedule_wake(deadline, me, wid);
                drop(core);
                inner.recv_waiters.push_back((me, wid));
            }
            if ctx.yield_blocked() == WakeStatus::Shutdown {
                shutdown_unwind_unless_panicking();
                return Err(RecvTimeoutError::Closed);
            }
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }

    /// Closes the channel: future sends fail, receivers drain then observe
    /// closure. Wakes all waiting receivers.
    pub fn close(&self, ctx: &Ctx) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        let mut core = ctx.core().state.lock();
        for (t, w) in inner.recv_waiters.drain(..) {
            core.schedule_wake_now(t, w);
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Returns `true` if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }

    /// Returns `true` if the channel has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{us, Simulation};

    #[test]
    fn fifo_order_preserved() {
        let mut sim = Simulation::new(1);
        let cpu = sim.add_processor("m0");
        let ch = SimChannel::new();
        let tx = ch.clone();
        sim.spawn(cpu, "producer", move |ctx| {
            for i in 0..10u32 {
                tx.send(ctx, i).expect("open");
                ctx.sleep(us(1));
            }
        });
        let consumer = sim.spawn(cpu, "consumer", move |ctx| {
            for i in 0..10u32 {
                assert_eq!(ch.recv(ctx), Some(i));
            }
        });
        sim.run_until_finished(&consumer).expect("run");
    }

    #[test]
    fn recv_timeout_fires() {
        let mut sim = Simulation::new(1);
        let cpu = sim.add_processor("m0");
        let ch: SimChannel<u8> = SimChannel::new();
        let h = sim.spawn(cpu, "t", move |ctx| {
            let r = ch.recv_timeout(ctx, us(100));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
            assert_eq!(ctx.now().as_micros_f64(), 100.0);
        });
        sim.run_until_finished(&h).expect("run");
    }

    #[test]
    fn recv_timeout_beats_timer_when_message_arrives() {
        let mut sim = Simulation::new(1);
        let cpu = sim.add_processor("m0");
        let ch = SimChannel::new();
        let tx = ch.clone();
        sim.spawn(cpu, "producer", move |ctx| {
            ctx.sleep(us(30));
            tx.send(ctx, 9u8).expect("open");
        });
        let h = sim.spawn(cpu, "t", move |ctx| {
            let r = ch.recv_timeout(ctx, us(100));
            assert_eq!(r, Ok(9));
            assert_eq!(ctx.now().as_micros_f64(), 30.0);
        });
        sim.run_until_finished(&h).expect("run");
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let mut sim = Simulation::new(1);
        let cpu = sim.add_processor("m0");
        let ch = SimChannel::new();
        let tx = ch.clone();
        let h = sim.spawn(cpu, "t", move |ctx| {
            tx.send(ctx, 1u8).expect("open");
            tx.close(ctx);
            assert_eq!(tx.send(ctx, 2), Err(SendError(2)));
            assert_eq!(ch.recv(ctx), Some(1));
            assert_eq!(ch.recv(ctx), None);
            assert_eq!(ch.recv_timeout(ctx, us(5)), Err(RecvTimeoutError::Closed));
        });
        sim.run_until_finished(&h).expect("run");
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let mut sim = Simulation::new(1);
        let cpu = sim.add_processor("m0");
        let ch: SimChannel<u8> = SimChannel::new();
        let tx = ch.clone();
        sim.spawn(cpu, "closer", move |ctx| {
            ctx.sleep(us(40));
            tx.close(ctx);
        });
        let h = sim.spawn(cpu, "t", move |ctx| {
            assert_eq!(ch.recv(ctx), None);
            assert_eq!(ctx.now().as_micros_f64(), 40.0);
        });
        sim.run_until_finished(&h).expect("run");
    }

    #[test]
    fn try_recv_and_len() {
        let mut sim = Simulation::new(1);
        let cpu = sim.add_processor("m0");
        let ch = SimChannel::new();
        let h = sim.spawn(cpu, "t", move |ctx| {
            assert!(ch.is_empty());
            assert_eq!(ch.try_recv(), None);
            ch.send(ctx, 5u8).expect("open");
            assert_eq!(ch.len(), 1);
            assert_eq!(ch.try_recv(), Some(5));
            assert!(!ch.is_closed());
        });
        sim.run_until_finished(&h).expect("run");
    }
}
