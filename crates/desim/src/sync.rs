//! Blocking synchronization primitives for simulated threads.
//!
//! These model *virtual-time* blocking. Regular `parking_lot`/`std` locks
//! must never be held across a simulated block (the scheduler would stall);
//! any state that must stay locked while a thread sleeps, computes, or waits
//! belongs under a [`SimMutex`].

use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::core::{shutdown_unwind_unless_panicking, ThreadId, WakeStatus};
use crate::Ctx;

struct MutexInner<T> {
    state: Mutex<MutexState>,
    data: Mutex<T>,
}

struct MutexState {
    locked: bool,
    owner: Option<ThreadId>,
    waiters: VecDeque<(ThreadId, u64)>,
}

/// A mutual-exclusion lock for simulated threads.
///
/// Clonable handle; all clones refer to the same lock. Lock acquisition is
/// FIFO. All operations take a [`Ctx`] because blocking and waking happen in
/// virtual time.
///
/// # Examples
///
/// ```
/// use desim::{Simulation, SimMutex, us};
///
/// let mut sim = Simulation::new(1);
/// let cpu = sim.add_processor("m0");
/// let counter = SimMutex::new(0u32);
/// for i in 0..3 {
///     let counter = counter.clone();
///     sim.spawn(cpu, &format!("worker{i}"), move |ctx| {
///         let mut g = counter.lock(ctx);
///         *g += 1;
///     });
/// }
/// sim.run().expect("run");
/// ```
pub struct SimMutex<T> {
    inner: Arc<MutexInner<T>>,
}

impl<T> Clone for SimMutex<T> {
    fn clone(&self) -> Self {
        SimMutex {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for SimMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("SimMutex")
            .field("locked", &st.locked)
            .finish()
    }
}

impl<T: Default> Default for SimMutex<T> {
    fn default() -> Self {
        SimMutex::new(T::default())
    }
}

impl<T> SimMutex<T> {
    /// Creates a new unlocked mutex holding `data`.
    pub fn new(data: T) -> Self {
        SimMutex {
            inner: Arc::new(MutexInner {
                state: Mutex::new(MutexState {
                    locked: false,
                    owner: None,
                    waiters: VecDeque::new(),
                }),
                data: Mutex::new(data),
            }),
        }
    }

    /// Acquires the lock, blocking the simulated thread until available.
    pub fn lock<'a>(&'a self, ctx: &'a Ctx) -> SimMutexGuard<'a, T> {
        let me = ctx.thread_id();
        let mut registered = false;
        loop {
            {
                let mut st = self.inner.state.lock();
                if registered && st.owner == Some(me) {
                    break; // the releaser handed the lock to us while we slept
                }
                if !st.locked {
                    st.locked = true;
                    st.owner = Some(me);
                    break;
                }
                assert_ne!(st.owner, Some(me), "SimMutex is not reentrant");
                let mut core = ctx.core().state.lock();
                let wid = core.prepare_block(me, "mutex");
                drop(core);
                st.waiters.push_back((me, wid));
                registered = true;
            }
            if ctx.yield_blocked() == WakeStatus::Shutdown {
                shutdown_unwind_unless_panicking();
                // Already unwinding (a destructor re-entered): best-effort
                // force-acquire so teardown can proceed.
                let mut st = self.inner.state.lock();
                st.locked = true;
                st.owner = Some(me);
                break;
            }
        }
        // In normal operation the data lock is always free once the simulated
        // lock has been granted (the previous guard released it first). Only
        // during teardown can it still be held by an unwinding owner.
        let data = self.inner.data.try_lock();
        assert!(
            data.is_some() || std::thread::panicking(),
            "SimMutex data lock unavailable outside teardown"
        );
        SimMutexGuard {
            mutex: self,
            ctx,
            data,
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock<'a>(&'a self, ctx: &'a Ctx) -> Option<SimMutexGuard<'a, T>> {
        let mut st = self.inner.state.lock();
        if st.locked {
            return None;
        }
        st.locked = true;
        st.owner = Some(ctx.thread_id());
        drop(st);
        Some(SimMutexGuard {
            mutex: self,
            ctx,
            data: Some(self.inner.data.lock()),
        })
    }

    fn unlock(&self, ctx: &Ctx) {
        let mut st = self.inner.state.lock();
        st.locked = false;
        st.owner = None;
        if let Some((t, w)) = st.waiters.pop_front() {
            // Hand-off: mark locked for the woken thread so nobody barges in.
            st.locked = true;
            st.owner = Some(t);
            ctx.core().state.lock().schedule_wake_now(t, w);
        }
    }
}

/// RAII guard for [`SimMutex`]; releases the lock when dropped.
pub struct SimMutexGuard<'a, T> {
    mutex: &'a SimMutex<T>,
    ctx: &'a Ctx,
    data: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T: fmt::Debug> fmt::Debug for SimMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimMutexGuard")
            .field("data", self.data.as_deref().expect("guard holds data"))
            .finish()
    }
}

impl<T> Deref for SimMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_deref().expect("guard holds data")
    }
}

impl<T> DerefMut for SimMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_deref_mut().expect("guard holds data")
    }
}

impl<T> Drop for SimMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.data.take();
        self.mutex.unlock(self.ctx);
    }
}

/// A condition variable for simulated threads, used with [`SimMutex`].
///
/// Waiting releases the associated mutex atomically with respect to the
/// single-runner simulation invariant, and re-acquires it before returning.
/// Waits may wake spuriously only in the sense that the awaited predicate
/// must be re-checked (standard condition-variable discipline).
#[derive(Clone)]
pub struct SimCondvar {
    waiters: Arc<Mutex<VecDeque<(ThreadId, u64)>>>,
}

impl fmt::Debug for SimCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCondvar")
            .field("waiters", &self.waiters.lock().len())
            .finish()
    }
}

impl Default for SimCondvar {
    fn default() -> Self {
        Self::new()
    }
}

impl SimCondvar {
    /// Creates a condition variable with no waiters.
    pub fn new() -> Self {
        SimCondvar {
            waiters: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Releases `guard`, waits for a notification, and re-acquires the mutex.
    pub fn wait<'a, T>(&self, ctx: &'a Ctx, guard: SimMutexGuard<'a, T>) -> SimMutexGuard<'a, T> {
        let mutex = guard.mutex;
        let me = ctx.thread_id();
        {
            let mut ws = self.waiters.lock();
            let wid = ctx.core().state.lock().prepare_block(me, "condvar");
            ws.push_back((me, wid));
        }
        drop(guard);
        if ctx.yield_blocked() == WakeStatus::Shutdown {
            shutdown_unwind_unless_panicking();
        }
        mutex.lock(ctx)
    }

    /// Wakes one waiter, if any. Returns `true` if a waiter was woken.
    pub fn notify_one(&self, ctx: &Ctx) -> bool {
        let mut ws = self.waiters.lock();
        if let Some((t, w)) = ws.pop_front() {
            ctx.core().state.lock().schedule_wake_now(t, w);
            true
        } else {
            false
        }
    }

    /// Wakes all waiters. Returns the number woken.
    pub fn notify_all(&self, ctx: &Ctx) -> usize {
        let mut ws = self.waiters.lock();
        let n = ws.len();
        let mut core = ctx.core().state.lock();
        for (t, w) in ws.drain(..) {
            core.schedule_wake_now(t, w);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{us, SimDuration, Simulation};

    #[test]
    fn mutex_serializes_critical_sections() {
        let mut sim = Simulation::new(7);
        let cpu = sim.add_processor("m0");
        let log = SimMutex::new(Vec::<(u32, u64)>::new());
        for i in 0..4u32 {
            let log = log.clone();
            sim.spawn(cpu, &format!("w{i}"), move |ctx| {
                let mut g = log.lock(ctx);
                let t0 = ctx.now().as_nanos();
                ctx.sleep(us(10)); // hold the lock across a block
                g.push((i, t0));
            });
        }
        sim.run().expect("run");
        // All four entered, strictly serialized 10us apart (FIFO order).
        let mut sim2 = Simulation::new(7);
        let cpu2 = sim2.add_processor("m0");
        let log2 = log.clone();
        let check = sim2.spawn(cpu2, "check", move |ctx| {
            let g = log2.lock(ctx);
            let entries = g.clone();
            assert_eq!(entries.len(), 4);
            for (idx, (i, t0)) in entries.iter().enumerate() {
                assert_eq!(*i as usize, idx);
                assert_eq!(*t0, idx as u64 * 10_000);
            }
        });
        sim2.run_until_finished(&check).expect("check run");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let mut sim = Simulation::new(1);
        let cpu = sim.add_processor("m0");
        let m = SimMutex::new(false);
        let cv = SimCondvar::new();
        let (m2, cv2) = (m.clone(), cv.clone());
        let waiter = sim.spawn(cpu, "waiter", move |ctx| {
            let mut g = m2.lock(ctx);
            while !*g {
                g = cv2.wait(ctx, g);
            }
            assert_eq!(ctx.now().as_micros_f64(), 50.0);
        });
        sim.spawn(cpu, "setter", move |ctx| {
            ctx.sleep(us(50));
            let mut g = m.lock(ctx);
            *g = true;
            cv.notify_one(ctx);
        });
        sim.run_until_finished(&waiter).expect("run");
    }

    #[test]
    fn notify_without_waiters_is_noop() {
        let mut sim = Simulation::new(1);
        let cpu = sim.add_processor("m0");
        let cv = SimCondvar::new();
        let h = sim.spawn(cpu, "t", move |ctx| {
            assert!(!cv.notify_one(ctx));
            assert_eq!(cv.notify_all(ctx), 0);
        });
        sim.run_until_finished(&h).expect("run");
    }

    #[test]
    fn try_lock_contention() {
        let mut sim = Simulation::new(1);
        let cpu = sim.add_processor("m0");
        let m = SimMutex::new(());
        let m2 = m.clone();
        let h = sim.spawn(cpu, "a", move |ctx| {
            let _g = m2.lock(ctx);
            ctx.sleep(us(100));
        });
        let h2 = sim.spawn(cpu, "b", move |ctx| {
            ctx.sleep(us(10));
            assert!(m.try_lock(ctx).is_none());
            ctx.sleep(us(200));
            assert!(m.try_lock(ctx).is_some());
        });
        sim.run_until_finished(&h).expect("run a");
        sim.run_until_finished(&h2).expect("run b");
        let _ = SimDuration::ZERO;
    }
}
