//! Hierarchical timer wheel: the far-tier store behind
//! [`crate::queue::EventQueue`].
//!
//! The far tier holds every event strictly later than the instant the clock
//! sits at. At fleet scale (ROADMAP item 1: 10k machines) that is thousands
//! of pending Poisson think-time timers and wire-propagation sleeps per
//! lane, and the old `BinaryHeap` paid an `O(log n)` sift over a
//! cache-hostile array on every one of them. The wheel makes the push and
//! the amortized pop `O(1)` in the pending-timer population:
//!
//! - [`LEVELS`] levels of [`SLOTS`] slots each, with power-of-two slot
//!   widths: level `l` slots are `2^(6l)` ns wide, so the wheel proper
//!   spans `2^36` ns ≈ 68.7 virtual seconds ahead of the cursor.
//! - Slot indexing is absolute (the tokio-style formulation): an event's
//!   level is the highest bit in which its time differs from the cursor
//!   (`elapsed`), divided into 6-bit digits; its slot is that 6-bit digit
//!   of the time itself. Per-level `u64` occupancy bitmaps make
//!   first-occupied-slot a `trailing_zeros`.
//! - Events beyond the wheel span land in an **overflow** binary heap
//!   ordered by the full `(time, tie, seq)` key. Overflow events never
//!   migrate into the wheel; they are popped straight off the heap when
//!   their instant arrives. A far tier only ever sees a handful of these
//!   (timeout guards, end-of-run horizons), so the heap stays tiny.
//!
//! # Exact pop order, not approximate expiry
//!
//! Real kernel wheels fire whole slots per tick and tolerate intra-slot
//! reordering. This one must not: the `(time, tie, seq)` total order is the
//! simulator's public invariant (see the `queue` module docs) and every
//! golden trace and chaos hash hangs off it. Exactness falls out of three
//! structural facts:
//!
//! 1. **Level-0 slots are single instants.** A level-0 slot is 1 ns wide,
//!    so once the minimum lives at level 0 the whole slot shares one `time`
//!    and draining it in `(tie, seq)` order — one `sort_unstable` at
//!    extraction — is full-key order.
//! 2. **Lower level ⇒ earlier time.** A resident's level is the highest
//!    bit it disagrees with the cursor on, and every resident is in the
//!    cursor's future, so level-`l` residents agree with the cursor above
//!    bit `6(l+1)` and exceed it at their own digit. Any level-`l` event
//!    therefore precedes any level-`m` event for `l < m`, and within one
//!    level lower slot index ⇒ earlier time range. The global minimum is
//!    always in the first occupied slot of the lowest occupied level.
//! 3. **Cascading preserves residency.** Advancing the cursor to the start
//!    of the first occupied slot of level `l > 0` and re-placing that
//!    slot's events moves each of them to some level `< l` (their times
//!    differ from the new cursor only below bit `6l`) and touches no other
//!    slot's residency (the cursor changed only in bits the other levels
//!    don't index). Each event cascades at most `LEVELS - 1` times in its
//!    lifetime, so the amortized pop cost is `O(1)`.
//!
//! # The cursor only moves at committed pops
//!
//! `elapsed` must never pass an instant the scheduler could still schedule
//! at. Pushes are bounded below by the near tier's `bucket_time`, so the
//! cursor is only advanced inside [`Wheel::take_min`] — the committed
//! extraction of the global minimum instant, which is exactly the moment
//! `bucket_time` jumps to that instant. Peeks never cascade: the earliest
//! pending time is kept in a cache (`min_time`) maintained on push and
//! recomputed — by scanning the one slot that must contain the minimum —
//! only when an extraction empties it.

use std::collections::{BinaryHeap, VecDeque};

use crate::queue::Event;
use crate::time::SimTime;

/// log2 of the slots per level; a level's slot covers `2^(SLOT_BITS * l)` ns.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; deeper times go to the overflow heap.
const LEVELS: usize = 6;
/// Bits of virtual time the wheel proper can index ahead of the cursor.
const SPAN_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// "Wheel proper empty" sentinel for the cached minimum.
const NO_MIN: u64 = u64::MAX;

pub(crate) struct Wheel {
    /// Depth-1 fast path: when the far tier holds exactly one event it
    /// lives here, untouched by slot filing. A solitary pending timer is
    /// the commonest far-tier state outside fleet worlds (one sleeper
    /// re-arming, one timeout guard), and the old 1-element `BinaryHeap`
    /// was nearly free — this keeps it that way. Invariant:
    /// `single.is_some()` ⇒ the wheel proper and the overflow heap are
    /// empty (`len == 1`).
    single: Option<Event>,
    /// The cursor: a committed lower bound (in ns) on every resident's
    /// time, and the reference point of the level/slot indexing. Advances
    /// only in [`Wheel::take_min`].
    elapsed: u64,
    /// Per-level occupancy bitmap: bit `s` set ⇔ `slot[l][s]` non-empty.
    occupied: [u64; LEVELS],
    /// `LEVELS × SLOTS` FIFO vectors, row-major by level.
    slots: Box<[Vec<Event>]>,
    /// Far-future events (beyond `elapsed + 2^SPAN_BITS`'s shared prefix),
    /// full-key ordered. Never migrates into the wheel.
    overflow: BinaryHeap<Event>,
    /// Total events held (wheel proper + overflow).
    len: usize,
    /// Exact earliest wheel-proper time, [`NO_MIN`] when empty. Lets
    /// `peek_time` answer without cascading.
    min_time: u64,
    /// Reusable redistribution buffer, so cascades don't allocate.
    scratch: Vec<Event>,
    /// Lifetime pushes that landed in the wheel proper.
    pub(crate) wheel_pushes: u64,
    /// Lifetime pushes that landed in the overflow heap.
    pub(crate) overflow_pushes: u64,
    /// Lifetime slot redistributions (counted per slot, not per event).
    pub(crate) cascades: u64,
}

impl Wheel {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        Wheel {
            single: None,
            elapsed: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::with_capacity(cap.min(64)),
            len: 0,
            min_time: NO_MIN,
            scratch: Vec::new(),
            wheel_pushes: 0,
            overflow_pushes: 0,
            cascades: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The earliest pending time, without popping or cascading. Exact: the
    /// windowed driver publishes this as the lane's next-event time, so a
    /// lower bound would let pops cross a window edge.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        if let Some(s) = &self.single {
            return Some(s.time);
        }
        let over = self.overflow.peek().map_or(NO_MIN, |e| e.time.as_nanos());
        let min = self.min_time.min(over);
        (min != NO_MIN).then(|| SimTime::from_nanos(min))
    }

    pub(crate) fn push(&mut self, ev: Event) {
        let t = ev.time.as_nanos();
        debug_assert!(t > self.elapsed, "wheel events are strictly future");
        // Tier-routing counters record where the event belongs; the cursor
        // cannot move while `single` is held (any `take_min` empties it
        // first), so a later spill files it exactly where counted.
        if (t ^ self.elapsed) >> SPAN_BITS != 0 {
            self.overflow_pushes += 1;
        } else {
            self.wheel_pushes += 1;
        }
        if self.len == 0 {
            self.single = Some(ev);
            self.len = 1;
            return;
        }
        if let Some(prev) = self.single.take() {
            self.file(prev);
        }
        self.file(ev);
        self.len += 1;
    }

    /// Routes one event to the overflow heap or its wheel slot, maintaining
    /// the cached minimum. Counter-free: `push` accounts for tier routing.
    #[inline]
    fn file(&mut self, ev: Event) {
        let t = ev.time.as_nanos();
        if (t ^ self.elapsed) >> SPAN_BITS != 0 {
            self.overflow.push(ev);
        } else {
            self.place(ev);
            if t < self.min_time {
                self.min_time = t;
            }
        }
    }

    /// Files `ev` into the slot its residency invariant dictates: level =
    /// highest 6-bit digit in which its time differs from the cursor, slot =
    /// that digit of the time. Shared by `push` and the cascade loop (whose
    /// re-placed events never overflow: they only move down-level).
    #[inline]
    fn place(&mut self, ev: Event) {
        let t = ev.time.as_nanos();
        let x = t ^ self.elapsed;
        debug_assert_eq!(x >> SPAN_BITS, 0, "event beyond the wheel span");
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(ev);
    }

    /// Extracts **every** event at the global minimum instant, appending
    /// them to `out` in ascending `(tie, seq)` order, and returns that
    /// instant. This is the committed clock advance: the cursor moves here
    /// and nowhere else. Returns `None` when the far tier is empty.
    pub(crate) fn take_min(&mut self, out: &mut VecDeque<Event>) -> Option<SimTime> {
        debug_assert!(out.is_empty(), "draining into a non-empty buffer");
        if let Some(ev) = self.single.take() {
            // The sole resident is trivially the minimum; commit the cursor
            // to its instant, same as the slot-drain path below would.
            self.elapsed = ev.time.as_nanos();
            self.len = 0;
            let t = ev.time;
            out.push_back(ev);
            return Some(t);
        }
        let over = self.overflow.peek().map_or(NO_MIN, |e| e.time.as_nanos());
        let t = self.min_time.min(over);
        if t == NO_MIN {
            return None;
        }
        if self.min_time == t {
            self.extract_min_slot(out);
        }
        // The overflow heap can hold events at the same instant as wheel
        // residents (pushed in an earlier cursor epoch, before the wheel
        // span reached them). Heap pops at one instant ascend by (tie, seq);
        // merge them into the sorted slot drain.
        while self.overflow.peek().is_some_and(|e| e.time.as_nanos() == t) {
            let ev = self.overflow.pop().expect("peeked");
            self.len -= 1;
            let at = out.partition_point(|e| (e.tie, e.seq) < (ev.tie, ev.seq));
            out.insert(at, ev);
        }
        Some(SimTime::from_nanos(t))
    }

    /// Cascades until the minimum sits at level 0, then drains that slot —
    /// a single exact instant — sorted by `(tie, seq)`. Caller guarantees
    /// the wheel proper is non-empty.
    fn extract_min_slot(&mut self, out: &mut VecDeque<Event>) {
        loop {
            let level = (0..LEVELS)
                .find(|&l| self.occupied[l] != 0)
                .expect("cached min set but wheel empty");
            let slot = self.occupied[level].trailing_zeros() as usize;
            let mut batch = std::mem::take(&mut self.scratch);
            std::mem::swap(&mut batch, &mut self.slots[level * SLOTS + slot]);
            self.occupied[level] &= !(1u64 << slot);
            if level == 0 {
                // A level-0 slot is one exact instant: the cursor's 64-ns
                // line with the low digit replaced by the slot index.
                let t = (self.elapsed & !(SLOTS as u64 - 1)) | slot as u64;
                debug_assert_eq!(t, self.min_time, "first level-0 slot is the minimum");
                self.elapsed = t;
                self.len -= batch.len();
                batch.sort_unstable_by_key(|e| (e.tie, e.seq));
                out.extend(batch.drain(..));
                self.scratch = batch;
                self.min_time = self.recompute_min();
                return;
            }
            // Advance the cursor to the slot's start and redistribute: every
            // event here now differs from the cursor only below bit
            // `6 * level`, so each lands at a strictly lower level. Other
            // levels' residency is untouched — the cursor changed only in
            // bits this level and lower index.
            let shift = SLOT_BITS * level as u32;
            let below = (1u64 << (shift + SLOT_BITS)) - 1;
            self.elapsed = (self.elapsed & !below) | ((slot as u64) << shift);
            self.cascades += 1;
            for ev in batch.drain(..) {
                self.place(ev);
            }
            self.scratch = batch;
        }
    }

    /// Recomputes the cached minimum after an extraction emptied it. The
    /// minimum must live in the first occupied slot of the lowest occupied
    /// level (module docs, fact 2), so one slot scan suffices — no cascade,
    /// no cursor movement.
    fn recompute_min(&self) -> u64 {
        for level in 0..LEVELS {
            if self.occupied[level] != 0 {
                let slot = self.occupied[level].trailing_zeros() as usize;
                return self.slots[level * SLOTS + slot]
                    .iter()
                    .map(|e| e.time.as_nanos())
                    .min()
                    .expect("occupancy bit set on empty slot");
            }
        }
        NO_MIN
    }
}
