//! Internal scheduler state shared between the [`crate::Simulation`] driver
//! and the simulated threads.
//!
//! Exactly one party runs at a time: either the scheduler (inside
//! `Simulation::run*`) or a single simulated thread. Control is handed back
//! and forth through the **execution backend seam**: each simulated thread
//! owns a [`ThreadExec`] — a parked OS thread with a [`Conduit`] hand-off
//! cell ([`crate::Backend::OsThreads`]), or a stackful user-space fiber
//! switched with one register save/restore ([`crate::Backend::Fibers`]).
//! Everything above the seam — event queue, virtual clock, wake
//! generations, pick order, RNG draws — is backend-independent, which is
//! what makes the two backends bit-identical in observable behaviour.
//! Because of the strict alternation the global [`CoreState`] mutex is
//! never contended; it exists to satisfy the borrow checker and `Send`
//! bounds, not for parallelism.
//!
//! # Hot-path hand-off
//!
//! The scheduler is not the only party allowed to pop events. A thread that
//! blocks pops the next live event itself under the same lock acquisition
//! that would otherwise just publish its block: if the event wakes *itself*
//! (a timer that is already due — the common case for `sleep`) it simply
//! keeps running with **zero** switches of any kind; if it wakes another
//! thread it grants that thread directly — one park/unpark (OS backend) or
//! one user-space context switch (fiber backend) instead of the two of a
//! round trip through the scheduler. The scheduler only regains the turn
//! when the chain breaks: the queue drains, the event budget runs out, or a
//! thread finishes. Everything the scheduler observed per event before —
//! clock advance, event counts, stale-wake skips, trace emission — happens
//! identically inside [`CoreState::next_live`], which both parties and both
//! backends share, so virtual time and traces are bit-identical to the
//! scheduler-centric design.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::backend::Backend;
use crate::fiber;
use crate::queue::{Event, EventQueue};
use crate::time::{SimDuration, SimTime};
use crate::trace::{ArgVec, Layer, Phase, TraceEvent, Tracer};
use crate::Ctx;

/// Identifies a simulated thread within one [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub(crate) usize);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Sentinel thread id carried by cross-lane *injection events* (see
/// [`LaneInjector`]). Never a real thread: `next_live` intercepts it before
/// the wake table or the thread table would be indexed.
pub(crate) const INJECT_THREAD: ThreadId = ThreadId(usize::MAX);

/// Delivery hook of one cross-lane link, registered with its destination
/// lane (see `crate::shard`). When an injection event pops, the lane calls
/// `deliver_due` under its own state lock: the hook moves every value due
/// at `now` into its destination channel (scheduling receiver wakes exactly
/// as an in-lane `send` would) and returns the instant the next injection
/// event should fire at, if any — the caller queues it. This replaces the
/// per-link injector daemons: a cross-lane frame costs one queue pop
/// instead of a daemon wake, a channel hop, and a daemon re-block.
pub(crate) trait LaneInjector: Send + Sync {
    fn deliver_due(&self, st: &mut CoreState, now: SimTime) -> Option<SimTime>;
}

/// Identifies a simulated processor (one CPU) within one [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Why a blocked thread resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeStatus {
    /// A wake event fired for the registered wait.
    Woken,
    /// The simulation is shutting down; the thread must unwind.
    Shutdown,
}

/// Payload used to unwind simulated threads when the simulation is dropped.
pub(crate) struct ShutdownUnwind;

/// Unwinds the current simulated thread because the simulation is shutting
/// down. If the thread is already unwinding (a destructor re-entered a
/// blocking primitive), returns so the caller can produce a benign fallback
/// value instead of triggering a double panic.
///
/// On the fiber backend `std::thread::panicking()` is per *host* OS thread,
/// which is exact whenever the in-flight panic belongs to this fiber — the
/// scheduler shuts the simulation down before re-raising a simulated
/// thread's panic precisely so its own unwind never overlaps fiber teardown
/// (see [`Core::step`]).
pub(crate) fn shutdown_unwind_unless_panicking() {
    if !std::thread::panicking() {
        panic::panic_any(ShutdownUnwind);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadState {
    /// Waiting for a wake event (also the initial state before first run).
    Blocked,
    /// Currently executing (the scheduler is parked in `resume_and_wait`).
    Running,
    /// The thread body returned or unwound.
    Finished,
}

const TURN_WAIT: u8 = 0;
const TURN_RUN: u8 = 1;

/// Grant kinds carried through a [`Conduit`] or a fiber's grant cell: why
/// the thread was resumed. Replaces the post-wake `shutdown` re-check under
/// the state lock — the granter already knows, so the woken side pays zero
/// lock acquisitions.
pub(crate) const GRANT_RUN: u8 = 0;
pub(crate) const GRANT_SHUTDOWN: u8 = 1;

/// Whether this host has more than one hardware thread; probed once. On a
/// multicore box the hand-off partner can flip the turn while we spin, so a
/// short spin before parking skips the futex syscall on the common path. On
/// a single core spinning only burns the quantum the partner needs.
pub(crate) fn spin_before_park() -> bool {
    static MULTICORE: OnceLock<bool> = OnceLock::new();
    *MULTICORE.get_or_init(|| std::thread::available_parallelism().is_ok_and(|n| n.get() > 1))
}

/// Hand-off cell owned by one simulated thread (OS-thread backend).
///
/// The turn is a single atomic flipped with release/acquire ordering and the
/// waiting side parks its OS thread (`std::thread::park`), so a hand-off is
/// one store + one targeted `unpark`. Any party may grant the turn — the
/// scheduler or a directly-handing-off sibling thread. The owning side
/// registers its `Thread` handle before first waiting; a granter that runs
/// before the handle is registered skips the unpark, which is safe because
/// the registrant re-checks the turn after registering and never parks on a
/// turn it already holds. Stale unpark tokens (from a grant that raced a
/// non-parked partner) only cause one spurious loop iteration.
pub(crate) struct Conduit {
    /// [`TURN_WAIT`] or [`TURN_RUN`]; release/acquire hand-off.
    turn: AtomicU8,
    /// Why the last grant happened ([`GRANT_RUN`] / [`GRANT_SHUTDOWN`]).
    /// Written before the `turn` release-store, read after the acquire-load,
    /// so it needs no ordering of its own.
    kind: AtomicU8,
    /// OS-thread handle backing the simulated thread; set exactly once.
    thread: OnceLock<Thread>,
}

impl Conduit {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Conduit {
            turn: AtomicU8::new(TURN_WAIT),
            kind: AtomicU8::new(GRANT_RUN),
            thread: OnceLock::new(),
        })
    }

    #[inline]
    fn wait_run(&self) {
        if spin_before_park() {
            for _ in 0..128 {
                if self.turn.load(AtomicOrdering::Acquire) == TURN_RUN {
                    return;
                }
                std::hint::spin_loop();
            }
        }
        while self.turn.load(AtomicOrdering::Acquire) != TURN_RUN {
            std::thread::park();
        }
    }

    /// Gives the owning thread the turn. Callable from the scheduler or from
    /// another simulated thread performing a direct hand-off.
    pub(crate) fn grant(&self, kind: u8) {
        self.kind.store(kind, AtomicOrdering::Relaxed);
        self.turn.store(TURN_RUN, AtomicOrdering::Release);
        if let Some(t) = self.thread.get() {
            t.unpark();
        }
    }

    /// Owner side: give up the turn *before* granting it elsewhere, so a
    /// grant that comes straight back (a short hand-off chain) is not
    /// clobbered by a later store.
    #[inline]
    fn relinquish(&self) {
        self.turn.store(TURN_WAIT, AtomicOrdering::Release);
    }

    /// Owner side: wait until the scheduler gives us the first turn.
    pub(crate) fn wait_for_turn(&self) {
        let _ = self.thread.set(std::thread::current());
        self.wait_run();
    }

    /// Owner side: park until granted again; returns the grant kind.
    #[inline]
    fn wait_granted(&self) -> u8 {
        self.wait_run();
        self.kind.load(AtomicOrdering::Relaxed)
    }
}

/// The execution resource backing one simulated thread — the per-thread
/// half of the backend seam. Everything the scheduler does with it goes
/// through [`ThreadExec::target`] / [`Core::resume_and_wait`]; everything
/// the thread itself does goes through [`ExecRef`] / [`yield_blocked`].
pub(crate) enum ThreadExec {
    /// A parked OS thread handed control through a [`Conduit`].
    Os {
        conduit: Arc<Conduit>,
        os_handle: Option<std::thread::JoinHandle<()>>,
    },
    /// A stackful user-space fiber on the scheduler's own OS thread.
    Fiber(Box<fiber::Fiber>),
    /// Spawned during shutdown: no execution resource was ever created and
    /// the body never runs (the record is born `Finished`).
    Retired,
}

impl ThreadExec {
    /// The resumable address of this thread, for the scheduler side.
    ///
    /// Raw pointers instead of `Arc::clone`/`&Box`: the target must outlive
    /// the state-lock release in `step`/`yield_blocked`, which it does
    /// because thread records are never removed while the owning `Core` is
    /// alive, and both pointees (`Arc` payload, boxed fiber) are heap-stable
    /// across `threads` Vec reallocations. This saves two refcount RMWs per
    /// event on the hot path.
    fn target(&self) -> ResumeTarget {
        match self {
            ThreadExec::Os { conduit, .. } => ResumeTarget::Os(Arc::as_ptr(conduit)),
            ThreadExec::Fiber(f) => ResumeTarget::Fiber(&**f as *const fiber::Fiber),
            ThreadExec::Retired => unreachable!("retired threads are born Finished"),
        }
    }
}

/// A resumable thread address, as handed from the event queue to whichever
/// party (scheduler or yielding thread) performs the switch. See
/// [`ThreadExec::target`] for the lifetime argument.
#[derive(Clone, Copy)]
pub(crate) enum ResumeTarget {
    Os(*const Conduit),
    Fiber(*const fiber::Fiber),
}

/// A simulated thread's cached handle to its *own* execution resource, held
/// inside [`Ctx`] so blocking never re-fetches it from the thread table
/// under the state lock. Same lifetime argument as [`ResumeTarget`].
pub(crate) enum ExecRef {
    Os(Arc<Conduit>),
    Fiber(*const fiber::Fiber),
}

pub(crate) struct ThreadRecord {
    /// Shared so diagnostics and tracing can take a reference-counted copy
    /// instead of allocating a fresh `String` on hot paths.
    pub name: Arc<str>,
    pub proc: ProcId,
    /// Execution resource behind the backend seam.
    pub exec: ThreadExec,
    pub state: ThreadState,
    /// Monotonic token; a wake event only fires if its token matches.
    pub wait_id: u64,
    /// Diagnostic label describing what the thread is blocked on.
    pub blocked_on: &'static str,
    pub daemon: bool,
    pub joiners: Vec<(ThreadId, u64)>,
    pub panic: Option<String>,
}

/// Dense per-thread wake-generation slot, the cancellation index consulted
/// for every popped event.
///
/// `prepare_block` bumps `gen`, which *cancels* every wake still queued for
/// an older generation of this thread: they will be recognized as dead by a
/// single 16-byte load here — no `ThreadRecord` (several cache lines, cold
/// fields) is touched for them. The dead events themselves must stay in the
/// queue: each popped event advances the virtual clock and the event
/// counter, both of which are pinned by golden traces and chaos hashes, so
/// removing them eagerly would change observable time. Cancellation here
/// means "guaranteed not to resume anything, and cheap to skip".
#[derive(Clone, Copy)]
struct WakeSlot {
    /// Live wake generation (mirrors `ThreadRecord::wait_id`).
    gen: u64,
    /// True while the thread is blocked and generation `gen` may fire.
    waiting: bool,
}

/// The wake-generation table plus its stale-wake counter, owned by exactly
/// one [`CoreState`] — i.e. it lives *behind* the backend seam. Every
/// simulation instance, whatever its backend, counts its own cancelled
/// wakes; a process that runs an OS-thread simulation and a fiber
/// simulation side by side can never share or double-count this state.
pub(crate) struct WakeTable {
    slots: Vec<WakeSlot>,
    /// Dead wakes consumed so far (cancelled generations); diagnostics only.
    stale: u64,
}

impl WakeTable {
    fn new() -> WakeTable {
        WakeTable {
            slots: Vec::new(),
            stale: 0,
        }
    }

    /// Registers a freshly spawned thread (generation 0, armed for its
    /// start wake).
    fn push_live(&mut self) {
        self.slots.push(WakeSlot {
            gen: 0,
            waiting: true,
        });
    }

    /// Registers a thread spawned during shutdown: no wake may ever fire.
    fn push_retired(&mut self) {
        self.slots.push(WakeSlot {
            gen: 0,
            waiting: false,
        });
    }

    /// Arms generation `gen` for `thread` (called from `prepare_block`;
    /// bumping the generation is the cancellation point for older wakes).
    fn arm(&mut self, thread: ThreadId, gen: u64) {
        self.slots[thread.0] = WakeSlot { gen, waiting: true };
    }

    /// Disarms `thread` entirely (on finish/teardown).
    fn disarm(&mut self, thread: ThreadId) {
        self.slots[thread.0].waiting = false;
    }

    /// Consumes one popped event: `true` if it is the live wake for
    /// `thread` (disarming it), `false` if it is a cancelled generation
    /// (counted as stale). The event carries its generation truncated to
    /// `u32` (see [`Event`]), so the compare is exact modulo `2^32` —
    /// still deterministic, and a false match would need one thread to
    /// block exactly `2^32` times while a single wake stays in flight.
    fn consume(&mut self, thread: ThreadId, gen: u32) -> bool {
        let slot = &mut self.slots[thread.0];
        if slot.waiting && slot.gen as u32 == gen {
            slot.waiting = false;
            true
        } else {
            self.stale += 1;
            false
        }
    }

    pub(crate) fn stale(&self) -> u64 {
        self.stale
    }
}

pub(crate) struct ProcRecord {
    pub name: String,
    /// Thread currently occupying the CPU at thread level.
    pub holder: Option<ThreadId>,
    /// Last *thread-level* occupant; interrupt-level work does not update
    /// this, which is exactly why a kernel-space RPC reply resumes the
    /// blocked client without a context-switch charge.
    pub last_thread_holder: Option<ThreadId>,
    pub waiters: std::collections::VecDeque<(ThreadId, u64)>,
    /// Total interrupt-level CPU time stolen on this processor; thread-level
    /// `compute` calls extend themselves by the amount stolen during their
    /// occupancy.
    pub stolen_total: SimDuration,
    /// Cost charged when the CPU is granted to a different thread than
    /// `last_thread_holder`.
    pub switch_cost: SimDuration,
    pub busy: SimDuration,
    pub switches: u64,
    pub interrupt_time: SimDuration,
}

pub(crate) struct TraceEntry {
    pub time: SimTime,
    pub thread: Arc<str>,
    pub message: String,
}

/// What [`CoreState::next_live`] found at the head of the queue.
pub(crate) enum NextEvent {
    /// A live wake; the thread has been marked `Running` and traced.
    Live(ThreadId),
    /// The queue is empty.
    Drained,
    /// `events_processed` reached `max_events` (checked before every pop,
    /// including between dead-wake skips, exactly as the old per-iteration
    /// check did).
    LimitHit,
    /// The queue head sits at or past the current window limit (windowed
    /// parallel execution only; see `crate::shard`). The event stays
    /// queued — it belongs to a later window.
    WindowEdge,
}

pub(crate) struct CoreState {
    pub now: SimTime,
    seq: u64,
    queue: EventQueue,
    pub threads: Vec<ThreadRecord>,
    /// Wake-generation slots + stale counter, indexed like `threads`; see
    /// [`WakeTable`].
    pub wake: WakeTable,
    pub procs: Vec<ProcRecord>,
    pub events_processed: u64,
    /// Event budget; checked by both the scheduler and the thread-side
    /// hand-off fast path, so it lives with the rest of the shared state.
    pub max_events: Option<u64>,
    pub shutdown: bool,
    /// Cross-lane delivery hooks, indexed by the `wait_id` of injection
    /// events (see [`LaneInjector`]). Registered once per inbound link at
    /// construction; cleared by `initiate_shutdown` to break the reference
    /// cycle lane → injector → lane.
    pub(crate) injectors: Vec<Arc<dyn LaneInjector>>,
    pub rng: SmallRng,
    /// When `Some`, draws one tie-break value per scheduled wake, shuffling
    /// the pick order among same-instant ready threads (chaos testing). Kept
    /// separate from `rng` so enabling it does not disturb protocol-visible
    /// randomness, and `None` by default so it is zero-cost when off.
    pub perturb: Option<SmallRng>,
    pub trace: Option<Vec<TraceEntry>>,
    pub trace_cap: usize,
    /// Structured tracer; `Some` iff `Core::trace_on` is `true`.
    pub tracer: Option<Tracer>,
}

impl CoreState {
    /// Records a structured event on behalf of `thread`. Call sites must
    /// already hold the state lock; emission touches nothing the scheduler
    /// uses, so virtual time is unaffected.
    pub(crate) fn trace_event(
        &mut self,
        thread: ThreadId,
        layer: Layer,
        phase: Phase,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        if self.tracer.is_none() {
            return;
        }
        let time = self.now;
        let proc = self.threads[thread.0].proc;
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(TraceEvent {
                time,
                proc,
                thread,
                layer,
                phase,
                name,
                args: ArgVec::from_slice(args),
            });
        }
    }
    pub(crate) fn schedule_wake(&mut self, at: SimTime, thread: ThreadId, wait_id: u64) {
        debug_assert!(at >= self.now, "cannot schedule a wake in the past");
        let seq = self.seq;
        self.seq += 1;
        let tie = match self.perturb.as_mut() {
            Some(rng) => rng.random(),
            None => 0,
        };
        self.queue.push(Event::new(at, tie, seq, thread, wait_id));
    }

    /// Schedules a wake at the current instant (ordered after everything
    /// already scheduled for this instant).
    pub(crate) fn schedule_wake_now(&mut self, thread: ThreadId, wait_id: u64) {
        let now = self.now;
        self.schedule_wake(now, thread, wait_id);
    }

    /// Marks `thread` as blocked and returns the wait token a waker must use.
    ///
    /// Bumping the token is also the *cancellation point*: any wake still
    /// queued for an older generation of this thread is dead from here on
    /// (see [`WakeSlot`]).
    ///
    /// No state assertion: during shutdown a destructor may re-enter a
    /// blocking primitive while the record is already `Blocked`.
    pub(crate) fn prepare_block(&mut self, thread: ThreadId, label: &'static str) -> u64 {
        let rec = &mut self.threads[thread.0];
        rec.wait_id += 1;
        rec.state = ThreadState::Blocked;
        rec.blocked_on = label;
        let wid = rec.wait_id;
        self.wake.arm(thread, wid);
        self.trace_event(thread, Layer::Sched, Phase::Instant, "block", &[]);
        wid
    }

    /// Pops events until one is live, the queue drains, or the event budget
    /// runs out. Every popped event — dead or live — advances the clock and
    /// `events_processed` exactly as the scheduler always has, so virtual
    /// time and event counts are independent of *who* drives the queue (the
    /// scheduler or a blocking thread's hand-off fast path) and of which
    /// backend executes the threads.
    ///
    /// `window_limit` is the exclusive upper bound (in nanoseconds) on the
    /// instants this lane may process, `u64::MAX` for none — the caller
    /// reads it from [`Core::window_limit`], so the classic serial path
    /// pays one integer compare per pop and no lock traffic. Events at or
    /// past the bound stay queued; [`NextEvent::WindowEdge`] is reported
    /// instead (windowed parallel execution only; see `crate::shard`).
    pub(crate) fn next_live(&mut self, window_limit: u64) -> NextEvent {
        loop {
            if let Some(l) = self.max_events {
                if self.events_processed >= l {
                    return NextEvent::LimitHit;
                }
            }
            if window_limit != u64::MAX {
                match self.queue.peek_time() {
                    Some(t) if t.as_nanos() >= window_limit => return NextEvent::WindowEdge,
                    _ => {}
                }
            }
            let Some(ev) = self.queue.pop() else {
                return NextEvent::Drained;
            };
            debug_assert!(ev.time >= self.now);
            self.now = ev.time;
            self.events_processed += 1;
            let thread = ev.thread();
            if thread == INJECT_THREAD {
                // A cross-lane injection event: deliver everything due on
                // the link it belongs to, then queue its next firing. The
                // pop above already advanced the clock and the event count,
                // exactly like the injector-daemon wake it replaces.
                let idx = ev.wait_gen() as usize;
                let inj = Arc::clone(&self.injectors[idx]);
                if let Some(next) = inj.deliver_due(self, ev.time) {
                    self.schedule_injection(next, idx);
                }
                continue;
            }
            if self.wake.consume(thread, ev.wait_gen()) {
                self.threads[thread.0].state = ThreadState::Running;
                self.trace_event(thread, Layer::Sched, Phase::Instant, "wake", &[]);
                return NextEvent::Live(thread);
            }
            // Cancelled generation — one dense-slot load recognized it; no
            // thread record was touched. The clock tick above is deliberate
            // (pinned by golden traces and chaos hashes).
        }
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// This lane's queue accounting (see [`crate::QueueStats`]).
    pub(crate) fn queue_stats(&self) -> crate::queue::QueueStats {
        self.queue.stats()
    }

    /// The earliest queued instant on this lane (see `EventQueue::peek_time`).
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Schedules a cross-lane injection event for the link registered at
    /// `injector` (see [`LaneInjector`]). Mirrors [`CoreState::schedule_wake`]
    /// exactly — same monotone `seq`, same perturbation tie draw — so an
    /// injection event occupies the same `(time, tie, seq)` queue position
    /// the replaced injector daemon's wake event had.
    pub(crate) fn schedule_injection(&mut self, at: SimTime, injector: usize) {
        debug_assert!(at >= self.now, "cannot schedule an injection in the past");
        let seq = self.seq;
        self.seq += 1;
        let tie = match self.perturb.as_mut() {
            Some(rng) => rng.random(),
            None => 0,
        };
        debug_assert!(
            injector < u32::MAX as usize,
            "injector index overflows the packed event"
        );
        self.queue
            .push(Event::new(at, tie, seq, INJECT_THREAD, injector as u64));
    }

    /// Records the committed window floor backing `queue.rs`'s push
    /// assertion ("cross-shard injection never lands below finished
    /// history"). The floor passed here is the *global* committed horizon
    /// `T_min`; a lane whose own clock lags it keeps its weaker local bound
    /// instead, because lagging lanes legitimately schedule at their own
    /// `now`. Debug builds only — the floor is assertion-only state and
    /// release builds skip even the per-lane lock to maintain it.
    #[cfg(debug_assertions)]
    pub(crate) fn set_window_floor(&mut self, floor: SimTime) {
        let bound = floor.min(self.now);
        self.queue.set_floor(bound);
    }
}

pub(crate) struct Core {
    pub state: Mutex<CoreState>,
    /// Which execution backend this simulation's threads run on. Fixed at
    /// construction; see [`crate::Backend`] for the selection rules.
    backend: Backend,
    /// Usable stack size for fiber-backed threads.
    fiber_stack_size: usize,
    /// The scheduler's own saved context (fiber backend): where a yielding
    /// fiber switches to on a chain break, and what `resume_and_wait` saves
    /// into before switching a fiber in. Unused on the OS-thread backend.
    sched_ctx: fiber::ContextCell,
    /// Mirrors `CoreState::tracer.is_some()`; lives outside the mutex so
    /// disabled-tracing call sites pay one relaxed load and nothing else.
    pub trace_on: AtomicBool,
    /// Exclusive upper bound (nanoseconds) on the instants this lane may
    /// process in the current window; `u64::MAX` = unbounded (the classic
    /// serial mode and link-free windows). Lives outside the mutex so the
    /// windowed driver can set every lane's bound without a single lock
    /// acquisition; the window gate's release/acquire edges order the
    /// stores against runner reads, and within one turn plain program order
    /// does (strict alternation).
    pub(crate) window_limit: AtomicU64,
    /// Index of a simulated thread whose body panicked (`usize::MAX` =
    /// none). With direct hand-off chains the thread that yields back to the
    /// scheduler is not necessarily the one the scheduler resumed, so the
    /// flag must carry *who* panicked.
    panicked_tid: AtomicUsize,
    /// True when the scheduler holds the turn; flipped with release/acquire
    /// ordering like the per-thread conduits. A yielding thread that cannot
    /// continue the hand-off chain stores `true` and unparks `sched_thread`.
    /// OS-thread backend only; fibers switch into `sched_ctx` instead.
    sched_turn: AtomicBool,
    /// OS-thread handle of the scheduler side. Re-registered on every
    /// `resume_and_wait` because the `Simulation` may move between OS
    /// threads across runs; the lock is never contended (strict
    /// alternation), so it costs one CAS.
    sched_thread: Mutex<Option<Thread>>,
}

const NO_PANIC: usize = usize::MAX;

/// How [`Core::step`] left the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepResult {
    /// One or more threads were resumed (a hand-off chain may have run many
    /// events) and the turn came back to the scheduler.
    Progress,
    /// The event queue is empty.
    Drained,
    /// The `stop_on` thread has finished.
    TargetFinished,
    /// `events_processed` reached the configured limit.
    LimitExceeded,
    /// The next event belongs to a later window (windowed execution only).
    WindowEdge,
}

impl Core {
    /// `queue_capacity` is the expected peak pending-event population of
    /// this lane (the `expected_threads` builder hint; boot schedules one
    /// start wake per thread, all at the same instant). Floored at the
    /// historical 256 default so un-hinted worlds lose nothing.
    pub(crate) fn new(
        seed: u64,
        backend: Backend,
        fiber_stack_size: usize,
        queue_capacity: usize,
    ) -> Arc<Core> {
        Arc::new(Core {
            state: Mutex::new(CoreState {
                now: SimTime::ZERO,
                seq: 0,
                queue: EventQueue::with_capacity(queue_capacity.max(256)),
                threads: Vec::new(),
                wake: WakeTable::new(),
                procs: Vec::new(),
                events_processed: 0,
                max_events: None,
                shutdown: false,
                injectors: Vec::new(),
                rng: SmallRng::seed_from_u64(seed),
                perturb: None,
                trace: None,
                trace_cap: 100_000,
                tracer: None,
            }),
            backend,
            fiber_stack_size,
            sched_ctx: fiber::ContextCell::new(),
            trace_on: AtomicBool::new(false),
            window_limit: AtomicU64::new(u64::MAX),
            panicked_tid: AtomicUsize::new(NO_PANIC),
            sched_turn: AtomicBool::new(true),
            sched_thread: Mutex::new(None),
        })
    }

    /// The execution backend this simulation was built with.
    pub(crate) fn backend(&self) -> Backend {
        self.backend
    }

    /// True if structured tracing is enabled (one relaxed atomic load).
    #[inline]
    pub(crate) fn tracing_enabled(&self) -> bool {
        self.trace_on.load(AtomicOrdering::Relaxed)
    }

    pub(crate) fn add_processor(self: &Arc<Self>, name: &str, switch_cost: SimDuration) -> ProcId {
        let mut st = self.state.lock();
        let id = ProcId(st.procs.len());
        st.procs.push(ProcRecord {
            name: name.to_owned(),
            holder: None,
            last_thread_holder: None,
            waiters: std::collections::VecDeque::new(),
            stolen_total: SimDuration::ZERO,
            switch_cost,
            busy: SimDuration::ZERO,
            switches: 0,
            interrupt_time: SimDuration::ZERO,
        });
        id
    }

    /// Thread side (OS backend): the calling simulated thread hands the turn
    /// back to the scheduler (chain break: drain, budget, or thread exit).
    pub(crate) fn wake_scheduler(&self) {
        self.sched_turn.store(true, AtomicOrdering::Release);
        if let Some(t) = self.sched_thread.lock().as_ref() {
            t.unpark();
        }
    }

    /// Scheduler side: give `target` the turn and wait until some thread
    /// hands the turn back (possibly after a long direct hand-off chain).
    ///
    /// OS backend: grant the conduit and park. Fiber backend: stage the
    /// grant kind and perform one user-space context switch; the call
    /// returns when any fiber switches back into `sched_ctx`.
    fn resume_and_wait(&self, target: ResumeTarget, kind: u8) {
        match target {
            ResumeTarget::Os(conduit) => {
                // SAFETY: see `ThreadExec::target`.
                let conduit = unsafe { &*conduit };
                *self.sched_thread.lock() = Some(std::thread::current());
                self.sched_turn.store(false, AtomicOrdering::Release);
                conduit.grant(kind);
                if spin_before_park() {
                    for _ in 0..128 {
                        if self.sched_turn.load(AtomicOrdering::Acquire) {
                            return;
                        }
                        std::hint::spin_loop();
                    }
                }
                while !self.sched_turn.load(AtomicOrdering::Acquire) {
                    std::thread::park();
                }
            }
            ResumeTarget::Fiber(f) => {
                // SAFETY: see `ThreadExec::target`; strict alternation makes
                // the save-slot traffic race-free (module docs in `fiber`).
                unsafe {
                    (*f).set_grant(kind);
                    fiber::switch(self.sched_ctx.slot(), (*f).sp_slot());
                }
            }
        }
    }

    /// Spawns a simulated thread; shared implementation behind
    /// `Simulation::spawn*` and `Ctx::spawn*`.
    pub(crate) fn spawn_thread<F>(
        self: &Arc<Self>,
        proc: ProcId,
        name: &str,
        daemon: bool,
        f: F,
    ) -> ThreadId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        match self.backend {
            Backend::OsThreads => self.spawn_os_thread(proc, name, daemon, f),
            Backend::Fibers => self.spawn_fiber(proc, name, daemon, f),
        }
    }

    /// Registers the bookkeeping every new thread shares: the record, its
    /// wake slot, and (unless the simulation is shutting down, in which
    /// case the record is born `Finished` and the body never runs) the
    /// spawn trace event and start wake. Returns `(tid, live)`.
    fn register_thread(
        st: &mut CoreState,
        proc: ProcId,
        name: &str,
        daemon: bool,
        exec: ThreadExec,
    ) -> (ThreadId, bool) {
        assert!(
            proc.0 < st.procs.len(),
            "spawn: unknown processor {proc}; call add_processor first"
        );
        let tid = ThreadId(st.threads.len());
        let live = !st.shutdown;
        st.threads.push(ThreadRecord {
            name: Arc::from(name),
            proc,
            exec,
            state: if live {
                ThreadState::Blocked
            } else {
                ThreadState::Finished
            },
            wait_id: 0,
            blocked_on: "start",
            daemon,
            joiners: Vec::new(),
            panic: None,
        });
        if live {
            st.wake.push_live();
            st.trace_event(tid, Layer::Sched, Phase::Instant, "spawn", &[]);
            st.schedule_wake_now(tid, 0);
        } else {
            st.wake.push_retired();
        }
        (tid, live)
    }

    fn spawn_os_thread<F>(
        self: &Arc<Self>,
        proc: ProcId,
        name: &str,
        daemon: bool,
        f: F,
    ) -> ThreadId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let conduit = Conduit::new();
        let (tid, live) = {
            let mut st = self.state.lock();
            Self::register_thread(
                &mut st,
                proc,
                name,
                daemon,
                ThreadExec::Os {
                    conduit: Arc::clone(&conduit),
                    os_handle: None,
                },
            )
        };
        if !live {
            return tid;
        }

        let core = Arc::clone(self);
        let thread_conduit = Arc::clone(&conduit);
        let os_name = format!("sim-{name}");
        let handle = std::thread::Builder::new()
            .name(os_name)
            .spawn(move || {
                thread_conduit.wait_for_turn();
                let panic_msg = run_thread_body(&core, tid, f);
                finish_thread(&core, tid, panic_msg);
                // Exit always returns the turn to the scheduler — never a
                // direct hand-off — so `stop_on` and panic checks cannot be
                // bypassed by a chain.
                thread_conduit.relinquish();
                core.wake_scheduler();
            })
            .expect("failed to spawn OS thread backing a simulated thread");

        if let ThreadExec::Os { os_handle, .. } = &mut self.state.lock().threads[tid.0].exec {
            *os_handle = Some(handle);
        }
        tid
    }

    fn spawn_fiber<F>(self: &Arc<Self>, proc: ProcId, name: &str, daemon: bool, f: F) -> ThreadId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let mut st = self.state.lock();
        if st.shutdown {
            // Never build a fiber during teardown: its entry closure would
            // hold an `Arc<Core>` in a cycle nothing is left to break.
            let (tid, _) = Self::register_thread(&mut st, proc, name, daemon, ThreadExec::Retired);
            return tid;
        }
        let core = Arc::clone(self);
        let tid_for_entry = ThreadId(st.threads.len());
        let entry: fiber::EntryFn = Box::new(move || {
            let panic_msg = run_thread_body(&core, tid_for_entry, f);
            finish_thread(&core, tid_for_entry, panic_msg);
            // Return the scheduler slot and drop every capture (notably the
            // `Arc<Core>`) *before* the final switch-out, so a finished
            // fiber's dead stack keeps nothing alive. The slot stays valid:
            // the driving `Simulation` owns its own `Arc<Core>`.
            let slot = core.sched_ctx.slot();
            drop(core);
            slot
        });
        let fiber = fiber::Fiber::new(self.fiber_stack_size, entry);
        let (tid, _) = Self::register_thread(&mut st, proc, name, daemon, ThreadExec::Fiber(fiber));
        debug_assert_eq!(tid, tid_for_entry);
        tid
    }

    /// Advances the simulation by (at least) one thread resumption: pops
    /// events — skipping cancelled wakes without releasing the state lock —
    /// until one resumes a thread, the queue drains, `stop_on` finishes, or
    /// the event budget runs out. The resumed thread may keep the event loop
    /// going through direct hand-offs (see the module docs); the scheduler
    /// waits until the chain breaks.
    ///
    /// # Panics
    ///
    /// Propagates panics from simulated threads.
    pub(crate) fn step(self: &Arc<Self>, stop_on: Option<ThreadId>) -> StepResult {
        let window_limit = self.window_limit.load(AtomicOrdering::Relaxed);
        let target = {
            let mut st = self.state.lock();
            if let Some(t) = stop_on {
                if st.threads[t.0].state == ThreadState::Finished {
                    return StepResult::TargetFinished;
                }
            }
            match st.next_live(window_limit) {
                NextEvent::Drained => return StepResult::Drained,
                NextEvent::LimitHit => return StepResult::LimitExceeded,
                NextEvent::WindowEdge => return StepResult::WindowEdge,
                NextEvent::Live(tid) => st.threads[tid.0].exec.target(),
            }
        };
        self.resume_and_wait(target, GRANT_RUN);
        if self.panicked_tid.load(AtomicOrdering::Acquire) != NO_PANIC {
            let panicker = self.panicked_tid.swap(NO_PANIC, AtomicOrdering::AcqRel);
            let panic_info = {
                let mut st = self.state.lock();
                let rec = &mut st.threads[panicker];
                rec.panic.take().map(|msg| (Arc::clone(&rec.name), msg))
            };
            if let Some((name, msg)) = panic_info {
                // Tear the simulation down *before* unwinding the scheduler:
                // fibers resumed for shutdown from an already-panicking host
                // thread would observe `std::thread::panicking()` and take
                // benign returns instead of `ShutdownUnwind`. Shutting down
                // first unwinds every remaining thread cleanly on both
                // backends; the later `Drop` shutdown becomes a no-op.
                self.initiate_shutdown();
                panic!("simulated thread '{name}' panicked: {msg}");
            }
        }
        StepResult::Progress
    }

    /// Registers a cross-lane delivery hook for this lane and returns the
    /// index injection events must carry in their `wait_id`.
    pub(crate) fn register_injector(self: &Arc<Self>, inj: Arc<dyn LaneInjector>) -> usize {
        let mut st = self.state.lock();
        st.injectors.push(inj);
        st.injectors.len() - 1
    }

    pub(crate) fn initiate_shutdown(self: &Arc<Self>) {
        {
            let mut st = self.state.lock();
            st.shutdown = true;
            // Each injector holds an `Arc` of this core (its destination);
            // dropping the registrations breaks the cycle so the cores can
            // actually be freed when the `Simulation` goes away.
            st.injectors.clear();
        }
        // Round-robin resume every unfinished thread until all have unwound.
        // A destructor may block again during unwinding (it receives benign
        // fallback values), so several rounds can be needed.
        for _ in 0..64 {
            let pending: Vec<ResumeTarget> = {
                let st = self.state.lock();
                st.threads
                    .iter()
                    .filter(|t| t.state != ThreadState::Finished)
                    .map(|t| t.exec.target())
                    .collect()
            };
            if pending.is_empty() {
                break;
            }
            for target in pending {
                self.resume_and_wait(target, GRANT_SHUTDOWN);
            }
        }
        let handles: Vec<_> = {
            let mut st = self.state.lock();
            st.threads
                .iter_mut()
                .filter_map(|t| match &mut t.exec {
                    ThreadExec::Os { os_handle, .. } => os_handle.take(),
                    _ => None,
                })
                .collect()
        };
        for h in handles {
            let _ = h.join();
        }
        // Fiber stacks are released when the thread records drop with the
        // `Core` itself; after the rounds above every fiber has run its
        // entry to completion, so no stack holds live frames (or `Arc`s).
    }
}

/// Runs a simulated thread's body under `catch_unwind`, unless the
/// simulation began shutting down before the body first ran. Returns the
/// panic message for real panics (`ShutdownUnwind` is the expected teardown
/// path and reports nothing). Shared by both backends.
fn run_thread_body<F>(core: &Arc<Core>, tid: ThreadId, f: F) -> Option<String>
where
    F: FnOnce(&Ctx) + Send + 'static,
{
    let run_body = !core.state.lock().shutdown;
    let mut panic_msg = None;
    if run_body {
        let ctx = Ctx::new(Arc::clone(core), tid);
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
        if let Err(payload) = result {
            if !payload.is::<ShutdownUnwind>() {
                // `&*payload`: borrow the contents, not the Box (a
                // `&Box<dyn Any>` would unsize to `&dyn Any` *as a Box* and
                // every downcast would miss).
                panic_msg = Some(payload_to_string(&*payload));
            }
        }
    }
    panic_msg
}

/// Records a thread's exit: panic flag, wake disarm, `Finished` state, and
/// joiner wakes. Shared by both backends.
fn finish_thread(core: &Core, tid: ThreadId, panic_msg: Option<String>) {
    let mut st = core.state.lock();
    if panic_msg.is_some() {
        core.panicked_tid.store(tid.0, AtomicOrdering::Release);
    }
    st.wake.disarm(tid);
    let joiners = {
        let rec = &mut st.threads[tid.0];
        rec.state = ThreadState::Finished;
        rec.panic = panic_msg;
        std::mem::take(&mut rec.joiners)
    };
    for (jt, jw) in joiners {
        st.schedule_wake_now(jt, jw);
    }
}

/// Thread-side blocking yield: the other half of the hand-off fast path.
///
/// Lives here (not in `ctx.rs`) so all turn-protocol code sits next to
/// [`Conduit`], [`fiber`] and [`Core::resume_and_wait`]. Called by
/// `Ctx::yield_blocked` after `prepare_block` + wake registration.
///
/// The branch structure — shutdown check, then one `next_live` call, then
/// self-wake / direct grant / chain break — is shared verbatim by both
/// backends, so the *order* of queue pops, RNG draws and trace events (and
/// with it every golden hash) cannot depend on the backend; only the
/// switch mechanism at the leaves differs.
pub(crate) fn yield_blocked(core: &Core, tid: ThreadId, exec: &ExecRef) -> WakeStatus {
    enum Next {
        /// Break the chain; the scheduler decides (drain, budget, shutdown).
        Sched,
        /// Our own wake was the queue head: keep running, zero switches.
        SelfWake,
        /// Hand the turn straight to the woken thread: one switch.
        Grant(ResumeTarget),
    }
    let window_limit = core.window_limit.load(AtomicOrdering::Relaxed);
    let next = {
        let mut st = core.state.lock();
        if st.shutdown {
            // Tear-down in progress: never yield again (the scheduler is
            // gone); let the caller unwind or return a benign value.
            return WakeStatus::Shutdown;
        }
        match st.next_live(window_limit) {
            // A window edge breaks the hand-off chain exactly like a drain:
            // the next event belongs to a later window and only the driver
            // may open it.
            NextEvent::Drained | NextEvent::LimitHit | NextEvent::WindowEdge => Next::Sched,
            NextEvent::Live(t) if t == tid => Next::SelfWake,
            NextEvent::Live(t) => Next::Grant(st.threads[t.0].exec.target()),
        }
    };
    match (next, exec) {
        (Next::SelfWake, _) => WakeStatus::Woken,
        (Next::Grant(target), ExecRef::Os(conduit)) => {
            conduit.relinquish();
            match target {
                // SAFETY: thread records (and their conduit Arcs / fiber
                // boxes) are never removed while the core is alive; see
                // `ThreadExec::target`.
                ResumeTarget::Os(c) => unsafe { (*c).grant(GRANT_RUN) },
                ResumeTarget::Fiber(_) => {
                    unreachable!("fiber target under the os-threads backend")
                }
            }
            match conduit.wait_granted() {
                GRANT_SHUTDOWN => WakeStatus::Shutdown,
                _ => WakeStatus::Woken,
            }
        }
        (Next::Grant(target), ExecRef::Fiber(me)) => {
            match target {
                ResumeTarget::Fiber(next_fiber) => {
                    // SAFETY: same lifetime argument as above; the switch
                    // hands this OS thread to `next_fiber` and returns when
                    // someone grants us again.
                    unsafe {
                        (*next_fiber).set_grant(GRANT_RUN);
                        fiber::switch((**me).sp_slot(), (*next_fiber).sp_slot());
                    }
                }
                ResumeTarget::Os(_) => unreachable!("os target under the fiber backend"),
            }
            match unsafe { (**me).grant() } {
                GRANT_SHUTDOWN => WakeStatus::Shutdown,
                _ => WakeStatus::Woken,
            }
        }
        (Next::Sched, ExecRef::Os(conduit)) => {
            conduit.relinquish();
            core.wake_scheduler();
            match conduit.wait_granted() {
                GRANT_SHUTDOWN => WakeStatus::Shutdown,
                _ => WakeStatus::Woken,
            }
        }
        (Next::Sched, ExecRef::Fiber(me)) => {
            // SAFETY: as above; the scheduler context is suspended inside
            // `resume_and_wait` (strict alternation), so its slot is valid.
            unsafe {
                fiber::switch((**me).sp_slot(), core.sched_ctx.slot());
            }
            match unsafe { (**me).grant() } {
                GRANT_SHUTDOWN => WakeStatus::Shutdown,
                _ => WakeStatus::Woken,
            }
        }
    }
}

pub(crate) fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Installs a process-wide panic hook that silences the internal
/// [`ShutdownUnwind`] payload used to tear simulated threads down.
pub(crate) fn install_quiet_shutdown_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ShutdownUnwind>() {
                return;
            }
            prev(info);
        }));
    });
}
