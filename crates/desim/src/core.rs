//! Internal scheduler state shared between the [`crate::Simulation`] driver
//! and the simulated threads.
//!
//! Exactly one party runs at a time: either the scheduler (inside
//! `Simulation::run*`) or a single simulated thread. Control is handed back
//! and forth through a per-thread [`Conduit`]. Because of this strict
//! alternation the global [`CoreState`] mutex is never contended; it exists
//! to satisfy the borrow checker and `Send` bounds, not for parallelism.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::time::{SimDuration, SimTime};
use crate::trace::{ArgVec, Layer, Phase, TraceEvent, Tracer};
use crate::Ctx;

/// Identifies a simulated thread within one [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub(crate) usize);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies a simulated processor (one CPU) within one [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Why a blocked thread resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeStatus {
    /// A wake event fired for the registered wait.
    Woken,
    /// The simulation is shutting down; the thread must unwind.
    Shutdown,
}

/// Payload used to unwind simulated threads when the simulation is dropped.
pub(crate) struct ShutdownUnwind;

/// Unwinds the current simulated thread because the simulation is shutting
/// down. If the thread is already unwinding (a destructor re-entered a
/// blocking primitive), returns so the caller can produce a benign fallback
/// value instead of triggering a double panic.
pub(crate) fn shutdown_unwind_unless_panicking() {
    if !std::thread::panicking() {
        panic::panic_any(ShutdownUnwind);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadState {
    /// Waiting for a wake event (also the initial state before first run).
    Blocked,
    /// Currently executing (the scheduler is parked in `resume_and_wait`).
    Running,
    /// The thread body returned or unwound.
    Finished,
}

const TURN_SCHEDULER: u8 = 0;
const TURN_THREAD: u8 = 1;

/// Whether this host has more than one hardware thread; probed once. On a
/// multicore box the hand-off partner can flip the turn while we spin, so a
/// short spin before parking skips the futex syscall on the common path. On
/// a single core spinning only burns the quantum the partner needs.
fn spin_before_park() -> bool {
    static MULTICORE: OnceLock<bool> = OnceLock::new();
    *MULTICORE.get_or_init(|| std::thread::available_parallelism().is_ok_and(|n| n.get() > 1))
}

/// Hand-off cell between the scheduler and one simulated thread.
///
/// The turn is a single atomic flipped with release/acquire ordering and the
/// waiting side parks its OS thread (`std::thread::park`), so a hand-off is
/// one store + one targeted `unpark` instead of the previous
/// Mutex+Condvar ping-pong (lock, broadcast, re-lock on wake). Each side
/// registers its `Thread` handle before first waiting; a granter that runs
/// before the handle is registered skips the unpark, which is safe because
/// the registrant re-checks the turn after registering and never parks on a
/// turn it already holds. Stale unpark tokens (from a grant that raced a
/// non-parked partner) only cause one spurious loop iteration.
pub(crate) struct Conduit {
    /// [`TURN_SCHEDULER`] or [`TURN_THREAD`]; release/acquire hand-off.
    turn: AtomicU8,
    /// OS-thread handle of the scheduler side. Re-registered on every
    /// `resume_and_wait` because the `Simulation` may move between OS
    /// threads across runs; the lock is never contended (strict
    /// alternation), so it costs one CAS.
    sched: Mutex<Option<Thread>>,
    /// OS-thread handle backing the simulated thread; set exactly once.
    thread: OnceLock<Thread>,
}

impl Conduit {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Conduit {
            turn: AtomicU8::new(TURN_SCHEDULER),
            sched: Mutex::new(None),
            thread: OnceLock::new(),
        })
    }

    #[inline]
    fn wait_until(&self, want: u8) {
        if spin_before_park() {
            for _ in 0..128 {
                if self.turn.load(AtomicOrdering::Acquire) == want {
                    return;
                }
                std::hint::spin_loop();
            }
        }
        while self.turn.load(AtomicOrdering::Acquire) != want {
            std::thread::park();
        }
    }

    /// Scheduler side: give the thread the turn and wait until it yields back.
    pub(crate) fn resume_and_wait(&self) {
        *self.sched.lock() = Some(std::thread::current());
        self.turn.store(TURN_THREAD, AtomicOrdering::Release);
        if let Some(t) = self.thread.get() {
            t.unpark();
        }
        self.wait_until(TURN_SCHEDULER);
    }

    /// Thread side: wait until the scheduler gives us the turn (initial start).
    pub(crate) fn wait_for_turn(&self) {
        let _ = self.thread.set(std::thread::current());
        self.wait_until(TURN_THREAD);
    }

    /// Thread side: yield the turn to the scheduler and wait to be resumed.
    pub(crate) fn yield_to_scheduler(&self) {
        self.turn.store(TURN_SCHEDULER, AtomicOrdering::Release);
        if let Some(t) = self.sched.lock().as_ref() {
            t.unpark();
        }
        self.wait_until(TURN_THREAD);
    }

    /// Thread side: final yield on exit; does not wait for another turn.
    pub(crate) fn final_yield(&self) {
        self.turn.store(TURN_SCHEDULER, AtomicOrdering::Release);
        if let Some(t) = self.sched.lock().as_ref() {
            t.unpark();
        }
    }
}

pub(crate) struct ThreadRecord {
    /// Shared so diagnostics and tracing can take a reference-counted copy
    /// instead of allocating a fresh `String` on hot paths.
    pub name: Arc<str>,
    pub proc: ProcId,
    pub conduit: Arc<Conduit>,
    pub state: ThreadState,
    /// Monotonic token; a wake event only fires if its token matches.
    pub wait_id: u64,
    /// Diagnostic label describing what the thread is blocked on.
    pub blocked_on: &'static str,
    pub daemon: bool,
    pub joiners: Vec<(ThreadId, u64)>,
    pub panic: Option<String>,
    pub os_handle: Option<std::thread::JoinHandle<()>>,
}

pub(crate) struct ProcRecord {
    pub name: String,
    /// Thread currently occupying the CPU at thread level.
    pub holder: Option<ThreadId>,
    /// Last *thread-level* occupant; interrupt-level work does not update
    /// this, which is exactly why a kernel-space RPC reply resumes the
    /// blocked client without a context-switch charge.
    pub last_thread_holder: Option<ThreadId>,
    pub waiters: VecDeque<(ThreadId, u64)>,
    /// Total interrupt-level CPU time stolen on this processor; thread-level
    /// `compute` calls extend themselves by the amount stolen during their
    /// occupancy.
    pub stolen_total: SimDuration,
    /// Cost charged when the CPU is granted to a different thread than
    /// `last_thread_holder`.
    pub switch_cost: SimDuration,
    pub busy: SimDuration,
    pub switches: u64,
    pub interrupt_time: SimDuration,
}

struct Event {
    time: SimTime,
    /// Perturbation tie-break: 0 unless schedule perturbation is enabled, in
    /// which case it is a per-event draw from a dedicated seeded RNG. It is
    /// ordered *after* `time` and *before* `seq`, so virtual time is never
    /// violated — only the pick order among same-instant wakes is shuffled.
    tie: u64,
    seq: u64,
    thread: ThreadId,
    wait_id: u64,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        // Must agree with `Ord::cmp` below: compare the full
        // (time, tie, seq) key, not just (time, seq).
        (self.time, self.tie, self.seq) == (other.time, other.tie, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, tie, seq)
        // pops first. With perturbation off every `tie` is 0 and the order
        // degenerates to the historical (time, seq) FIFO.
        (other.time, other.tie, other.seq).cmp(&(self.time, self.tie, self.seq))
    }
}

pub(crate) struct TraceEntry {
    pub time: SimTime,
    pub thread: Arc<str>,
    pub message: String,
}

pub(crate) struct CoreState {
    pub now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event>,
    pub threads: Vec<ThreadRecord>,
    pub procs: Vec<ProcRecord>,
    pub events_processed: u64,
    pub shutdown: bool,
    pub rng: SmallRng,
    /// When `Some`, draws one tie-break value per scheduled wake, shuffling
    /// the pick order among same-instant ready threads (chaos testing). Kept
    /// separate from `rng` so enabling it does not disturb protocol-visible
    /// randomness, and `None` by default so it is zero-cost when off.
    pub perturb: Option<SmallRng>,
    pub trace: Option<Vec<TraceEntry>>,
    pub trace_cap: usize,
    /// Structured tracer; `Some` iff `Core::trace_on` is `true`.
    pub tracer: Option<Tracer>,
}

impl CoreState {
    /// Records a structured event on behalf of `thread`. Call sites must
    /// already hold the state lock; emission touches nothing the scheduler
    /// uses, so virtual time is unaffected.
    pub(crate) fn trace_event(
        &mut self,
        thread: ThreadId,
        layer: Layer,
        phase: Phase,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        if self.tracer.is_none() {
            return;
        }
        let time = self.now;
        let proc = self.threads[thread.0].proc;
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(TraceEvent {
                time,
                proc,
                thread,
                layer,
                phase,
                name,
                args: ArgVec::from_slice(args),
            });
        }
    }
    pub(crate) fn schedule_wake(&mut self, at: SimTime, thread: ThreadId, wait_id: u64) {
        debug_assert!(at >= self.now, "cannot schedule a wake in the past");
        let seq = self.seq;
        self.seq += 1;
        let tie = match self.perturb.as_mut() {
            Some(rng) => rng.random(),
            None => 0,
        };
        self.queue.push(Event {
            time: at,
            tie,
            seq,
            thread,
            wait_id,
        });
    }

    /// Schedules a wake at the current instant (ordered after everything
    /// already scheduled for this instant).
    pub(crate) fn schedule_wake_now(&mut self, thread: ThreadId, wait_id: u64) {
        let now = self.now;
        self.schedule_wake(now, thread, wait_id);
    }

    /// Marks `thread` as blocked and returns the wait token a waker must use.
    ///
    /// No state assertion: during shutdown a destructor may re-enter a
    /// blocking primitive while the record is already `Blocked`.
    pub(crate) fn prepare_block(&mut self, thread: ThreadId, label: &'static str) -> u64 {
        let rec = &mut self.threads[thread.0];
        rec.wait_id += 1;
        rec.state = ThreadState::Blocked;
        rec.blocked_on = label;
        let wid = rec.wait_id;
        self.trace_event(thread, Layer::Sched, Phase::Instant, "block", &[]);
        wid
    }

    fn pop_event(&mut self) -> Option<Event> {
        self.queue.pop()
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

pub(crate) struct Core {
    pub state: Mutex<CoreState>,
    /// Mirrors `CoreState::tracer.is_some()`; lives outside the mutex so
    /// disabled-tracing call sites pay one relaxed load and nothing else.
    pub trace_on: AtomicBool,
    /// Set by a simulated thread's exit path when its body panicked, so
    /// [`Core::step`]'s non-panic path is one relaxed load instead of a
    /// second state-lock acquisition per event.
    panicked: AtomicBool,
}

/// How [`Core::step`] left the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepResult {
    /// A thread was resumed and yielded back (stale wakes may have been
    /// skipped on the way).
    Progress,
    /// The event queue is empty.
    Drained,
    /// The `stop_on` thread has finished.
    TargetFinished,
    /// `events_processed` reached the configured limit.
    LimitExceeded,
}

impl Core {
    pub(crate) fn new(seed: u64) -> Arc<Core> {
        Arc::new(Core {
            state: Mutex::new(CoreState {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::with_capacity(256),
                threads: Vec::new(),
                procs: Vec::new(),
                events_processed: 0,
                shutdown: false,
                rng: SmallRng::seed_from_u64(seed),
                perturb: None,
                trace: None,
                trace_cap: 100_000,
                tracer: None,
            }),
            trace_on: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
        })
    }

    /// True if structured tracing is enabled (one relaxed atomic load).
    #[inline]
    pub(crate) fn tracing_enabled(&self) -> bool {
        self.trace_on.load(AtomicOrdering::Relaxed)
    }

    pub(crate) fn add_processor(self: &Arc<Self>, name: &str, switch_cost: SimDuration) -> ProcId {
        let mut st = self.state.lock();
        let id = ProcId(st.procs.len());
        st.procs.push(ProcRecord {
            name: name.to_owned(),
            holder: None,
            last_thread_holder: None,
            waiters: VecDeque::new(),
            stolen_total: SimDuration::ZERO,
            switch_cost,
            busy: SimDuration::ZERO,
            switches: 0,
            interrupt_time: SimDuration::ZERO,
        });
        id
    }

    /// Spawns a simulated thread; shared implementation behind
    /// `Simulation::spawn*` and `Ctx::spawn*`.
    pub(crate) fn spawn_thread<F>(
        self: &Arc<Self>,
        proc: ProcId,
        name: &str,
        daemon: bool,
        f: F,
    ) -> ThreadId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let conduit = Conduit::new();
        let tid;
        {
            let mut st = self.state.lock();
            assert!(
                proc.0 < st.procs.len(),
                "spawn: unknown processor {proc}; call add_processor first"
            );
            tid = ThreadId(st.threads.len());
            st.threads.push(ThreadRecord {
                name: Arc::from(name),
                proc,
                conduit: Arc::clone(&conduit),
                state: ThreadState::Blocked,
                wait_id: 0,
                blocked_on: "start",
                daemon,
                joiners: Vec::new(),
                panic: None,
                os_handle: None,
            });
            if st.shutdown {
                // The simulation is being torn down; never start the body.
                st.threads[tid.0].state = ThreadState::Finished;
                return tid;
            }
            st.trace_event(tid, Layer::Sched, Phase::Instant, "spawn", &[]);
            st.schedule_wake_now(tid, 0);
        }

        let core = Arc::clone(self);
        let thread_conduit = Arc::clone(&conduit);
        let os_name = format!("sim-{name}");
        let handle = std::thread::Builder::new()
            .name(os_name)
            .spawn(move || {
                thread_conduit.wait_for_turn();
                let run_body = !core.state.lock().shutdown;
                let mut panic_msg = None;
                if run_body {
                    let ctx = Ctx::new(Arc::clone(&core), tid);
                    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                    if let Err(payload) = result {
                        if !payload.is::<ShutdownUnwind>() {
                            // `&*payload`: borrow the contents, not the Box
                            // (a `&Box<dyn Any>` would unsize to `&dyn Any`
                            // *as a Box* and every downcast would miss).
                            panic_msg = Some(payload_to_string(&*payload));
                        }
                    }
                }
                {
                    let mut st = core.state.lock();
                    if panic_msg.is_some() {
                        core.panicked.store(true, AtomicOrdering::Release);
                    }
                    let joiners = {
                        let rec = &mut st.threads[tid.0];
                        rec.state = ThreadState::Finished;
                        rec.panic = panic_msg;
                        std::mem::take(&mut rec.joiners)
                    };
                    for (jt, jw) in joiners {
                        st.schedule_wake_now(jt, jw);
                    }
                }
                thread_conduit.final_yield();
            })
            .expect("failed to spawn OS thread backing a simulated thread");

        self.state.lock().threads[tid.0].os_handle = Some(handle);
        tid
    }

    /// Advances the simulation by one thread resumption: pops events —
    /// skipping stale wakes without releasing the state lock — until one
    /// resumes a thread, the queue drains, `stop_on` finishes, or the event
    /// budget runs out. Each popped event (stale or not) advances the clock
    /// and the `events_processed` counter exactly as it always has, so
    /// virtual time and event counts are independent of this batching.
    ///
    /// # Panics
    ///
    /// Propagates panics from simulated threads.
    pub(crate) fn step(
        self: &Arc<Self>,
        stop_on: Option<ThreadId>,
        limit: Option<u64>,
    ) -> StepResult {
        let (tid, conduit) = {
            let mut st = self.state.lock();
            loop {
                if let Some(t) = stop_on {
                    if st.threads[t.0].state == ThreadState::Finished {
                        return StepResult::TargetFinished;
                    }
                }
                if let Some(l) = limit {
                    if st.events_processed >= l {
                        return StepResult::LimitExceeded;
                    }
                }
                let Some(ev) = st.pop_event() else {
                    return StepResult::Drained;
                };
                debug_assert!(ev.time >= st.now);
                st.now = ev.time;
                st.events_processed += 1;
                let rec = &mut st.threads[ev.thread.0];
                if rec.state == ThreadState::Blocked && rec.wait_id == ev.wait_id {
                    rec.state = ThreadState::Running;
                    // Raw pointer instead of `Arc::clone`: the conduit must
                    // outlive the unlock below, which it does because thread
                    // records (and the `Arc`s they hold) are never removed
                    // while the `Core` behind `self` is alive, and the
                    // `Arc`'s pointee is heap-stable across `threads` Vec
                    // reallocations. This saves two refcount RMWs per event.
                    let conduit: *const Conduit = Arc::as_ptr(&rec.conduit);
                    st.trace_event(ev.thread, Layer::Sched, Phase::Instant, "wake", &[]);
                    break (ev.thread, conduit);
                }
                // Stale wake — the thread moved on or already finished; keep
                // the lock and pop the next event.
            }
        };
        // SAFETY: see the comment at `Arc::as_ptr` above.
        unsafe { (*conduit).resume_and_wait() };
        if self.panicked.load(AtomicOrdering::Acquire) {
            let panic_info = {
                let mut st = self.state.lock();
                let rec = &mut st.threads[tid.0];
                rec.panic.take().map(|msg| (Arc::clone(&rec.name), msg))
            };
            if let Some((name, msg)) = panic_info {
                panic!("simulated thread '{name}' panicked: {msg}");
            }
        }
        StepResult::Progress
    }

    pub(crate) fn initiate_shutdown(self: &Arc<Self>) {
        self.state.lock().shutdown = true;
        // Round-robin resume every unfinished thread until all have unwound.
        // A destructor may block again during unwinding (it receives benign
        // fallback values), so several rounds can be needed.
        for _ in 0..64 {
            let pending: Vec<Arc<Conduit>> = {
                let st = self.state.lock();
                st.threads
                    .iter()
                    .filter(|t| t.state != ThreadState::Finished)
                    .map(|t| Arc::clone(&t.conduit))
                    .collect()
            };
            if pending.is_empty() {
                break;
            }
            for c in pending {
                c.resume_and_wait();
            }
        }
        let handles: Vec<_> = {
            let mut st = self.state.lock();
            st.threads
                .iter_mut()
                .filter_map(|t| t.os_handle.take())
                .collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

pub(crate) fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Installs a process-wide panic hook that silences the internal
/// [`ShutdownUnwind`] payload used to tear simulated threads down.
pub(crate) fn install_quiet_shutdown_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ShutdownUnwind>() {
                return;
            }
            prev(info);
        }));
    });
}
