//! Stackful fibers: the user-space context-switch primitive behind the
//! `fibers` execution backend (see [`crate::Backend`]).
//!
//! A [`Fiber`] is a guard-paged stack plus a saved stack pointer. Switching
//! between two execution contexts is a single call to a tiny assembly
//! routine that saves the callee-saved registers on the current stack,
//! stores the stack pointer, and restores the other context's — no futex,
//! no syscall, no kernel involvement. On the 1-core reference container
//! this turns the scheduler→thread hand-off from a ~1 µs park/unpark round
//! trip into a ~10 ns register shuffle.
//!
//! The primitive is vendored in-tree (no external crate): `global_asm!`
//! blocks for x86_64 and aarch64 Linux, and direct `extern "C"`
//! declarations of `mmap`/`mprotect`/`munmap` for the guard-paged stacks
//! (std already links libc, so the symbols are always available).
//!
//! # Safety model
//!
//! The simulator's strict alternation — at any instant exactly one party
//! runs: the scheduler *or* one simulated thread — is what makes the raw
//! pointer and `UnsafeCell` traffic here sound. A context's save slot is
//! only written by the context itself (as it suspends) and only read by
//! the single party that resumes it; there is never a concurrent reader.
//!
//! # Teardown
//!
//! Fibers unwind with the same `ShutdownUnwind` payload as OS-thread-backed
//! simulated threads; each fiber's entry has a `catch_unwind` boundary, so
//! the unwind never crosses the assembly switch. One corner differs from
//! the OS backend: `std::thread::panicking()` is per *OS thread*, so if a
//! `Simulation` is dropped while its host thread is already unwinding a
//! panic that did **not** come from the simulator, fibers resumed for
//! shutdown observe `panicking() == true` and tear down via benign returns
//! (closed channels, elapsed timeouts) rather than `ShutdownUnwind`. The
//! scheduler avoids the common instance of this by shutting the simulation
//! down *before* re-raising a simulated thread's panic.

#![allow(unsafe_code)]

use std::cell::{Cell, UnsafeCell};

/// Whether this target supports the fiber backend (64-bit Linux on
/// x86_64 or aarch64 — the architectures the vendored switch covers).
pub(crate) const SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    target_pointer_width = "64",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// Default usable stack size for fiber-backed simulated threads. The
/// mapping is lazy (anonymous mmap), so untouched pages cost only address
/// space; 1 MiB matches what the deepest workspace workloads (TSP branch
/// and bound, Orca marshalling) need with a wide margin.
pub(crate) const DEFAULT_STACK_SIZE: usize = 1 << 20;

/// A suspended execution context's save slot: the stack pointer written by
/// `desim_fiber_switch` when the context suspends.
///
/// `Sync`/`Send` are asserted because strict alternation serializes all
/// access (see module docs): the slot is written by the suspending context
/// and read by the one party resuming it, never concurrently.
pub(crate) struct ContextCell(UnsafeCell<usize>);

unsafe impl Send for ContextCell {}
unsafe impl Sync for ContextCell {}

impl ContextCell {
    pub(crate) const fn new() -> Self {
        ContextCell(UnsafeCell::new(0))
    }

    /// Raw pointer to the saved stack-pointer word.
    pub(crate) fn slot(&self) -> *mut usize {
        self.0.get()
    }
}

#[cfg(all(
    target_os = "linux",
    target_pointer_width = "64",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::*;

    // ---------------------------------------------------------------
    // Context switch, x86_64 SysV: save the callee-saved registers on
    // the current stack, publish rsp into `*save`, adopt `new_sp`, and
    // restore. The boot thunk is what a freshly crafted stack "returns"
    // into: it moves the Fiber pointer (staged in the r12 slot) into the
    // first-argument register and calls the Rust entry.
    // ---------------------------------------------------------------
    #[cfg(target_arch = "x86_64")]
    core::arch::global_asm!(
        r#"
        .text
        .globl desim_fiber_switch
        .hidden desim_fiber_switch
        .type desim_fiber_switch, @function
        .balign 16
desim_fiber_switch:
        .cfi_startproc
        push rbp
        push rbx
        push r12
        push r13
        push r14
        push r15
        mov qword ptr [rdi], rsp
        mov rsp, rsi
        pop r15
        pop r14
        pop r13
        pop r12
        pop rbx
        pop rbp
        ret
        .cfi_endproc
        .size desim_fiber_switch, . - desim_fiber_switch

        .globl desim_fiber_boot
        .hidden desim_fiber_boot
        .type desim_fiber_boot, @function
        .balign 16
desim_fiber_boot:
        mov rdi, r12
        call desim_fiber_entry
        ud2
        .size desim_fiber_boot, . - desim_fiber_boot
        "#
    );

    // ---------------------------------------------------------------
    // Context switch, aarch64 AAPCS64: x19–x28, fp/lr, d8–d15 in a
    // 160-byte frame. The boot thunk receives the Fiber pointer in the
    // x19 slot and the thunk address in the x30 slot.
    // ---------------------------------------------------------------
    #[cfg(target_arch = "aarch64")]
    core::arch::global_asm!(
        r#"
        .text
        .globl desim_fiber_switch
        .hidden desim_fiber_switch
        .type desim_fiber_switch, %function
        .balign 16
desim_fiber_switch:
        sub sp, sp, #160
        stp x19, x20, [sp, #0]
        stp x21, x22, [sp, #16]
        stp x23, x24, [sp, #32]
        stp x25, x26, [sp, #48]
        stp x27, x28, [sp, #64]
        stp x29, x30, [sp, #80]
        stp d8,  d9,  [sp, #96]
        stp d10, d11, [sp, #112]
        stp d12, d13, [sp, #128]
        stp d14, d15, [sp, #144]
        mov x9, sp
        str x9, [x0]
        mov sp, x1
        ldp x19, x20, [sp, #0]
        ldp x21, x22, [sp, #16]
        ldp x23, x24, [sp, #32]
        ldp x25, x26, [sp, #48]
        ldp x27, x28, [sp, #64]
        ldp x29, x30, [sp, #80]
        ldp d8,  d9,  [sp, #96]
        ldp d10, d11, [sp, #112]
        ldp d12, d13, [sp, #128]
        ldp d14, d15, [sp, #144]
        add sp, sp, #160
        ret
        .size desim_fiber_switch, . - desim_fiber_switch

        .globl desim_fiber_boot
        .hidden desim_fiber_boot
        .type desim_fiber_boot, %function
        .balign 16
desim_fiber_boot:
        mov x0, x19
        bl desim_fiber_entry
        brk #0x1
        .size desim_fiber_boot, . - desim_fiber_boot
        "#
    );

    extern "C" {
        /// Saves the current context's callee-saved state, writes its
        /// stack pointer to `*save`, and resumes the context whose stack
        /// pointer is `new_sp`. Returns when something switches back.
        fn desim_fiber_switch(save: *mut usize, new_sp: usize);
        fn desim_fiber_boot();
    }

    /// Minimal libc surface for guard-paged stacks. std links libc, so
    /// these glibc symbols are always present; the constants are the
    /// Linux ABI values (identical on x86_64 and aarch64).
    mod sys {
        use core::ffi::c_void;

        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> i32;
            pub fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
            pub fn sysconf(name: i32) -> i64;
        }

        pub const PROT_NONE: i32 = 0;
        pub const PROT_READ: i32 = 0x1;
        pub const PROT_WRITE: i32 = 0x2;
        pub const MAP_PRIVATE: i32 = 0x2;
        pub const MAP_ANONYMOUS: i32 = 0x20;
        pub const MAP_STACK: i32 = 0x20000;
        pub const _SC_PAGESIZE: i32 = 30;
    }

    fn page_size() -> usize {
        use std::sync::OnceLock;
        static PAGE: OnceLock<usize> = OnceLock::new();
        *PAGE.get_or_init(|| {
            let p = unsafe { sys::sysconf(sys::_SC_PAGESIZE) };
            assert!(p > 0, "sysconf(_SC_PAGESIZE) failed");
            p as usize
        })
    }

    /// An anonymous mapping of `usable + guard page` bytes. The lowest
    /// page is `PROT_NONE`: stacks grow down, so overflow hits the guard
    /// and faults instead of silently corrupting the neighbouring
    /// allocation. Unmapped on drop.
    struct FiberStack {
        base: *mut u8,
        len: usize,
    }

    impl FiberStack {
        fn new(stack_size: usize) -> FiberStack {
            let page = page_size();
            let usable = stack_size.max(page).div_ceil(page) * page;
            let len = usable + page;
            let base = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_PRIVATE | sys::MAP_ANONYMOUS | sys::MAP_STACK,
                    -1,
                    0,
                )
            };
            assert!(
                base as isize != -1 && !base.is_null(),
                "fiber stack mmap({len}) failed"
            );
            let rc = unsafe { sys::mprotect(base, page, sys::PROT_NONE) };
            assert_eq!(rc, 0, "fiber stack guard mprotect failed");
            FiberStack {
                base: base as *mut u8,
                len,
            }
        }

        /// One past the highest usable byte (stacks grow down from here).
        fn top(&self) -> usize {
            self.base as usize + self.len
        }
    }

    impl Drop for FiberStack {
        fn drop(&mut self) {
            unsafe {
                sys::munmap(self.base as *mut _, self.len);
            }
        }
    }

    /// The closure a fiber runs. It returns the scheduler's [`ContextCell`]
    /// slot so the final switch-out happens *after* every capture (notably
    /// the `Arc<Core>`) has been dropped — otherwise a finished fiber's
    /// dead stack would keep the core alive in a cycle.
    pub(crate) type EntryFn = Box<dyn FnOnce() -> *mut usize + 'static>;

    /// A simulated thread's user-space execution context: guard-paged
    /// stack, saved stack pointer, and the grant word the resuming party
    /// writes before switching in (mirrors the OS backend's `Conduit`
    /// kind byte — `GRANT_RUN` / `GRANT_SHUTDOWN`).
    ///
    /// `Send` is asserted so `Box<Fiber>` can sit inside the core's
    /// thread table (which is behind a `Mutex`); actual execution and all
    /// cell access is serialized by strict alternation.
    pub(crate) struct Fiber {
        sp: UnsafeCell<usize>,
        grant: Cell<u8>,
        entry: UnsafeCell<Option<EntryFn>>,
        stack: FiberStack,
    }

    unsafe impl Send for Fiber {}

    impl Fiber {
        /// Creates a fiber whose first resume runs `entry` from the top
        /// of a fresh guard-paged stack.
        pub(crate) fn new(stack_size: usize, entry: EntryFn) -> Box<Fiber> {
            let fiber = Box::new(Fiber {
                sp: UnsafeCell::new(0),
                grant: Cell::new(0),
                entry: UnsafeCell::new(Some(entry)),
                stack: FiberStack::new(stack_size),
            });
            let arg = &*fiber as *const Fiber as usize;
            unsafe {
                *fiber.sp.get() = init_stack(fiber.stack.top(), arg);
            }
            fiber
        }

        /// The saved-stack-pointer slot for [`switch`].
        pub(crate) fn sp_slot(&self) -> *mut usize {
            self.sp.get()
        }

        /// Stages the grant kind the fiber will observe when it resumes.
        pub(crate) fn set_grant(&self, kind: u8) {
            self.grant.set(kind);
        }

        /// The grant kind staged by whoever resumed this fiber.
        pub(crate) fn grant(&self) -> u8 {
            self.grant.get()
        }
    }

    /// Crafts the initial stack image so that restoring it "returns" into
    /// `desim_fiber_boot` with the `Fiber` pointer in a callee-saved slot.
    #[cfg(target_arch = "x86_64")]
    unsafe fn init_stack(top: usize, arg: usize) -> usize {
        // Layout (ascending): r15 r14 r13 r12 rbx rbp <boot return addr>.
        // After the six pops and `ret`, rsp == top (16-aligned); boot's
        // `call` then gives the entry rsp ≡ 8 (mod 16), the SysV ABI's
        // at-function-entry alignment.
        let top = top & !0xf;
        let sp = top - 7 * 8;
        let slots = sp as *mut usize;
        for i in 0..6 {
            slots.add(i).write(0);
        }
        slots.add(3).write(arg); // popped into r12
        slots.add(6).write(desim_fiber_boot as *const () as usize);
        sp
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn init_stack(top: usize, arg: usize) -> usize {
        // One 160-byte restore frame: x19 gets the Fiber pointer, the
        // x30 slot (offset 88) the boot thunk; everything else zero.
        // After the restore sp == top (16-aligned, as AAPCS64 requires).
        let top = top & !0xf;
        let sp = top - 160;
        let slots = sp as *mut usize;
        for i in 0..20 {
            slots.add(i).write(0);
        }
        slots.write(arg); // x19
        slots.add(11).write(desim_fiber_boot as *const () as usize); // x30
        sp
    }

    /// Suspends the context owning `save` and resumes the one saved in
    /// `*resume`. Returns when something switches back into `save`.
    ///
    /// # Safety
    ///
    /// `save` must be the running context's own slot and `*resume` a
    /// stack pointer produced by [`init_stack`] or a prior suspension;
    /// strict alternation must guarantee no other party touches either
    /// slot concurrently.
    pub(crate) unsafe fn switch(save: *mut usize, resume: *mut usize) {
        desim_fiber_switch(save, *resume);
    }

    /// First (and only) frame of every fiber. Runs the entry closure,
    /// which returns the scheduler slot to switch out through once all
    /// its captures are dropped. A finished fiber must never be resumed
    /// again; the trailing `unreachable!` aborts (unwind out of an
    /// `extern "C"` frame) if the scheduler ever violates that.
    #[no_mangle]
    extern "C" fn desim_fiber_entry(fiber: *mut Fiber) -> ! {
        let sched_slot = {
            let entry = unsafe { (*(*fiber).entry.get()).take().expect("fiber started twice") };
            entry()
        };
        unsafe {
            desim_fiber_switch((*fiber).sp.get(), *sched_slot);
        }
        unreachable!("finished fiber resumed");
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// Raw primitive smoke test: a fiber that bounces control back
        /// and forth with its spawner, then finishes.
        #[test]
        fn raw_switch_round_trips() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Arc;

            static MAIN_CTX: ContextCell = ContextCell::new();
            let hits = Arc::new(AtomicUsize::new(0));
            let hits2 = Arc::clone(&hits);

            // The entry bumps the counter, yields back to main, bumps
            // again, and returns main's slot for its final switch-out.
            struct SelfSp(*mut usize);
            unsafe impl Send for SelfSp {}
            let self_sp = Arc::new(std::sync::Mutex::new(SelfSp(std::ptr::null_mut())));
            let self_sp2 = Arc::clone(&self_sp);

            let fiber = Fiber::new(64 * 1024, {
                Box::new(move || {
                    hits2.fetch_add(1, Ordering::Relaxed);
                    let my_sp = self_sp2.lock().unwrap().0;
                    unsafe { switch(my_sp, MAIN_CTX.slot()) };
                    hits2.fetch_add(1, Ordering::Relaxed);
                    MAIN_CTX.slot()
                })
            });
            self_sp.lock().unwrap().0 = fiber.sp_slot();

            unsafe { switch(MAIN_CTX.slot(), fiber.sp_slot()) };
            assert_eq!(hits.load(Ordering::Relaxed), 1);
            unsafe { switch(MAIN_CTX.slot(), fiber.sp_slot()) };
            assert_eq!(hits.load(Ordering::Relaxed), 2);
        }

        /// Guard page: the mapping's lowest page must reject writes. We
        /// only check the mapping exists with the right span here (a
        /// fault test would take the process down).
        #[test]
        fn stack_has_guard_page() {
            let page = page_size();
            let stack = FiberStack::new(8 * 1024);
            assert_eq!(stack.len % page, 0);
            assert!(stack.len >= 8 * 1024 + page);
            assert_eq!(stack.top() - stack.base as usize, stack.len);
        }
    }
}

#[cfg(all(
    target_os = "linux",
    target_pointer_width = "64",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) use imp::{switch, EntryFn, Fiber};

// ------------------------------------------------------------------
// Stub for targets without a vendored switch. Backend resolution never
// selects `Backend::Fibers` when `SUPPORTED` is false, so these bodies
// are unreachable; they exist only so `core.rs` compiles everywhere.
// ------------------------------------------------------------------
#[cfg(not(all(
    target_os = "linux",
    target_pointer_width = "64",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    pub(crate) type EntryFn = Box<dyn FnOnce() -> *mut usize + 'static>;

    pub(crate) struct Fiber {
        _private: (),
    }

    impl Fiber {
        pub(crate) fn new(_stack_size: usize, _entry: EntryFn) -> Box<Fiber> {
            unreachable!("fiber backend is not supported on this target")
        }

        pub(crate) fn sp_slot(&self) -> *mut usize {
            unreachable!("fiber backend is not supported on this target")
        }

        pub(crate) fn set_grant(&self, _kind: u8) {
            unreachable!("fiber backend is not supported on this target")
        }

        pub(crate) fn grant(&self) -> u8 {
            unreachable!("fiber backend is not supported on this target")
        }
    }

    pub(crate) unsafe fn switch(_save: *mut usize, _resume: *mut usize) {
        unreachable!("fiber backend is not supported on this target")
    }
}

#[cfg(not(all(
    target_os = "linux",
    target_pointer_width = "64",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub(crate) use imp::{switch, EntryFn, Fiber};
