//! The per-thread handle simulated code uses to interact with virtual time,
//! the CPU model, and the scheduler.

use std::sync::Arc;

use rand::RngExt;

use crate::core::{
    shutdown_unwind_unless_panicking, Core, ExecRef, ProcId, ThreadExec, ThreadId, TraceEntry,
    WakeStatus,
};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Layer, Phase};
use crate::ThreadHandle;

/// How a [`Ctx::compute_charged`] call accounts for the context switch that
/// (possibly) precedes it.
///
/// The Amoeba paper's central asymmetry is *who pays for thread switches*:
/// kernel-space protocol work runs at interrupt level and resumes the blocked
/// caller directly, while user-space protocol work runs in ordinary threads
/// and pays for scheduling. `Auto` lets that asymmetry emerge from the CPU
/// model; `Fixed` is used where the paper reports a measured, path-specific
/// cost (e.g. the 110 µs interrupt-to-sequencer-thread dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchCharge {
    /// Charge the processor's context-switch cost iff the previous
    /// thread-level occupant was a different thread.
    #[default]
    Auto,
    /// Charge exactly this duration (counted as a switch when non-zero).
    Fixed(SimDuration),
    /// Charge nothing.
    Free,
}

/// Handle through which a simulated thread talks to the simulation.
///
/// A `Ctx` is handed to every thread body spawned via
/// [`crate::Simulation::spawn`] or [`Ctx::spawn`]. All blocking primitives
/// ([`crate::SimMutex`], [`crate::SimCondvar`], [`crate::SimChannel`]) take a
/// `&Ctx` so they can suspend the calling thread in virtual time.
pub struct Ctx {
    core: Arc<Core>,
    tid: ThreadId,
    /// This thread's own execution resource (conduit or fiber), cached once
    /// at construction so blocking never re-fetches it from the thread
    /// table under the state lock.
    exec: ExecRef,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("thread", &self.tid).finish()
    }
}

impl Ctx {
    pub(crate) fn new(core: Arc<Core>, tid: ThreadId) -> Self {
        let exec = match &core.state.lock().threads[tid.0].exec {
            ThreadExec::Os { conduit, .. } => ExecRef::Os(Arc::clone(conduit)),
            // The raw pointer stays valid for the `Ctx`'s whole life: the
            // boxed fiber is heap-stable and thread records are never
            // removed while the core behind `self.core` is alive.
            ThreadExec::Fiber(f) => ExecRef::Fiber(&**f as *const _),
            ThreadExec::Retired => unreachable!("retired threads never get a Ctx"),
        };
        Ctx { core, tid, exec }
    }

    pub(crate) fn core(&self) -> &Arc<Core> {
        &self.core
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.state.lock().now
    }

    /// Returns this thread's identifier.
    pub fn thread_id(&self) -> ThreadId {
        self.tid
    }

    /// Returns the processor this thread runs on.
    pub fn processor(&self) -> ProcId {
        self.core.state.lock().threads[self.tid.0].proc
    }

    /// Returns this thread's diagnostic name.
    pub fn name(&self) -> String {
        self.core.state.lock().threads[self.tid.0].name.to_string()
    }

    /// Yields control and resumes once the registered wake fires.
    ///
    /// Callers must have registered a wait via `prepare_block` while holding
    /// the core lock. Unwinds the thread if the simulation is shutting down.
    ///
    /// This is the entry to the hand-off fast path (see `core`'s module
    /// docs): if this thread's own wake heads the queue it returns without
    /// any OS-level switch, and if another thread's wake does it grants that
    /// thread directly instead of detouring through the scheduler.
    pub(crate) fn yield_blocked(&self) -> WakeStatus {
        crate::core::yield_blocked(&self.core, self.tid, &self.exec)
    }

    /// Suspends the thread for `d` of virtual time without occupying a CPU.
    ///
    /// Use this to model pure waiting (timers, wire propagation). To model
    /// work that keeps the processor busy, use [`Ctx::compute`].
    pub fn sleep(&self, d: SimDuration) {
        let _ = {
            let mut st = self.core.state.lock();
            let wid = st.prepare_block(self.tid, "sleep");
            let at = st.now + d;
            st.schedule_wake(at, self.tid, wid);
            wid
        };
        if self.yield_blocked() == WakeStatus::Shutdown {
            shutdown_unwind_unless_panicking();
        }
    }

    /// Performs `d` of CPU work on this thread's processor.
    ///
    /// The call acquires the processor (FIFO among threads), pays the
    /// context-switch cost if another thread ran since this one last held the
    /// CPU, and is extended by any interrupt-level work that steals the CPU
    /// while it runs.
    pub fn compute(&self, d: SimDuration) {
        self.compute_charged(d, SwitchCharge::Auto);
    }

    /// [`Ctx::compute`] with an explicit context-switch accounting policy.
    pub fn compute_charged(&self, d: SimDuration, charge: SwitchCharge) {
        let me = self.tid;
        let proc = self.processor();
        // Acquire the CPU.
        let acquired = {
            let mut st = self.core.state.lock();
            let pr = &mut st.procs[proc.0];
            debug_assert_ne!(pr.holder, Some(me), "recursive compute on one CPU");
            if pr.holder.is_none() {
                pr.holder = Some(me);
                true
            } else {
                let wid = st.prepare_block(me, "cpu");
                st.procs[proc.0].waiters.push_back((me, wid));
                false
            }
        };
        if !acquired {
            if self.yield_blocked() == WakeStatus::Shutdown {
                shutdown_unwind_unless_panicking();
            }
            debug_assert_eq!(
                self.core.state.lock().procs[proc.0].holder,
                Some(me),
                "woken CPU waiter must have been granted the CPU"
            );
        }
        // Context-switch charge.
        let cs = {
            let mut st = self.core.state.lock();
            let pr = &mut st.procs[proc.0];
            match charge {
                SwitchCharge::Auto => {
                    if pr.last_thread_holder.is_some() && pr.last_thread_holder != Some(me) {
                        pr.switches += 1;
                        pr.switch_cost
                    } else {
                        SimDuration::ZERO
                    }
                }
                SwitchCharge::Fixed(c) => {
                    if !c.is_zero() {
                        pr.switches += 1;
                    }
                    c
                }
                SwitchCharge::Free => SimDuration::ZERO,
            }
        };
        if !cs.is_zero() && self.core.tracing_enabled() {
            let mut st = self.core.state.lock();
            st.trace_event(
                me,
                Layer::Sched,
                Phase::Instant,
                "switch",
                &[("ns", cs.as_nanos())],
            );
        }
        // Occupy the CPU, extended by interrupt-level theft.
        let start = self.now();
        let mut remaining = d + cs;
        while !remaining.is_zero() {
            let s0 = self.core.state.lock().procs[proc.0].stolen_total;
            self.sleep(remaining);
            let s1 = self.core.state.lock().procs[proc.0].stolen_total;
            remaining = s1 - s0;
        }
        // Release and grant to the next waiter, if any.
        {
            let mut st = self.core.state.lock();
            let elapsed = st.now.saturating_duration_since(start);
            let pr = &mut st.procs[proc.0];
            pr.busy += elapsed;
            pr.holder = None;
            pr.last_thread_holder = Some(me);
            if let Some((t, w)) = pr.waiters.pop_front() {
                pr.holder = Some(t);
                st.schedule_wake_now(t, w);
            }
        }
    }

    /// Performs `d` of CPU work in slices of at most `quantum`, releasing
    /// the processor between slices.
    ///
    /// This approximates preemptive scheduling: protocol daemons and other
    /// threads interleave at quantum granularity instead of stalling behind
    /// one long computation (Amoeba schedules its kernel threads
    /// preemptively). Use for application compute phases; short protocol
    /// charges can stay with [`Ctx::compute`].
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn compute_sliced(&self, d: SimDuration, quantum: SimDuration) {
        assert!(!quantum.is_zero(), "quantum must be positive");
        let mut remaining = d;
        loop {
            if remaining.is_zero() {
                break;
            }
            let slice = if remaining > quantum {
                quantum
            } else {
                remaining
            };
            self.compute(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }

    /// Performs `d` of interrupt-level CPU work on this thread's processor.
    ///
    /// Interrupt work preempts thread-level work: it does not wait for the
    /// CPU, and any concurrent thread-level [`Ctx::compute`] on the same
    /// processor is extended by `d`. It also does not update the
    /// "last thread" register, so a thread resumed right after interrupt
    /// processing pays no context switch — the kernel-space fast path the
    /// paper measures.
    pub fn interrupt_compute(&self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        self.sleep(d);
        let proc = self.processor();
        let mut st = self.core.state.lock();
        let pr = &mut st.procs[proc.0];
        pr.stolen_total += d;
        pr.interrupt_time += d;
    }

    /// Spawns a new simulated thread on the same processor.
    pub fn spawn<F>(&self, name: &str, f: F) -> ThreadHandle
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.spawn_on(self.processor(), name, f)
    }

    /// Spawns a new simulated thread on the given processor.
    pub fn spawn_on<F>(&self, proc: ProcId, name: &str, f: F) -> ThreadHandle
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let tid = self.core.spawn_thread(proc, name, false, f);
        ThreadHandle::new(Arc::clone(&self.core), tid)
    }

    /// Spawns a daemon thread on the given processor. Daemon threads may stay
    /// blocked forever without the run being reported as deadlocked.
    pub fn spawn_daemon_on<F>(&self, proc: ProcId, name: &str, f: F) -> ThreadHandle
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let tid = self.core.spawn_thread(proc, name, true, f);
        ThreadHandle::new(Arc::clone(&self.core), tid)
    }

    /// Commits wakes captured by [`crate::SimChannel::send_deferred`], in
    /// order, at the current instant, under a single scheduler-lock
    /// acquisition.
    ///
    /// Equivalent to having called [`crate::SimChannel::send`] for each
    /// message as long as nothing ran in between the deferred sends — which
    /// is guaranteed inside one simulated thread, since only one thread runs
    /// at a time. This is the fan-out batching primitive: a broadcast
    /// delivery enqueues the frame on every receiver first, then schedules
    /// every wake with one lock round-trip instead of one per receiver.
    pub fn commit_wakes(&self, wakes: impl IntoIterator<Item = crate::PendingWake>) {
        let mut st = self.core.state.lock();
        for w in wakes {
            let (thread, wait_id) = w.into_parts();
            st.schedule_wake_now(thread, wait_id);
        }
    }

    /// Returns a uniformly distributed `u64` from the simulation's
    /// deterministic random number generator.
    pub fn rand_u64(&self) -> u64 {
        self.core.state.lock().rng.random()
    }

    /// Returns a uniformly distributed value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn rand_range(&self, n: u64) -> u64 {
        assert!(n > 0, "rand_range: n must be positive");
        self.core.state.lock().rng.random_range(0..n)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn rand_f64(&self) -> f64 {
        self.core.state.lock().rng.random()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn rand_bool(&self, p: f64) -> bool {
        self.rand_f64() < p
    }

    /// True if structured tracing is enabled. One relaxed atomic load; use
    /// to skip argument construction for hot-path events.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.core.tracing_enabled()
    }

    /// Emits a structured trace event (see [`crate::Simulation::enable_tracing`]).
    ///
    /// Emission never sleeps, computes, or draws randomness, so enabling or
    /// disabling tracing cannot change virtual time.
    #[inline]
    pub fn trace_emit(
        &self,
        layer: Layer,
        phase: Phase,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        if !self.core.tracing_enabled() {
            return;
        }
        self.core
            .state
            .lock()
            .trace_event(self.tid, layer, phase, name, args);
    }

    /// Emits an instant event.
    #[inline]
    pub fn trace_instant(&self, layer: Layer, name: &'static str, args: &[(&'static str, u64)]) {
        self.trace_emit(layer, Phase::Instant, name, args);
    }

    /// Opens a span; pair with [`Ctx::trace_end`] using the same name.
    #[inline]
    pub fn trace_begin(&self, layer: Layer, name: &'static str, args: &[(&'static str, u64)]) {
        self.trace_emit(layer, Phase::Begin, name, args);
    }

    /// Closes a span opened by [`Ctx::trace_begin`].
    #[inline]
    pub fn trace_end(&self, layer: Layer, name: &'static str, args: &[(&'static str, u64)]) {
        self.trace_emit(layer, Phase::End, name, args);
    }

    /// Emits a cost-accounting event: `d` of virtual time attributed to the
    /// cost-model category `category`. The latency-budget report aggregates
    /// these per category.
    #[inline]
    pub fn trace_cost(&self, layer: Layer, category: &'static str, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        self.trace_emit(layer, Phase::Instant, category, &[("ns", d.as_nanos())]);
    }

    /// Records a trace message if tracing is enabled
    /// (see [`crate::Simulation::enable_trace`]).
    pub fn trace(&self, message: impl AsRef<str>) {
        let mut st = self.core.state.lock();
        if st.trace.is_none() {
            return;
        }
        let now = st.now;
        // Refcount bump, not a `String` allocation — this is the only
        // per-message cost besides the push itself.
        let name = std::sync::Arc::clone(&st.threads[self.tid.0].name);
        let cap = st.trace_cap;
        if let Some(buf) = st.trace.as_mut() {
            if buf.len() < cap {
                buf.push(TraceEntry {
                    time: now,
                    thread: name,
                    message: message.as_ref().to_owned(),
                });
            }
        }
    }
}
