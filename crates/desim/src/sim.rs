//! The simulation driver: owns the virtual clock and runs the event loop.

use std::fmt;
use std::sync::Arc;

use crate::backend::Backend;
use crate::core::{
    install_quiet_shutdown_hook, Core, ProcId, StepResult, ThreadId, ThreadState, WakeStatus,
};
use crate::ctx::Ctx;
use crate::fiber;
use crate::time::{SimDuration, SimTime};
use crate::trace::{CounterSnapshot, TraceEvent, Tracer};

/// Errors reported by [`Simulation::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while non-daemon threads were still blocked.
    Deadlock {
        /// `(thread name, what it was blocked on)` for each stuck thread.
        blocked: Vec<(String, &'static str)>,
    },
    /// The configured event budget was exhausted (see
    /// [`Simulation::set_max_events`]).
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlocked; blocked threads: ")?;
                for (i, (name, on)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name} (on {on})")?;
                }
                Ok(())
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "simulation exceeded the event limit of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Per-processor accounting for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcReport {
    /// Processor name given to [`Simulation::add_processor`].
    pub name: String,
    /// Total thread-level CPU occupancy.
    pub busy: SimDuration,
    /// Total interrupt-level CPU time.
    pub interrupt_time: SimDuration,
    /// Number of charged context switches.
    pub switches: u64,
}

/// Summary of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
    /// Total wake events processed (cumulative across runs).
    pub events: u64,
    /// Per-processor accounting.
    pub procs: Vec<ProcReport>,
}

/// Handle to a simulated thread.
///
/// Returned by the `spawn` family on [`Simulation`] and [`Ctx`]. Unlike
/// `std::thread::JoinHandle` it is clonable and joining is idempotent.
#[derive(Clone)]
pub struct ThreadHandle {
    core: Arc<Core>,
    tid: ThreadId,
}

impl fmt::Debug for ThreadHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadHandle")
            .field("thread", &self.tid)
            .finish()
    }
}

impl ThreadHandle {
    pub(crate) fn new(core: Arc<Core>, tid: ThreadId) -> Self {
        ThreadHandle { core, tid }
    }

    /// Returns the thread's identifier.
    pub fn id(&self) -> ThreadId {
        self.tid
    }

    /// Returns `true` once the thread body has returned.
    pub fn is_finished(&self) -> bool {
        self.core.state.lock().threads[self.tid.0].state == ThreadState::Finished
    }

    /// Blocks the calling simulated thread until this thread finishes.
    pub fn join(&self, ctx: &Ctx) {
        loop {
            {
                let mut st = self.core.state.lock();
                if st.threads[self.tid.0].state == ThreadState::Finished {
                    return;
                }
                let wid = st.prepare_block(ctx.thread_id(), "join");
                st.threads[self.tid.0].joiners.push((ctx.thread_id(), wid));
            }
            if ctx.yield_blocked() == WakeStatus::Shutdown {
                crate::core::shutdown_unwind_unless_panicking();
                return;
            }
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// A `Simulation` owns processors (CPUs), simulated threads, and the virtual
/// clock. The same seed and the same program yield byte-identical schedules.
///
/// # Examples
///
/// ```
/// use desim::{Simulation, us};
///
/// let mut sim = Simulation::new(42);
/// let cpu = sim.add_processor("m0");
/// sim.spawn(cpu, "worker", |ctx| {
///     ctx.compute(us(100));
/// });
/// let report = sim.run().expect("run");
/// assert_eq!(report.final_time.as_micros_f64(), 100.0);
/// ```
pub struct Simulation {
    core: Arc<Core>,
    default_switch_cost: SimDuration,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.core.state.lock();
        f.debug_struct("Simulation")
            .field("now", &st.now)
            .field("threads", &st.threads.len())
            .field("procs", &st.procs.len())
            .finish()
    }
}

/// Configures and creates a [`Simulation`].
///
/// Obtained from [`Simulation::builder`]. Every knob has a default, so
/// `Simulation::builder().build()` is equivalent to `Simulation::new(0)`.
///
/// # Examples
///
/// ```
/// use desim::{Backend, Simulation};
///
/// let sim = Simulation::builder()
///     .seed(42)
///     .backend(Backend::OsThreads)
///     .build();
/// assert_eq!(sim.backend(), Backend::OsThreads);
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    seed: u64,
    backend: Option<Backend>,
    fiber_stack_size: usize,
}

impl SimulationBuilder {
    /// Seed for all simulation randomness (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Explicit execution backend, outranking the `DESIM_BACKEND`
    /// environment variable and [`crate::set_backend_override`]. Requesting
    /// [`Backend::Fibers`] on a target without the vendored context switch
    /// silently degrades to [`Backend::OsThreads`] (observable behaviour is
    /// identical).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Usable stack size for fiber-backed simulated threads (default
    /// 1 MiB). Pages are mapped lazily, so a generous size costs only
    /// address space; each stack additionally gets one guard page. Ignored
    /// by the OS-thread backend.
    pub fn fiber_stack_size(mut self, bytes: usize) -> Self {
        self.fiber_stack_size = bytes;
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Simulation {
        install_quiet_shutdown_hook();
        let backend = match self.backend {
            Some(b) => b.resolve(),
            None => Backend::default_backend(),
        };
        Simulation {
            core: Core::new(self.seed, backend, self.fiber_stack_size),
            default_switch_cost: SimDuration::ZERO,
        }
    }
}

impl Simulation {
    /// Creates a simulation seeded with `seed` for all randomness, on the
    /// default execution backend (see [`Backend::default_backend`]).
    pub fn new(seed: u64) -> Self {
        Self::builder().seed(seed).build()
    }

    /// Returns a builder for configuring seed, execution backend, and
    /// fiber stack size.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder {
            seed: 0,
            backend: None,
            fiber_stack_size: fiber::DEFAULT_STACK_SIZE,
        }
    }

    /// The execution backend this simulation runs its threads on.
    pub fn backend(&self) -> Backend {
        self.core.backend()
    }

    /// Sets the context-switch cost used for processors added *afterwards*.
    pub fn set_default_switch_cost(&mut self, cost: SimDuration) {
        self.default_switch_cost = cost;
    }

    /// Caps the total number of wake events; [`Simulation::run`] returns
    /// [`SimError::EventLimitExceeded`] past the cap. A safety net against
    /// runaway protocols (e.g. retransmission storms).
    ///
    /// The budget lives in the shared scheduler state because both the
    /// scheduler and the thread-side hand-off fast path check it before
    /// every pop.
    pub fn set_max_events(&mut self, limit: u64) {
        self.core.state.lock().max_events = Some(limit);
    }

    /// Enables seeded scheduler perturbation: among wake events scheduled
    /// for the *same* virtual instant, the pick order is shuffled by a
    /// dedicated RNG seeded with `seed` instead of following insertion
    /// order. Virtual time is never violated, the perturbation is fully
    /// deterministic per seed, and the protocol-visible RNG (seeded by
    /// [`Simulation::new`]) is untouched. Call before spawning threads so
    /// even the initial start order is covered.
    ///
    /// This is a chaos-testing hook: correct protocols must not depend on
    /// the scheduler's same-instant FIFO order.
    pub fn set_schedule_perturbation(&mut self, seed: u64) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        self.core.state.lock().perturb = Some(SmallRng::seed_from_u64(seed));
    }

    /// Adds a processor (one CPU) and returns its id.
    pub fn add_processor(&mut self, name: &str) -> ProcId {
        self.core.add_processor(name, self.default_switch_cost)
    }

    /// Adds a processor with an explicit context-switch cost.
    pub fn add_processor_with_switch_cost(&mut self, name: &str, cost: SimDuration) -> ProcId {
        self.core.add_processor(name, cost)
    }

    /// Spawns a simulated thread on `proc`; it starts when the run begins.
    pub fn spawn<F>(&mut self, proc: ProcId, name: &str, f: F) -> ThreadHandle
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let tid = self.core.spawn_thread(proc, name, false, f);
        ThreadHandle::new(Arc::clone(&self.core), tid)
    }

    /// Spawns a daemon thread: it may remain blocked forever without the run
    /// being reported as a deadlock (e.g. protocol receive daemons).
    pub fn spawn_daemon<F>(&mut self, proc: ProcId, name: &str, f: F) -> ThreadHandle
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let tid = self.core.spawn_thread(proc, name, true, f);
        ThreadHandle::new(Arc::clone(&self.core), tid)
    }

    /// Runs until the event queue drains.
    ///
    /// Daemon threads blocked at that point are expected; any other blocked
    /// thread is a deadlock.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if non-daemon threads are still blocked when
    /// the queue drains, [`SimError::EventLimitExceeded`] if the event budget
    /// is exhausted.
    ///
    /// # Panics
    ///
    /// Propagates panics from simulated threads.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        self.run_inner(None)
    }

    /// Runs until `target` finishes (or the queue drains first).
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run`]; additionally reports a deadlock if the
    /// queue drains before `target` finishes.
    ///
    /// # Panics
    ///
    /// Propagates panics from simulated threads.
    pub fn run_until_finished(&mut self, target: &ThreadHandle) -> Result<SimReport, SimError> {
        self.run_inner(Some(target.id()))
    }

    fn run_inner(&mut self, stop_on: Option<ThreadId>) -> Result<SimReport, SimError> {
        // The stop/limit checks live inside `Core::step` so the whole event
        // loop — including skipping cancelled wakes — runs under a single
        // state lock acquisition per resumption. Most events never even
        // reach this loop: blocking threads hand the turn directly to each
        // other and the scheduler only sees chain breaks.
        loop {
            match self.core.step(stop_on) {
                StepResult::Progress => {}
                StepResult::TargetFinished => return Ok(self.report()),
                StepResult::LimitExceeded => {
                    let limit = self
                        .core
                        .state
                        .lock()
                        .max_events
                        .expect("limit was configured");
                    return Err(SimError::EventLimitExceeded { limit });
                }
                StepResult::Drained => break,
            }
        }
        // Queue drained: every non-daemon thread must have finished.
        let blocked: Vec<(String, &'static str)> = {
            let st = self.core.state.lock();
            st.threads
                .iter()
                .filter(|t| t.state != ThreadState::Finished && !t.daemon)
                .map(|t| (t.name.to_string(), t.blocked_on))
                .collect()
        };
        if !blocked.is_empty() || stop_on.is_some() {
            // `stop_on` reaching here means the target never finished.
            return Err(SimError::Deadlock { blocked });
        }
        Ok(self.report())
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.state.lock().now
    }

    /// Returns a snapshot report of the accounting so far.
    pub fn report(&self) -> SimReport {
        let st = self.core.state.lock();
        SimReport {
            final_time: st.now,
            events: st.events_processed,
            procs: st
                .procs
                .iter()
                .map(|p| ProcReport {
                    name: p.name.clone(),
                    busy: p.busy,
                    interrupt_time: p.interrupt_time,
                    switches: p.switches,
                })
                .collect(),
        }
    }

    /// Starts structured tracing with the default ring-buffer capacity
    /// (1 Mi events). See [`crate::trace`].
    pub fn enable_tracing(&mut self) {
        self.enable_tracing_with_capacity(1 << 20);
    }

    /// Starts structured tracing, keeping at most `cap` most-recent events.
    pub fn enable_tracing_with_capacity(&mut self, cap: usize) {
        let mut st = self.core.state.lock();
        st.tracer = Some(Tracer::new(cap));
        self.core
            .trace_on
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Stops structured tracing and discards buffered events and counters.
    pub fn disable_tracing(&mut self) {
        self.core
            .trace_on
            .store(false, std::sync::atomic::Ordering::Relaxed);
        self.core.state.lock().tracer = None;
    }

    /// Drains and returns buffered structured events (oldest first).
    /// Counters are unaffected; tracing stays enabled.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        match self.core.state.lock().tracer.as_mut() {
            Some(tr) => tr.drain(),
            None => Vec::new(),
        }
    }

    /// Returns a copy of buffered structured events without draining.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match self.core.state.lock().tracer.as_ref() {
            Some(tr) => tr.snapshot(),
            None => Vec::new(),
        }
    }

    /// Returns aggregate per-`(processor, layer, name)` counters, sorted.
    pub fn trace_counters(&self) -> Vec<CounterSnapshot> {
        match self.core.state.lock().tracer.as_ref() {
            Some(tr) => tr.counters(),
            None => Vec::new(),
        }
    }

    /// Number of events evicted from the ring buffer so far.
    pub fn trace_dropped(&self) -> u64 {
        match self.core.state.lock().tracer.as_ref() {
            Some(tr) => tr.dropped(),
            None => 0,
        }
    }

    /// Serializes currently buffered events as chrome://tracing JSON
    /// (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn chrome_trace_json(&self) -> String {
        let events = self.trace_events();
        crate::trace::chrome_trace_json(&events, &self.proc_names(), &self.thread_names())
    }

    /// Names of all processors, indexed by [`ProcId`].
    pub fn proc_names(&self) -> Vec<String> {
        self.core
            .state
            .lock()
            .procs
            .iter()
            .map(|p| p.name.clone())
            .collect()
    }

    /// Names of all threads, indexed by [`ThreadId`].
    pub fn thread_names(&self) -> Vec<String> {
        self.core
            .state
            .lock()
            .threads
            .iter()
            .map(|t| t.name.to_string())
            .collect()
    }

    /// Starts collecting trace messages emitted via [`Ctx::trace`].
    pub fn enable_trace(&mut self) {
        self.core.state.lock().trace = Some(Vec::new());
    }

    /// Drains and returns collected trace lines, formatted
    /// `T+<time> [<thread>] <message>`.
    pub fn take_trace(&mut self) -> Vec<String> {
        let mut st = self.core.state.lock();
        match st.trace.take() {
            Some(buf) => {
                st.trace = Some(Vec::new());
                buf.iter()
                    .map(|e| format!("T+{} [{}] {}", e.time, e.thread, e.message))
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// Number of events still queued (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.core.state.lock().queue_len()
    }

    /// Number of cancelled (dead-generation) wakes consumed so far
    /// (diagnostics). Each still advanced the clock when popped — virtual
    /// time is independent of how cheaply they are recognized.
    pub fn stale_wakes(&self) -> u64 {
        self.core.state.lock().wake.stale()
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        self.core.initiate_shutdown();
    }
}
