//! The simulation driver: owns the virtual clock and runs the event loop —
//! the classic serial loop for single-lane simulations, or the conservative
//! windowed parallel loop (see [`crate::shard`]) once lanes exist.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::Backend;
use crate::channel::SimChannel;
use crate::core::{
    install_quiet_shutdown_hook, Core, ProcId, StepResult, ThreadId, ThreadState, WakeStatus,
};
use crate::ctx::Ctx;
use crate::fiber;
use crate::queue::QueueStats;
use crate::shard::{self, FlushResult, LaneId, LaneSlot, ShardCount, WindowGate, XPort, XSender};
use crate::time::{SimDuration, SimTime};
use crate::trace::{CounterSnapshot, TraceEvent, Tracer};

/// Errors reported by [`Simulation::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while non-daemon threads were still blocked.
    Deadlock {
        /// `(thread name, what it was blocked on)` for each stuck thread.
        blocked: Vec<(String, &'static str)>,
    },
    /// The configured event budget was exhausted (see
    /// [`Simulation::set_max_events`]).
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlocked; blocked threads: ")?;
                for (i, (name, on)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name} (on {on})")?;
                }
                Ok(())
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "simulation exceeded the event limit of {limit}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Per-processor accounting for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcReport {
    /// Processor name given to [`Simulation::add_processor`].
    pub name: String,
    /// Total thread-level CPU occupancy.
    pub busy: SimDuration,
    /// Total interrupt-level CPU time.
    pub interrupt_time: SimDuration,
    /// Number of charged context switches.
    pub switches: u64,
}

/// Summary of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
    /// Total wake events processed (cumulative across runs).
    pub events: u64,
    /// Per-processor accounting.
    pub procs: Vec<ProcReport>,
}

/// Window-engine accounting for the conservative windowed driver,
/// cumulative across runs of one [`Simulation`] (see
/// [`Simulation::window_stats`]). All-zero when only the classic serial
/// loop ever ran.
///
/// Everything except `barrier_wait_ns` is deterministic for a given
/// program, seed, and topology — independent of shard count and backend.
/// `barrier_wait_ns` is wall-clock time the coordinator spent waiting for
/// worker runners at the window gate and must never feed a result hash.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Windows opened (rounds of the windowed driver).
    pub windows: u64,
    /// Wake events processed under the windowed driver.
    pub events: u64,
    /// Cross-lane flushes that had traffic to merge.
    pub flushes: u64,
    /// Cross-lane flushes elided by the dirty-flag fast path (one relaxed
    /// atomic swap, no lock).
    pub flushes_elided: u64,
    /// Lane-windows skipped because the lane's published next event lay at
    /// or past the window edge (no state lock taken).
    pub lanes_skipped: u64,
    /// Wall-clock nanoseconds the coordinator spent in
    /// [`crate::shard`]'s window gate waiting for worker runners. Zero on
    /// single-runner hosts (the coordinator drives every lane itself).
    pub barrier_wait_ns: u64,
}

/// Handle to a simulated thread.
///
/// Returned by the `spawn` family on [`Simulation`] and [`Ctx`]. Unlike
/// `std::thread::JoinHandle` it is clonable and joining is idempotent.
#[derive(Clone)]
pub struct ThreadHandle {
    core: Arc<Core>,
    tid: ThreadId,
}

impl fmt::Debug for ThreadHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadHandle")
            .field("thread", &self.tid)
            .finish()
    }
}

impl ThreadHandle {
    pub(crate) fn new(core: Arc<Core>, tid: ThreadId) -> Self {
        ThreadHandle { core, tid }
    }

    /// Returns the thread's identifier.
    pub fn id(&self) -> ThreadId {
        self.tid
    }

    /// Returns `true` once the thread body has returned.
    pub fn is_finished(&self) -> bool {
        self.core.state.lock().threads[self.tid.0].state == ThreadState::Finished
    }

    /// Blocks the calling simulated thread until this thread finishes.
    ///
    /// Caller and target must live on the same lane: a cross-lane join
    /// would schedule a wake into another lane's queue, bypassing the
    /// lookahead bound that makes parallel windows safe. Route cross-lane
    /// completion through a [`crate::XSender`] link instead.
    pub fn join(&self, ctx: &Ctx) {
        debug_assert!(
            Arc::ptr_eq(&self.core, ctx.core()),
            "cross-lane join: use a cross-lane link instead"
        );
        loop {
            {
                let mut st = self.core.state.lock();
                if st.threads[self.tid.0].state == ThreadState::Finished {
                    return;
                }
                let wid = st.prepare_block(ctx.thread_id(), "join");
                st.threads[self.tid.0].joiners.push((ctx.thread_id(), wid));
            }
            if ctx.yield_blocked() == WakeStatus::Shutdown {
                crate::core::shutdown_unwind_unless_panicking();
                return;
            }
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// A `Simulation` owns processors (CPUs), simulated threads, and the virtual
/// clock. The same seed and the same program yield byte-identical schedules.
///
/// # Examples
///
/// ```
/// use desim::{Simulation, us};
///
/// let mut sim = Simulation::new(42);
/// let cpu = sim.add_processor("m0");
/// sim.spawn(cpu, "worker", |ctx| {
///     ctx.compute(us(100));
/// });
/// let report = sim.run().expect("run");
/// assert_eq!(report.final_time.as_micros_f64(), 100.0);
/// ```
pub struct Simulation {
    /// Lane 0: the default lane every pre-lane API targets.
    core: Arc<Core>,
    /// Lanes 1.. (see [`Simulation::add_lane`]).
    extra: Vec<Arc<Core>>,
    /// Cross-lane links in registration order — which is the barrier-time
    /// flush order, part of the deterministic merge.
    xports: Vec<Arc<dyn XPort>>,
    shards: ShardCount,
    /// Cumulative window-engine accounting (see [`Simulation::window_stats`]).
    window_stats: WindowStats,
    seed: u64,
    fiber_stack_size: usize,
    /// Per-lane queue capacity hint (see
    /// [`SimulationBuilder::expected_threads`]); mirrored onto added lanes.
    expected_threads: usize,
    default_switch_cost: SimDuration,
    // Configuration mirrored onto lanes created after the setter ran:
    max_events: Option<u64>,
    perturb_seed: Option<u64>,
    tracing_cap: Option<usize>,
    string_trace: bool,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.core.state.lock();
        f.debug_struct("Simulation")
            .field("now", &st.now)
            .field("threads", &st.threads.len())
            .field("procs", &st.procs.len())
            .field("lanes", &(1 + self.extra.len()))
            .finish()
    }
}

/// Configures and creates a [`Simulation`].
///
/// Obtained from [`Simulation::builder`]. Every knob has a default, so
/// `Simulation::builder().build()` is equivalent to `Simulation::new(0)`.
///
/// # Examples
///
/// ```
/// use desim::{Backend, Simulation};
///
/// let sim = Simulation::builder()
///     .seed(42)
///     .backend(Backend::OsThreads)
///     .build();
/// assert_eq!(sim.backend(), Backend::OsThreads);
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    seed: u64,
    backend: Option<Backend>,
    fiber_stack_size: usize,
    shards: Option<usize>,
    expected_threads: usize,
}

impl SimulationBuilder {
    /// Seed for all simulation randomness (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Explicit execution backend, outranking the `DESIM_BACKEND`
    /// environment variable and [`crate::set_backend_override`]. Requesting
    /// [`Backend::Fibers`] on a target without the vendored context switch
    /// silently degrades to [`Backend::OsThreads`] (observable behaviour is
    /// identical).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Usable stack size for fiber-backed simulated threads (default
    /// 1 MiB). Pages are mapped lazily, so a generous size costs only
    /// address space; each stack additionally gets one guard page. Ignored
    /// by the OS-thread backend.
    pub fn fiber_stack_size(mut self, bytes: usize) -> Self {
        self.fiber_stack_size = bytes;
        self
    }

    /// Explicit shard count — the maximum number of runner OS threads for
    /// windowed parallel execution (`0` = auto, one per host core) —
    /// outranking the `DESIM_SHARDS` environment variable and
    /// [`crate::set_shards_override`]. Effective parallelism is
    /// `min(shards, lanes)`, so the knob never affects a single-lane
    /// simulation, and it never affects observable results on any
    /// simulation — only wall-clock time (see [`crate::shard`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Capacity hint: the expected number of simulated threads on the
    /// busiest scheduler lane (for a single-lane world, the whole world).
    /// Boot schedules one start wake per spawned thread — all at the same
    /// instant — so every lane's event queue pre-sizes its storage from
    /// this instead of re-allocating while the world spins up. Purely a
    /// performance hint: any value (including the 0 default) is observably
    /// identical.
    pub fn expected_threads(mut self, threads: usize) -> Self {
        self.expected_threads = threads;
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Simulation {
        install_quiet_shutdown_hook();
        let backend = match self.backend {
            Some(b) => b.resolve(),
            None => Backend::default_backend(),
        };
        let shards = match self.shards {
            Some(0) => ShardCount::Auto,
            Some(n) => ShardCount::Fixed(n),
            None => shard::default_shards(),
        };
        Simulation {
            core: Core::new(
                self.seed,
                backend,
                self.fiber_stack_size,
                self.expected_threads,
            ),
            extra: Vec::new(),
            xports: Vec::new(),
            shards,
            window_stats: WindowStats::default(),
            seed: self.seed,
            fiber_stack_size: self.fiber_stack_size,
            expected_threads: self.expected_threads,
            default_switch_cost: SimDuration::ZERO,
            max_events: None,
            perturb_seed: None,
            tracing_cap: None,
            string_trace: false,
        }
    }
}

impl Simulation {
    /// Creates a simulation seeded with `seed` for all randomness, on the
    /// default execution backend (see [`Backend::default_backend`]).
    pub fn new(seed: u64) -> Self {
        Self::builder().seed(seed).build()
    }

    /// Returns a builder for configuring seed, execution backend, and
    /// fiber stack size.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder {
            seed: 0,
            backend: None,
            fiber_stack_size: fiber::DEFAULT_STACK_SIZE,
            shards: None,
            expected_threads: 0,
        }
    }

    /// The execution backend this simulation runs its threads on.
    pub fn backend(&self) -> Backend {
        self.core.backend()
    }

    /// All lanes, lane 0 first.
    fn cores(&self) -> impl Iterator<Item = &Arc<Core>> {
        std::iter::once(&self.core).chain(self.extra.iter())
    }

    fn lane_core(&self, lane: LaneId) -> &Arc<Core> {
        if lane.0 == 0 {
            &self.core
        } else {
            self.extra
                .get(lane.index() - 1)
                .unwrap_or_else(|| panic!("unknown lane {lane}; call add_lane first"))
        }
    }

    /// Number of scheduler lanes (at least 1).
    pub fn lanes(&self) -> usize {
        1 + self.extra.len()
    }

    /// The effective runner count a windowed run would use on this host:
    /// the configured shard count clamped to the lane count.
    pub fn shards(&self) -> usize {
        self.shards.resolve().min(self.lanes()).max(1)
    }

    /// The lookahead windowed execution would use: the minimum delay over
    /// all cross-lane links, or `None` when no links exist (lanes are then
    /// fully independent and each runs to completion in one window).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.xports.iter().map(|x| x.min_delay()).min()
    }

    /// Adds a scheduler lane and returns its id.
    ///
    /// The lane is a complete independent scheduler: its own event queue,
    /// clock, sequence counter, RNG (seeded deterministically from the
    /// simulation seed and the lane index), perturbation stream, and trace
    /// buffers. Processors and threads are placed on it with
    /// [`Simulation::add_processor_on`] / [`Simulation::spawn_on_lane`];
    /// lanes interact only through [`Simulation::cross_link`]. With more
    /// than one lane, [`Simulation::run`] switches to conservative windowed
    /// execution — observably identical to serial, parallel up to the
    /// configured shard count (see [`crate::shard`]).
    pub fn add_lane(&mut self) -> LaneId {
        let idx = self.extra.len() + 1;
        let core = Core::new(
            shard::lane_seed(self.seed, idx as u64),
            self.backend(),
            self.fiber_stack_size,
            self.expected_threads,
        );
        {
            let mut st = core.state.lock();
            st.max_events = self.max_events;
            if let Some(ps) = self.perturb_seed {
                use rand::rngs::SmallRng;
                use rand::SeedableRng;
                st.perturb = Some(SmallRng::seed_from_u64(shard::lane_seed(ps, idx as u64)));
            }
            if let Some(cap) = self.tracing_cap {
                st.tracer = Some(Tracer::new(cap));
                core.trace_on
                    .store(true, std::sync::atomic::Ordering::Relaxed);
            }
            if self.string_trace {
                st.trace = Some(Vec::new());
            }
        }
        self.extra.push(core);
        LaneId(idx as u32)
    }

    /// Adds a processor on the given lane (see [`Simulation::add_processor`]).
    pub fn add_processor_on(&mut self, lane: LaneId, name: &str) -> ProcId {
        self.lane_core(lane)
            .add_processor(name, self.default_switch_cost)
    }

    /// Adds a processor with an explicit context-switch cost on the given
    /// lane (the lane-aware form of
    /// [`Simulation::add_processor_with_switch_cost`]). Processor ids are
    /// per-lane indices: the returned id is only meaningful together with
    /// `lane` and must be paired with [`Simulation::spawn_on_lane`] /
    /// [`Simulation::spawn_daemon_on_lane`] on the same lane.
    pub fn add_processor_with_switch_cost_on(
        &mut self,
        lane: LaneId,
        name: &str,
        cost: SimDuration,
    ) -> ProcId {
        self.lane_core(lane).add_processor(name, cost)
    }

    /// Spawns a simulated thread on a processor of the given lane.
    ///
    /// The returned handle must only be joined from the same lane.
    pub fn spawn_on_lane<F>(&mut self, lane: LaneId, proc: ProcId, name: &str, f: F) -> ThreadHandle
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let core = Arc::clone(self.lane_core(lane));
        let tid = core.spawn_thread(proc, name, false, f);
        ThreadHandle::new(core, tid)
    }

    /// Spawns a daemon thread on a processor of the given lane (see
    /// [`Simulation::spawn_daemon`]).
    pub fn spawn_daemon_on_lane<F>(
        &mut self,
        lane: LaneId,
        proc: ProcId,
        name: &str,
        f: F,
    ) -> ThreadHandle
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let core = Arc::clone(self.lane_core(lane));
        let tid = core.spawn_thread(proc, name, true, f);
        ThreadHandle::new(core, tid)
    }

    /// Creates a cross-lane link: the only legal way for code on
    /// `src_lane` to affect `dst_lane`.
    ///
    /// Values sent through the returned [`XSender`] arrive on the `dst`
    /// channel exactly `delay` after the send instant, delivered by an
    /// injection event the windowed driver arms directly into `dst_lane`'s
    /// event queue at flush time — so receivers see ordinary in-lane
    /// channel messages with the correct timestamp and pick order, with no
    /// daemon wake or channel hop charged per frame. `delay` must be
    /// positive: the minimum over all links is the lookahead that makes
    /// parallel windows safe. `dst_proc` must be a processor of `dst_lane`
    /// (kept for placement symmetry with the rest of the lane API), and the
    /// sender must only be used from `src_lane` (debug-asserted on send).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is zero, the lanes are equal, or `dst_proc` is not
    /// a processor of `dst_lane`.
    pub fn cross_link<T: Send + 'static>(
        &mut self,
        name: &str,
        delay: SimDuration,
        src_lane: LaneId,
        dst_lane: LaneId,
        dst_proc: ProcId,
        dst: SimChannel<T>,
    ) -> XSender<T> {
        assert_ne!(
            src_lane, dst_lane,
            "cross_link connects two different lanes; same-lane traffic \
             uses plain channels"
        );
        assert!(
            dst_proc.0 < self.lane_core(dst_lane).state.lock().procs.len(),
            "cross_link {name}: {dst_proc:?} is not a processor of {dst_lane}"
        );
        let (sender, port) = shard::new_link(
            delay,
            self.lane_core(src_lane),
            self.lane_core(dst_lane),
            dst_lane.index(),
            dst,
        );
        self.xports.push(port);
        sender
    }

    /// Sets the context-switch cost used for processors added *afterwards*.
    pub fn set_default_switch_cost(&mut self, cost: SimDuration) {
        self.default_switch_cost = cost;
    }

    /// Caps the total number of wake events; [`Simulation::run`] returns
    /// [`SimError::EventLimitExceeded`] past the cap. A safety net against
    /// runaway protocols (e.g. retransmission storms).
    ///
    /// The budget lives in the shared scheduler state because both the
    /// scheduler and the thread-side hand-off fast path check it before
    /// every pop.
    pub fn set_max_events(&mut self, limit: u64) {
        self.max_events = Some(limit);
        for core in self.cores() {
            core.state.lock().max_events = Some(limit);
        }
    }

    /// Enables seeded scheduler perturbation: among wake events scheduled
    /// for the *same* virtual instant, the pick order is shuffled by a
    /// dedicated RNG seeded with `seed` instead of following insertion
    /// order. Virtual time is never violated, the perturbation is fully
    /// deterministic per seed, and the protocol-visible RNG (seeded by
    /// [`Simulation::new`]) is untouched. Call before spawning threads so
    /// even the initial start order is covered.
    ///
    /// This is a chaos-testing hook: correct protocols must not depend on
    /// the scheduler's same-instant FIFO order.
    pub fn set_schedule_perturbation(&mut self, seed: u64) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        self.perturb_seed = Some(seed);
        for (idx, core) in self.cores().enumerate() {
            // Per-lane derived streams (lane 0 keeps `seed` verbatim), so a
            // lane's tie draws depend only on its own schedule — never on
            // how other lanes interleave.
            core.state.lock().perturb =
                Some(SmallRng::seed_from_u64(shard::lane_seed(seed, idx as u64)));
        }
    }

    /// Adds a processor (one CPU) and returns its id.
    pub fn add_processor(&mut self, name: &str) -> ProcId {
        self.core.add_processor(name, self.default_switch_cost)
    }

    /// Adds a processor with an explicit context-switch cost.
    pub fn add_processor_with_switch_cost(&mut self, name: &str, cost: SimDuration) -> ProcId {
        self.core.add_processor(name, cost)
    }

    /// Spawns a simulated thread on `proc`; it starts when the run begins.
    pub fn spawn<F>(&mut self, proc: ProcId, name: &str, f: F) -> ThreadHandle
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let tid = self.core.spawn_thread(proc, name, false, f);
        ThreadHandle::new(Arc::clone(&self.core), tid)
    }

    /// Spawns a daemon thread: it may remain blocked forever without the run
    /// being reported as a deadlock (e.g. protocol receive daemons).
    pub fn spawn_daemon<F>(&mut self, proc: ProcId, name: &str, f: F) -> ThreadHandle
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let tid = self.core.spawn_thread(proc, name, true, f);
        ThreadHandle::new(Arc::clone(&self.core), tid)
    }

    /// Runs until the event queue drains.
    ///
    /// Daemon threads blocked at that point are expected; any other blocked
    /// thread is a deadlock.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if non-daemon threads are still blocked when
    /// the queue drains, [`SimError::EventLimitExceeded`] if the event budget
    /// is exhausted.
    ///
    /// # Panics
    ///
    /// Propagates panics from simulated threads.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        self.run_inner(None)
    }

    /// Runs until `target` finishes (or the queue drains first).
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run`]; additionally reports a deadlock if the
    /// queue drains before `target` finishes.
    ///
    /// # Panics
    ///
    /// Propagates panics from simulated threads.
    pub fn run_until_finished(&mut self, target: &ThreadHandle) -> Result<SimReport, SimError> {
        let lane = self
            .cores()
            .position(|c| Arc::ptr_eq(c, &target.core))
            .expect("thread handle belongs to another simulation");
        self.run_inner(Some((lane, target.id())))
    }

    fn run_inner(&mut self, stop_on: Option<(usize, ThreadId)>) -> Result<SimReport, SimError> {
        if self.extra.is_empty() && self.xports.is_empty() {
            return self.run_classic(stop_on.map(|(_, t)| t));
        }
        self.run_windowed(stop_on)
    }

    /// The single-lane event loop — byte-identical to what every simulation
    /// ran before lanes existed (the windowed driver is dispatched only
    /// when a second lane or a link exists).
    fn run_classic(&mut self, stop_on: Option<ThreadId>) -> Result<SimReport, SimError> {
        // The stop/limit checks live inside `Core::step` so the whole event
        // loop — including skipping cancelled wakes — runs under a single
        // state lock acquisition per resumption. Most events never even
        // reach this loop: blocking threads hand the turn directly to each
        // other and the scheduler only sees chain breaks.
        loop {
            match self.core.step(stop_on) {
                StepResult::Progress => {}
                StepResult::TargetFinished => return Ok(self.report()),
                StepResult::LimitExceeded => {
                    let limit = self
                        .core
                        .state
                        .lock()
                        .max_events
                        .expect("limit was configured");
                    return Err(SimError::EventLimitExceeded { limit });
                }
                StepResult::WindowEdge => unreachable!("window limit outside windowed execution"),
                StepResult::Drained => break,
            }
        }
        self.drained_result(stop_on.is_some())
    }

    /// Queue(s) drained: every non-daemon thread must have finished, and a
    /// `stop_on` target reaching this point never finished.
    fn drained_result(&self, had_target: bool) -> Result<SimReport, SimError> {
        let mut blocked: Vec<(String, &'static str)> = Vec::new();
        for core in self.cores() {
            let st = core.state.lock();
            blocked.extend(
                st.threads
                    .iter()
                    .filter(|t| t.state != ThreadState::Finished && !t.daemon)
                    .map(|t| (t.name.to_string(), t.blocked_on)),
            );
        }
        if !blocked.is_empty() || had_target {
            return Err(SimError::Deadlock { blocked });
        }
        Ok(self.report())
    }

    /// The conservative windowed driver (see [`crate::shard`] for the
    /// scheme and the bit-identity argument). Structure per round, with
    /// every lane stopped between the gate's `done` and the next `open`:
    ///
    /// 1. flush every cross-lane link, in registration order (dirty links
    ///    only — a quiet link costs one atomic swap);
    /// 2. stop if the target finished, a lane hit its event budget, or the
    ///    summed budget is exhausted — all read from the lanes' published
    ///    atomic slots, no state lock;
    /// 3. `T_min` ← earliest published instant over all lanes (none = done);
    /// 4. open the window `[T_min, T_min + lookahead)` on every lane
    ///    (unbounded when no links exist — the lanes are independent);
    /// 5. advance all lanes to their window edge, in parallel across the
    ///    runner pool (lane→runner assignment is round-robin; any
    ///    assignment is correct, parallelism only affects wall-clock). A
    ///    lane whose published next event lies at or past the window edge
    ///    is skipped without taking its state lock; each driven lane
    ///    republishes its slot under the one lock acquisition it already
    ///    pays.
    fn run_windowed(&mut self, stop: Option<(usize, ThreadId)>) -> Result<SimReport, SimError> {
        use std::panic;
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering as AO};
        use std::time::Instant;

        let cores: Vec<Arc<Core>> = self.cores().cloned().collect();
        let lanes = cores.len();
        let runners = self.shards();
        let lookahead = self.lookahead();

        const OUT_PAUSED: u8 = 0; // Drained or WindowEdge
        const OUT_LIMIT: u8 = 1;
        const OUT_TARGET: u8 = 2;
        let outcomes: Vec<AtomicU8> = (0..lanes).map(|_| AtomicU8::new(OUT_PAUSED)).collect();
        // A target that already finished in an earlier run must stop the
        // driver before it runs a window (the pre-diet driver checked the
        // target's thread state directly at the barrier).
        if let Some((sl, t)) = stop {
            if cores[sl].state.lock().threads[t.0].state == ThreadState::Finished {
                outcomes[sl].store(OUT_TARGET, AO::Relaxed);
            }
        }
        // Published lane positions: the coordinator's entire between-window
        // bookkeeping (`T_min`, budget, target, idle-lane skip) reads these
        // slots instead of taking lane state locks.
        let slots: Vec<LaneSlot> = cores
            .iter()
            .map(|c| {
                let st = c.state.lock();
                LaneSlot {
                    next: AtomicU64::new(st.peek_time().map_or(u64::MAX, |t| t.as_nanos())),
                    events: AtomicU64::new(st.events_processed),
                }
            })
            .collect();
        let start_events: u64 = slots.iter().map(|s| s.events.load(AO::Relaxed)).sum();
        let wend = AtomicU64::new(u64::MAX);
        let skipped = AtomicU64::new(0);
        let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
        let gate = WindowGate::new(runners - 1);
        let exit = AtomicBool::new(false);
        let mut stats = WindowStats::default();

        // Advance every lane owned by `runner` to its window edge, then
        // republish the lane's slot. Lanes with nothing below the window
        // edge are skipped lock-free (their slots are already current).
        let drive = |runner: usize| {
            let w = wend.load(AO::Acquire);
            for li in (runner..lanes).step_by(runners) {
                if slots[li].next.load(AO::Relaxed) >= w {
                    skipped.fetch_add(1, AO::Relaxed);
                    continue;
                }
                let core = &cores[li];
                let stop_t = stop.and_then(|(sl, t)| (sl == li).then_some(t));
                let result = panic::catch_unwind(panic::AssertUnwindSafe(|| loop {
                    match core.step(stop_t) {
                        StepResult::Progress => {}
                        StepResult::Drained | StepResult::WindowEdge => break OUT_PAUSED,
                        StepResult::TargetFinished => break OUT_TARGET,
                        StepResult::LimitExceeded => break OUT_LIMIT,
                    }
                }));
                match result {
                    Ok(o) => {
                        {
                            let st = core.state.lock();
                            slots[li].next.store(
                                st.peek_time().map_or(u64::MAX, |t| t.as_nanos()),
                                AO::Relaxed,
                            );
                            slots[li].events.store(st.events_processed, AO::Relaxed);
                        }
                        outcomes[li].store(o, AO::Release);
                    }
                    Err(p) => {
                        outcomes[li].store(OUT_PAUSED, AO::Release);
                        panics.lock().push((li, p));
                    }
                }
            }
        };

        // Ok(true) = target finished, Ok(false) = drained, Err(()) = budget.
        let outcome: Result<bool, ()> = std::thread::scope(|s| {
            for r in 1..runners {
                let (drive, gate, exit) = (&drive, &gate, &exit);
                std::thread::Builder::new()
                    .name(format!("desim-shard-{r}"))
                    .spawn_scoped(s, move || {
                        let mut gen = 0u64;
                        loop {
                            gen = gate.wait_open(gen);
                            if exit.load(AO::Acquire) {
                                break;
                            }
                            drive(r);
                            gate.done();
                        }
                    })
                    .expect("failed to spawn shard runner");
            }
            // Committed horizon: every instant below it is finished history
            // on every lane, so cross-lane flushes must land at or past it.
            let mut floor = SimTime::ZERO;
            let out = loop {
                for xp in &self.xports {
                    match xp.flush(floor) {
                        FlushResult::Quiet => stats.flushes_elided += 1,
                        FlushResult::Merged => stats.flushes += 1,
                        FlushResult::Armed(t) => {
                            stats.flushes += 1;
                            // Fold the armed instant into the destination's
                            // published position so `T_min` and the skip see
                            // it. Coordinator-only phase: plain load/store.
                            let slot = &slots[xp.dst_lane()].next;
                            let t_ns = t.as_nanos();
                            if t_ns < slot.load(AO::Relaxed) {
                                slot.store(t_ns, AO::Relaxed);
                            }
                        }
                    }
                }
                if let Some((sl, _)) = stop {
                    if outcomes[sl].load(AO::Acquire) == OUT_TARGET {
                        break Ok(true);
                    }
                }
                if outcomes.iter().any(|o| o.load(AO::Acquire) == OUT_LIMIT) {
                    break Err(());
                }
                if let Some(limit) = self.max_events {
                    // Per-lane budgets already bound each lane to `limit`;
                    // the summed check keeps an N-lane run from processing
                    // up to N× it.
                    let total: u64 = slots.iter().map(|sl| sl.events.load(AO::Relaxed)).sum();
                    if total >= limit {
                        break Err(());
                    }
                }
                let t_min = slots
                    .iter()
                    .map(|sl| sl.next.load(AO::Relaxed))
                    .min()
                    .expect("at least one lane");
                if t_min == u64::MAX {
                    break Ok(false);
                }
                let wend_ns = match lookahead {
                    Some(la) => (SimTime::from_nanos(t_min) + la).as_nanos(),
                    None => u64::MAX,
                };
                wend.store(wend_ns, AO::Relaxed);
                for c in &cores {
                    c.window_limit.store(wend_ns, AO::Relaxed);
                }
                #[cfg(debug_assertions)]
                for c in &cores {
                    c.state.lock().set_window_floor(SimTime::from_nanos(t_min));
                }
                stats.windows += 1;
                gate.open();
                drive(0);
                if runners > 1 {
                    let t0 = Instant::now();
                    gate.wait_done();
                    stats.barrier_wait_ns += t0.elapsed().as_nanos() as u64;
                }
                if wend_ns != u64::MAX {
                    floor = SimTime::from_nanos(wend_ns);
                }
                if !panics.lock().is_empty() {
                    // Release the runner pool before unwinding, or it would
                    // wait at the gate forever and the scope never joins.
                    exit.store(true, AO::Release);
                    gate.open();
                    let (_, payload) = {
                        let mut ps = panics.lock();
                        ps.sort_by_key(|(li, _)| *li);
                        ps.remove(0)
                    };
                    // The panicking lane already shut itself down inside
                    // `Core::step`; shut the rest down before unwinding so
                    // every fiber unwinds cleanly (`Drop` becomes a no-op).
                    for c in &cores {
                        c.initiate_shutdown();
                    }
                    panic::resume_unwind(payload);
                }
            };
            exit.store(true, AO::Release);
            gate.open();
            out
        });

        // Leave no window bound behind: post-run accessors and later runs
        // (multi-phase workloads re-enter `run`) expect unbounded lanes.
        for c in &cores {
            c.window_limit
                .store(u64::MAX, std::sync::atomic::Ordering::Relaxed);
        }
        #[cfg(debug_assertions)]
        for c in &cores {
            c.state.lock().set_window_floor(SimTime::ZERO);
        }
        stats.events = slots
            .iter()
            .map(|sl| sl.events.load(std::sync::atomic::Ordering::Relaxed))
            .sum::<u64>()
            - start_events;
        stats.lanes_skipped = skipped.load(std::sync::atomic::Ordering::Relaxed);
        self.window_stats.windows += stats.windows;
        self.window_stats.events += stats.events;
        self.window_stats.flushes += stats.flushes;
        self.window_stats.flushes_elided += stats.flushes_elided;
        self.window_stats.lanes_skipped += stats.lanes_skipped;
        self.window_stats.barrier_wait_ns += stats.barrier_wait_ns;
        match outcome {
            Ok(true) => Ok(self.report()),
            Ok(false) => self.drained_result(stop.is_some()),
            Err(()) => Err(SimError::EventLimitExceeded {
                limit: self.max_events.expect("limit was configured"),
            }),
        }
    }

    /// Window-engine accounting, cumulative across runs (all-zero when only
    /// the classic serial loop ever ran). Everything except
    /// `barrier_wait_ns` is deterministic per program/seed/topology —
    /// independent of shard count and backend; `barrier_wait_ns` is
    /// wall-clock and must never feed a result hash.
    pub fn window_stats(&self) -> WindowStats {
        self.window_stats
    }

    /// Returns the current virtual time (on a multi-lane simulation: the
    /// most-advanced lane's clock).
    pub fn now(&self) -> SimTime {
        self.cores()
            .map(|c| c.state.lock().now)
            .max()
            .expect("at least one lane")
    }

    /// Returns one lane's virtual clock (lanes advance independently
    /// between window barriers, so clocks legitimately differ).
    pub fn lane_now(&self, lane: LaneId) -> SimTime {
        self.lane_core(lane).state.lock().now
    }

    /// Returns a snapshot report of the accounting so far. Multi-lane:
    /// events are summed, `final_time` is the most-advanced lane's clock,
    /// and processors are listed lane-major (lane 0's first).
    pub fn report(&self) -> SimReport {
        let mut final_time = SimTime::ZERO;
        let mut events = 0u64;
        let mut procs = Vec::new();
        for core in self.cores() {
            let st = core.state.lock();
            final_time = final_time.max(st.now);
            events += st.events_processed;
            procs.extend(st.procs.iter().map(|p| ProcReport {
                name: p.name.clone(),
                busy: p.busy,
                interrupt_time: p.interrupt_time,
                switches: p.switches,
            }));
        }
        SimReport {
            final_time,
            events,
            procs,
        }
    }

    /// Starts structured tracing with the default ring-buffer capacity
    /// (1 Mi events). See [`crate::trace`].
    pub fn enable_tracing(&mut self) {
        self.enable_tracing_with_capacity(1 << 20);
    }

    /// Starts structured tracing, keeping at most `cap` most-recent events
    /// (per lane, on a multi-lane simulation).
    pub fn enable_tracing_with_capacity(&mut self, cap: usize) {
        self.tracing_cap = Some(cap);
        for core in self.cores() {
            core.state.lock().tracer = Some(Tracer::new(cap));
            core.trace_on
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Stops structured tracing and discards buffered events and counters.
    pub fn disable_tracing(&mut self) {
        self.tracing_cap = None;
        for core in self.cores() {
            core.trace_on
                .store(false, std::sync::atomic::Ordering::Relaxed);
            core.state.lock().tracer = None;
        }
    }

    /// Drains and returns buffered structured events (oldest first).
    /// Counters are unaffected; tracing stays enabled. Lane 0 only — see
    /// [`Simulation::lane_trace_events`] for other lanes (thread and
    /// processor ids in trace events are lane-local).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        match self.core.state.lock().tracer.as_mut() {
            Some(tr) => tr.drain(),
            None => Vec::new(),
        }
    }

    /// Returns a copy of buffered structured events without draining.
    /// Lane 0 only; see [`Simulation::lane_trace_events`].
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.lane_trace_events(LaneId::ZERO)
    }

    /// Returns a copy of one lane's buffered structured events without
    /// draining. Thread and processor ids are local to that lane.
    pub fn lane_trace_events(&self, lane: LaneId) -> Vec<TraceEvent> {
        match self.lane_core(lane).state.lock().tracer.as_ref() {
            Some(tr) => tr.snapshot(),
            None => Vec::new(),
        }
    }

    /// Returns aggregate per-`(processor, layer, name)` counters, sorted.
    /// Lane 0 only (`ProcId`s are lane-local).
    pub fn trace_counters(&self) -> Vec<CounterSnapshot> {
        match self.core.state.lock().tracer.as_ref() {
            Some(tr) => tr.counters(),
            None => Vec::new(),
        }
    }

    /// Number of events evicted from the ring buffer so far (lane 0).
    pub fn trace_dropped(&self) -> u64 {
        match self.core.state.lock().tracer.as_ref() {
            Some(tr) => tr.dropped(),
            None => 0,
        }
    }

    /// Serializes currently buffered events as chrome://tracing JSON
    /// (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// On a multi-lane simulation, all lanes' events are merged by time
    /// (ties in lane order) with thread and processor ids remapped into the
    /// dense lane-major numbering of [`Simulation::proc_names`] /
    /// [`Simulation::thread_names`].
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::new();
        let mut procs = Vec::new();
        let mut threads = Vec::new();
        for core in self.cores() {
            let (p_off, t_off) = (procs.len(), threads.len());
            let st = core.state.lock();
            procs.extend(st.procs.iter().map(|p| p.name.clone()));
            threads.extend(st.threads.iter().map(|t| t.name.to_string()));
            if let Some(tr) = st.tracer.as_ref() {
                events.extend(tr.snapshot().into_iter().map(|mut e| {
                    e.proc = ProcId(e.proc.0 + p_off);
                    e.thread = ThreadId(e.thread.0 + t_off);
                    e
                }));
            }
        }
        // Stable sort: same-instant events keep lane order (lane-major
        // append), and within a lane their emission order.
        events.sort_by_key(|e| e.time);
        crate::trace::chrome_trace_json(&events, &procs, &threads)
    }

    /// Names of all processors, indexed by [`ProcId`] (lane-major on a
    /// multi-lane simulation; `ProcId`s themselves are lane-local).
    pub fn proc_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for core in self.cores() {
            names.extend(core.state.lock().procs.iter().map(|p| p.name.clone()));
        }
        names
    }

    /// Names of all threads, indexed by [`ThreadId`] (lane-major on a
    /// multi-lane simulation; `ThreadId`s themselves are lane-local).
    pub fn thread_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for core in self.cores() {
            names.extend(core.state.lock().threads.iter().map(|t| t.name.to_string()));
        }
        names
    }

    /// Starts collecting trace messages emitted via [`Ctx::trace`].
    pub fn enable_trace(&mut self) {
        self.string_trace = true;
        for core in self.cores() {
            core.state.lock().trace = Some(Vec::new());
        }
    }

    /// Drains and returns collected trace lines, formatted
    /// `T+<time> [<thread>] <message>`. Multi-lane: merged by time, ties in
    /// lane order (deterministic — both sides of the merge are).
    pub fn take_trace(&mut self) -> Vec<String> {
        let mut entries: Vec<(SimTime, String)> = Vec::new();
        for core in self.cores() {
            let mut st = core.state.lock();
            if let Some(buf) = st.trace.take() {
                st.trace = Some(Vec::new());
                entries.extend(
                    buf.iter()
                        .map(|e| (e.time, format!("T+{} [{}] {}", e.time, e.thread, e.message))),
                );
            }
        }
        // Stable: same-instant lines keep lane-major append order.
        entries.sort_by_key(|(t, _)| *t);
        entries.into_iter().map(|(_, line)| line).collect()
    }

    /// Number of events still queued (diagnostics; summed over lanes).
    pub fn pending_events(&self) -> usize {
        self.cores().map(|c| c.state.lock().queue_len()).sum()
    }

    /// Number of cancelled (dead-generation) wakes consumed so far
    /// (diagnostics; summed over lanes). Each still advanced the clock when
    /// popped — virtual time is independent of how cheaply they are
    /// recognized.
    pub fn stale_wakes(&self) -> u64 {
        self.cores().map(|c| c.state.lock().wake.stale()).sum()
    }

    /// Event-queue accounting summed over lanes (see [`QueueStats`]): tier
    /// and overflow push counts, wheel cascades, and the sum of per-lane
    /// peak depths. Deterministic — a property of the simulated program,
    /// not of wall-clock or shard count.
    pub fn queue_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for core in self.cores() {
            total.merge(&core.state.lock().queue_stats());
        }
        total
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        for core in std::iter::once(&self.core).chain(self.extra.iter()) {
            core.initiate_shutdown();
        }
    }
}
