//! # desim — deterministic discrete-event simulation
//!
//! A small discrete-event simulator built for reproducing operating-system
//! level protocol studies. It provides:
//!
//! - a virtual clock with nanosecond resolution ([`SimTime`], [`SimDuration`]);
//! - simulated threads written as ordinary blocking Rust closures, multiplexed
//!   one-at-a-time under a deterministic scheduler ([`Simulation`], [`Ctx`]);
//! - a per-machine **CPU model**: [`Ctx::compute`] occupies the machine's
//!   processor (FIFO), pays a context-switch cost when a different thread ran
//!   last, and is *preempted* (extended) by interrupt-level work charged via
//!   [`Ctx::interrupt_compute`] — the mechanism at the heart of the
//!   kernel-space vs user-space comparison this workspace reproduces;
//! - blocking primitives in virtual time: [`SimMutex`], [`SimCondvar`], and
//!   [`SimChannel`] with timeouts.
//!
//! Determinism: with the same seed and program, every run produces the same
//! schedule, the same virtual timestamps, and the same results.
//!
//! # Examples
//!
//! ```
//! use desim::{Simulation, SimChannel, us};
//!
//! let mut sim = Simulation::new(7);
//! let m0 = sim.add_processor("m0");
//! let m1 = sim.add_processor("m1");
//! let ch = SimChannel::new();
//!
//! let tx = ch.clone();
//! sim.spawn(m0, "client", move |ctx| {
//!     ctx.compute(us(10));           // 10us of CPU work on m0
//!     tx.send(ctx, "ping").unwrap(); // instant hand-off
//! });
//! let server = sim.spawn(m1, "server", move |ctx| {
//!     let msg = ch.recv(ctx).unwrap();
//!     assert_eq!(msg, "ping");
//!     assert_eq!(ctx.now().as_micros_f64(), 10.0);
//! });
//! sim.run_until_finished(&server).expect("run to completion");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod channel;
mod core;
mod ctx;
mod fiber;
pub mod par;
mod queue;
mod shard;
mod sim;
mod sync;
mod time;
pub mod trace;
mod wheel;

pub use backend::{set_backend_override, Backend};
pub use channel::{PendingWake, RecvTimeoutError, SendError, SimChannel};
pub use core::{ProcId, ThreadId};
pub use ctx::{Ctx, SwitchCharge};
pub use queue::QueueStats;
pub use shard::{set_shards_override, LaneId, XSender};
pub use sim::{
    ProcReport, SimError, SimReport, Simulation, SimulationBuilder, ThreadHandle, WindowStats,
};
pub use sync::{SimCondvar, SimMutex, SimMutexGuard};
pub use time::{ms, secs, us, SimDuration, SimTime};
pub use trace::{CounterSnapshot, Layer, Phase, TraceEvent};
