//! Execution-backend selection: how simulated threads are multiplexed
//! onto OS resources.
//!
//! The simulator's observable behaviour — virtual time, pick order, trace
//! hashes, chaos coin flips — is **bit-identical** across backends; only
//! wall-clock cost differs. Selection priority, highest first:
//!
//! 1. [`crate::SimulationBuilder::backend`] — explicit per-simulation choice.
//! 2. [`set_backend_override`] — a process-global override, for tests and
//!    harnesses that construct simulations indirectly.
//! 3. The `DESIM_BACKEND` environment variable (`fibers` / `os-threads`),
//!    read afresh at each `Simulation` construction.
//! 4. The target default: [`Backend::Fibers`] where the vendored context
//!    switch exists (64-bit Linux on x86_64/aarch64), [`Backend::OsThreads`]
//!    elsewhere.
//!
//! Requesting `Fibers` on an unsupported target falls back to
//! `OsThreads` — behaviour is identical, so the fallback is safe.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::fiber;

/// How simulated threads execute: parked OS threads or user-space fibers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// One OS thread per simulated thread, handed control through an
    /// atomic-turn park/unpark conduit. Works everywhere; also what
    /// `par::par_map` workers are built from.
    OsThreads,
    /// All simulated threads run as stackful coroutines on the
    /// scheduler's OS thread, switched in user space (one register
    /// save/restore per hand-off instead of a futex syscall pair).
    Fibers,
}

impl Backend {
    /// The canonical name, as accepted by `DESIM_BACKEND`.
    pub fn name(self) -> &'static str {
        match self {
            Backend::OsThreads => "os-threads",
            Backend::Fibers => "fibers",
        }
    }

    /// Parses a backend name (`"fibers"`, `"os-threads"`, and common
    /// spelling variants). Returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fibers" | "fiber" => Some(Backend::Fibers),
            "os-threads" | "os_threads" | "os" | "threads" => Some(Backend::OsThreads),
            _ => None,
        }
    }

    /// Whether the fiber backend's vendored context switch exists for
    /// this target (64-bit Linux on x86_64 or aarch64).
    pub fn fibers_supported() -> bool {
        fiber::SUPPORTED
    }

    /// Degrades `Fibers` to `OsThreads` on targets without the switch.
    pub(crate) fn resolve(self) -> Backend {
        match self {
            Backend::Fibers if !Self::fibers_supported() => Backend::OsThreads,
            other => other,
        }
    }

    /// The backend a plain `Simulation::new` gets: the process override
    /// if set, else `DESIM_BACKEND`, else the target default (`Fibers`
    /// where supported). Panics on an unparseable `DESIM_BACKEND` value
    /// so typos fail loudly instead of silently changing performance.
    pub fn default_backend() -> Backend {
        if let Some(b) = override_get() {
            return b.resolve();
        }
        if let Ok(v) = std::env::var("DESIM_BACKEND") {
            match Backend::parse(&v) {
                Some(b) => return b.resolve(),
                None => panic!(
                    "DESIM_BACKEND={v:?} is not a backend (use \"fibers\" or \"os-threads\")"
                ),
            }
        }
        if Self::fibers_supported() {
            Backend::Fibers
        } else {
            Backend::OsThreads
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// 0 = no override, 1 = os-threads, 2 = fibers.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Sets (or clears, with `None`) a process-global backend override that
/// outranks `DESIM_BACKEND` but not an explicit
/// [`crate::SimulationBuilder::backend`] call. Intended for tests that
/// drive code which constructs `Simulation`s internally; tests sharing a
/// process must serialize around it.
pub fn set_backend_override(backend: Option<Backend>) {
    let v = match backend {
        None => 0,
        Some(Backend::OsThreads) => 1,
        Some(Backend::Fibers) => 2,
    };
    OVERRIDE.store(v, Ordering::SeqCst);
}

fn override_get() -> Option<Backend> {
    match OVERRIDE.load(Ordering::SeqCst) {
        1 => Some(Backend::OsThreads),
        2 => Some(Backend::Fibers),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_and_variant_names() {
        assert_eq!(Backend::parse("fibers"), Some(Backend::Fibers));
        assert_eq!(Backend::parse("Fiber"), Some(Backend::Fibers));
        assert_eq!(Backend::parse("os-threads"), Some(Backend::OsThreads));
        assert_eq!(Backend::parse("OS_THREADS"), Some(Backend::OsThreads));
        assert_eq!(Backend::parse("green"), None);
    }

    #[test]
    fn names_round_trip() {
        for b in [Backend::OsThreads, Backend::Fibers] {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
    }
}
