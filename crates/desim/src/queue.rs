//! Two-tier event queue: a near tier holding the events of the *current*
//! virtual instant plus a far tier (hierarchical timer wheel) for
//! everything later.
//!
//! The scheduler's workload is extremely bimodal. Almost every wake on the
//! hot path — channel sends, mutex hand-offs, CPU grants, spawns — is
//! scheduled *at the current instant* (`schedule_wake_now`), while timers and
//! wire-propagation sleeps land strictly in the future. A single binary heap
//! makes both pay `O(log n)` sift costs against each other; splitting the
//! instants apart makes the dominant same-instant traffic `O(1)`:
//!
//! - **near tier** (`bucket`): a FIFO of events whose time equals
//!   `bucket_time`, the instant the clock currently sits at. With
//!   perturbation off, every new same-instant event has a monotonically
//!   larger `seq` than everything already buffered, so `push` is a
//!   `push_back` and `pop` is a `pop_front`. With perturbation on, the tie
//!   draw can order a new event anywhere, so it is binary-insertion-sorted
//!   by `(tie, seq)` — still cheap because same-instant bursts are small.
//! - **far tier** ([`crate::wheel::Wheel`]): every event strictly later
//!   than `bucket_time`, in a hierarchical timer wheel with power-of-two
//!   slot widths and an overflow heap past the wheel span. Push and
//!   amortized pop are `O(1)` in the pending-timer population — at fleet
//!   depth (thousands of live think-time timers per lane) this is what
//!   keeps the queue off the critical path. The wheel's own module docs
//!   carry the ordering proof.
//!
//! When the near tier runs dry the wheel extracts **all** events at its
//! earliest instant — already sorted by `(tie, seq)` — into the `cur`
//! drain buffer and `bucket_time` jumps forward to it. From that moment the
//! far tier is strictly in the future again: new events *at* the instant go
//! to the bucket, so `pop` only ever merges two same-instant FIFOs by
//! `(tie, seq)`, which is exactly the full-key order of the old single-heap
//! implementation — bit-identical pop order, golden traces, chaos hashes.
//!
//! # The `(time, tie, seq)` total order is a public invariant
//!
//! Events pop in strictly ascending `(time, tie, seq)` order, where `time`
//! is the virtual instant, `tie` is the (usually zero) schedule-perturbation
//! draw, and `seq` is the per-queue monotone insertion counter. Every
//! observable artifact of the simulator — golden trace renders, Table 1
//! latencies, chaos hashes, the selfperf sweep aggregate — is downstream of
//! this order, and the windowed parallel scheduler (`crate::shard`) relies
//! on it for bit-identity: a lane's pop order within a window depends only
//! on the lane's own queue contents, never on how many shards advance
//! concurrently. Code outside this module must not assume anything weaker
//! (e.g. "same time ⇒ FIFO" breaks under perturbation) or stronger.
//!
//! # The committed window floor
//!
//! Under windowed execution the driver commits a *floor* before each
//! window: every instant strictly below it is finished history on every
//! lane. Cross-shard injection — nowadays a barrier-time push of an
//! injection event ([`crate::core::LaneInjector`]) straight into this queue
//! — must never schedule below it: conservative lookahead guarantees a
//! cross-lane frame's delivery time lands at or past the window end.
//! [`EventQueue::set_floor`] records the committed floor and `push` carries
//! a debug assertion against it (in addition to the near-tier assertion,
//! which is the stricter per-lane check once the clock has advanced). The
//! floor is assertion-only state, so both it and its maintenance exist in
//! debug builds only; release builds pay nothing for it.

use std::cmp::Ordering;
use std::collections::VecDeque;

use crate::core::ThreadId;
use crate::time::SimTime;
use crate::wheel::Wheel;

/// One scheduled wake. Ordered by `(time, tie, seq)`; see [`Event::cmp`].
///
/// Exactly 32 bytes — half a cache line, two per line in the wheel's slot
/// vectors. The key fields stay full-width `u64` (truncating `tie` would
/// change perturbation pop order, i.e. the pinned chaos hashes); the
/// non-key fields are packed: thread indices and wake generations both fit
/// `u32` in any real world (4 billion threads / 4 billion blocks of one
/// thread), and the generation compare in `WakeTable::consume` is exact
/// modulo `2^32` — a false match would need a thread to block exactly
/// `2^32` generations between a wake being scheduled and delivered.
pub(crate) struct Event {
    pub time: SimTime,
    /// Perturbation tie-break: 0 unless schedule perturbation is enabled, in
    /// which case it is a per-event draw from a dedicated seeded RNG. It is
    /// ordered *after* `time` and *before* `seq`, so virtual time is never
    /// violated — only the pick order among same-instant wakes is shuffled.
    pub tie: u64,
    pub seq: u64,
    /// Target thread index, `u32::MAX` for injection events (the
    /// [`crate::core::INJECT_THREAD`] sentinel).
    thread: u32,
    /// Wake generation this event belongs to (truncated; see the type
    /// docs); stale if the target thread's live generation has moved past
    /// it (see `CoreState::next_live`). Injection events carry the injector
    /// index here instead.
    wait_gen: u32,
}

const _: () = assert!(
    std::mem::size_of::<Event>() == 32,
    "Event packs to 32 bytes"
);

impl Event {
    pub(crate) fn new(time: SimTime, tie: u64, seq: u64, thread: ThreadId, wait_id: u64) -> Event {
        debug_assert!(
            thread.0 == usize::MAX || thread.0 < u32::MAX as usize,
            "thread index overflows the packed event"
        );
        Event {
            time,
            tie,
            seq,
            // usize::MAX (the injection sentinel) truncates to u32::MAX.
            thread: thread.0 as u32,
            wait_gen: wait_id as u32,
        }
    }

    /// The target thread, with the injection sentinel widened back.
    pub(crate) fn thread(&self) -> ThreadId {
        if self.thread == u32::MAX {
            crate::core::INJECT_THREAD
        } else {
            ThreadId(self.thread as usize)
        }
    }

    /// The (truncated) wake generation, or the injector index.
    pub(crate) fn wait_gen(&self) -> u32 {
        self.wait_gen
    }

    /// The total-order key. Everything about queue ordering compares this.
    #[inline]
    pub(crate) fn key(&self) -> (SimTime, u64, u64) {
        (self.time, self.tie, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        // Must agree with `Ord::cmp` below: compare the full
        // (time, tie, seq) key, not just (time, seq).
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, tie, seq)
        // pops first. With perturbation off every `tie` is 0 and the order
        // degenerates to the historical (time, seq) FIFO.
        other.key().cmp(&self.key())
    }
}

/// Lifetime accounting of one event queue, and — summed across lanes — of a
/// whole simulation ([`crate::Simulation::queue_stats`]). Every field is a
/// property of the simulated program, not of wall-clock or shard count, so
/// the numbers are deterministic and safe to diff across runs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Peak events pending at once (near + far + overflow). Summed across
    /// lanes this is the sum of per-lane peaks, not a global instant.
    pub peak_depth: u64,
    /// Pushes that landed in the near (current-instant) tier.
    pub near_pushes: u64,
    /// Pushes that landed in the timer wheel proper.
    pub wheel_pushes: u64,
    /// Pushes that landed past the wheel span, in the overflow heap.
    pub overflow_pushes: u64,
    /// Wheel slot redistributions (one per cascaded slot, not per event).
    pub cascades: u64,
}

impl QueueStats {
    /// Folds another queue's counters in (lane summation).
    pub fn merge(&mut self, other: &QueueStats) {
        self.peak_depth += other.peak_depth;
        self.near_pushes += other.near_pushes;
        self.wheel_pushes += other.wheel_pushes;
        self.overflow_pushes += other.overflow_pushes;
        self.cascades += other.cascades;
    }
}

/// The two-tier queue. Drop-in replacement for `BinaryHeap<Event>` with the
/// identical pop order (the module docs explain why).
pub(crate) struct EventQueue {
    /// The instant the near tier covers. Starts at zero and only moves
    /// forward, always to the time of a popped event — so it tracks the
    /// scheduler clock exactly.
    bucket_time: SimTime,
    /// Near tier: events at `bucket_time` pushed since the clock got here,
    /// sorted ascending by `(tie, seq)`.
    bucket: VecDeque<Event>,
    /// Drain buffer: events at `bucket_time` extracted from the far tier
    /// when the clock jumped here (scheduled earlier, before the clock
    /// reached this instant, with smaller `seq` than anything pushed
    /// since), sorted ascending by `(tie, seq)`. Receives no pushes — a new
    /// event at `bucket_time` goes to `bucket` — so it only ever drains.
    cur: VecDeque<Event>,
    /// Far tier: events strictly later than `bucket_time`.
    wheel: Wheel,
    /// Peak `len()` ever observed; the rest of [`QueueStats`] lives in the
    /// wheel.
    peak_depth: u64,
    /// Near-tier push count.
    near_pushes: u64,
    /// Committed window floor (see the module docs). `SimTime::ZERO` — i.e.
    /// no constraint — outside windowed execution. Debug-assertion state;
    /// release builds drop the field entirely.
    #[cfg(debug_assertions)]
    floor: SimTime,
}

impl EventQueue {
    /// `cap` is the expected peak pending-event population — at boot, one
    /// start wake per spawned thread, all at the same instant, so the *near*
    /// tier is what must absorb it without reallocating (the
    /// `expected_threads` builder hint ends up here).
    pub(crate) fn with_capacity(cap: usize) -> Self {
        EventQueue {
            bucket_time: SimTime::ZERO,
            bucket: VecDeque::with_capacity(cap),
            cur: VecDeque::with_capacity(cap.min(64)),
            wheel: Wheel::with_capacity(cap),
            peak_depth: 0,
            near_pushes: 0,
            #[cfg(debug_assertions)]
            floor: SimTime::ZERO,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.bucket.len() + self.cur.len() + self.wheel.len()
    }

    /// The earliest queued event's time, without popping. Dead-generation
    /// events count — they still advance the clock when popped, so the
    /// windowed driver must treat them as work below the window edge.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        if !self.bucket.is_empty() || !self.cur.is_empty() {
            // Near-tier events sit at `bucket_time`; the far tier is
            // strictly later, so it can't change the minimum.
            return Some(self.bucket_time);
        }
        self.wheel.peek_time()
    }

    /// The queue's lifetime accounting.
    pub(crate) fn stats(&self) -> QueueStats {
        QueueStats {
            peak_depth: self.peak_depth,
            near_pushes: self.near_pushes,
            wheel_pushes: self.wheel.wheel_pushes,
            overflow_pushes: self.wheel.overflow_pushes,
            cascades: self.wheel.cascades,
        }
    }

    /// Records the committed window floor (debug-asserted by `push`;
    /// debug builds only, like the floor itself).
    #[cfg(debug_assertions)]
    pub(crate) fn set_floor(&mut self, floor: SimTime) {
        self.floor = floor;
    }

    pub(crate) fn push(&mut self, ev: Event) {
        #[cfg(debug_assertions)]
        debug_assert!(
            ev.time >= self.floor,
            "cannot schedule below the committed window floor"
        );
        debug_assert!(
            ev.time >= self.bucket_time,
            "cannot schedule behind the near tier"
        );
        if ev.time != self.bucket_time {
            self.wheel.push(ev);
        } else {
            self.near_pushes += 1;
            // Same-instant fast path: with perturbation off (tie == 0
            // always) the new seq is the largest yet, so the bucket stays
            // sorted with a plain push_back. A random tie draw can land
            // anywhere; fall back to binary insertion by (tie, seq).
            match self.bucket.back() {
                Some(last) if last.key() > ev.key() => {
                    let at = self.bucket.partition_point(|e| e.key() < ev.key());
                    self.bucket.insert(at, ev);
                }
                _ => self.bucket.push_back(ev),
            }
        }
        let depth = self.len() as u64;
        if depth > self.peak_depth {
            self.peak_depth = depth;
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Event> {
        match (self.bucket.front(), self.cur.front()) {
            (None, None) => {
                // Near tier dry: commit the clock jump to the far tier's
                // earliest instant and drain everything at it into `cur`.
                let t = self.wheel.take_min(&mut self.cur)?;
                debug_assert!(t > self.bucket_time, "far tier was not strictly future");
                self.bucket_time = t;
                self.cur.pop_front()
            }
            (Some(_), None) => self.bucket.pop_front(),
            (None, Some(_)) => self.cur.pop_front(),
            // Both FIFOs hold events at `bucket_time`, each sorted by
            // (tie, seq); merging by front compare is full-key order.
            (Some(b), Some(c)) => {
                if (c.tie, c.seq) < (b.tie, b.seq) {
                    self.cur.pop_front()
                } else {
                    self.bucket.pop_front()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BinaryHeap;

    fn ev(time_ns: u64, tie: u64, seq: u64) -> Event {
        Event::new(SimTime::from_nanos(time_ns), tie, seq, ThreadId(0), 0)
    }

    /// Reference model: the old single binary heap.
    #[derive(Default)]
    struct RefHeap(BinaryHeap<Event>);
    impl RefHeap {
        fn push(&mut self, e: Event) {
            self.0.push(e);
        }
        fn pop(&mut self) -> Option<Event> {
            self.0.pop()
        }
    }

    #[test]
    fn same_instant_fifo() {
        let mut q = EventQueue::with_capacity(8);
        for seq in 0..10 {
            q.push(ev(0, 0, seq));
        }
        for seq in 0..10 {
            assert_eq!(q.pop().unwrap().seq, seq);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_event_at_bucket_time_wins_on_smaller_seq() {
        let mut q = EventQueue::with_capacity(8);
        // Timer scheduled for t=100 while the clock is at 0 …
        q.push(ev(100, 0, 0));
        // … a same-instant event pops first and advances nothing.
        q.push(ev(0, 0, 1));
        assert_eq!(q.pop().unwrap().seq, 1);
        // Clock jumps to 100 via the far tier.
        assert_eq!(q.pop().unwrap().seq, 0);
        // New events at 100 land in the bucket; an *older* far event at 100
        // (seq 2 below, pushed while it was still the future) must still
        // order by seq against bucket traffic.
        q.push(ev(100, 0, 2));
        q.push(ev(100, 0, 3));
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 3);
    }

    #[test]
    fn perturbation_ties_order_within_instant() {
        let mut q = EventQueue::with_capacity(8);
        q.push(ev(0, 5, 0));
        q.push(ev(0, 1, 1));
        q.push(ev(0, 9, 2));
        q.push(ev(0, 1, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    /// Events packed into one wheel slot at a coarse level must come back
    /// out in full-key order across the cascade, interleaved correctly with
    /// finer-level residents and the far-future overflow heap.
    #[test]
    fn cascade_preserves_full_key_order() {
        let mut q = EventQueue::with_capacity(8);
        // All pushed at clock 0, in shuffled order: same coarse slot
        // (4096..8192 differs from the cursor at bit 12, level 2), a
        // level-0/1 population in front, exact slot-boundary times, and two
        // beyond-the-span overflow events — one of which collides in time
        // with a wheel event after the cursor advances.
        let times = [
            5000u64,
            4097,
            (1 << 36) + 3, // overflow
            63,
            4096, // slot boundary: lowest time of the coarse slot
            64,   // level boundary: first level-1 instant
            65,
            8191, // last instant of the coarse slot
            1,
            (1 << 40) - 1, // overflow
            4100,
            4099,
        ];
        for (seq, &t) in times.iter().enumerate() {
            q.push(ev(t, 0, seq as u64));
        }
        let mut popped: Vec<(u64, u64)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time.as_nanos(), e.seq));
        }
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(seq, &t)| (t, seq as u64))
            .collect();
        expect.sort_unstable();
        assert_eq!(popped, expect);
        let stats = q.stats();
        assert!(stats.cascades > 0, "coarse slot cascaded: {stats:?}");
        assert_eq!(stats.overflow_pushes, 2, "{stats:?}");
        assert_eq!(stats.peak_depth, times.len() as u64, "{stats:?}");
    }

    /// Same-instant events split across the far tier's slot extraction and
    /// later near-tier pushes still merge by (tie, seq) under perturbation.
    #[test]
    fn perturbation_ties_merge_across_tiers_mid_slot() {
        let mut q = EventQueue::with_capacity(8);
        q.push(ev(100, 7, 0));
        q.push(ev(100, 2, 1));
        q.push(ev(0, 0, 2));
        assert_eq!(q.pop().unwrap().seq, 2);
        // Clock jumps to 100; ties 7 and 2 now sit in the drain buffer.
        assert_eq!(q.pop().unwrap().tie, 2);
        // New pushes at 100 land in the bucket and must interleave by tie.
        q.push(ev(100, 5, 3));
        q.push(ev(100, 9, 4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.tie).collect();
        assert_eq!(order, vec![5, 7, 9]);
    }

    /// Workload generator: interleaved pushes and pops where pushed times
    /// never go behind the latest popped time (the scheduler invariant),
    /// with optional perturbation-style random ties. Pops interleave with
    /// pushes exactly as the scheduler does, including batches that drain
    /// several stale-generation events in a row.
    fn workload() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
        // (op, time_delta, tie): op 0..=2 push (delta ahead of the
        // watermark; 0 = same instant), 3 pop.
        proptest::collection::vec((0u8..4, 0u64..50, any::<u64>()), 0..300)
    }

    /// Wheel-adversarial deltas: at, straddling, and just past slot and
    /// level boundaries (powers of two ±1 across the whole span), plus
    /// far-future jumps beyond the wheel span that exercise the overflow
    /// heap and its time collisions with wheel residents after the cursor
    /// advances. Pop bursts (op 3) drive drain-then-refill cycles across
    /// those boundaries.
    fn boundary_workload() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
        // (op, (kind, r), tie) decodes to (op, delta, tie): kind 0 a small
        // linear delta, kind 1 a power of two ±1 across the whole span,
        // kind 2 a beyond-span jump onto the overflow heap.
        proptest::collection::vec((0u8..4, (0u8..3, 0u64..4000), any::<u64>()), 0..300).prop_map(
            |ops| {
                ops.into_iter()
                    .map(|(op, (kind, r), tie)| {
                        let delta = match kind {
                            0 => r % 130,
                            1 => {
                                let bit = 1 + (r % 39) as u32; // 2^1 ..= 2^39
                                let off = (r / 39) % 3; // -1, 0, +1
                                (1u64 << bit) + off - 1
                            }
                            _ => (1u64 << 36) - 2 + r % 1000,
                        };
                        (op, delta, tie)
                    })
                    .collect()
            },
        )
    }

    fn run_against_reference(ops: Vec<(u8, u64, u64)>, perturb: bool) {
        let mut q = EventQueue::with_capacity(8);
        let mut r = RefHeap::default();
        let mut seq = 0u64;
        let mut watermark = 0u64; // latest popped time, in ns
        for (op, delta, tie) in ops {
            if op < 3 {
                let t = watermark + delta;
                let tie = if perturb { tie } else { 0 };
                q.push(ev(t, tie, seq));
                r.push(ev(t, tie, seq));
                seq += 1;
            } else {
                let a = q.pop();
                let b = r.pop();
                assert_eq!(a.is_some(), b.is_some());
                if let (Some(a), Some(b)) = (a, b) {
                    assert_eq!(a.key(), b.key());
                    watermark = a.time.as_nanos();
                }
            }
        }
        // Drain both completely; the tails must agree too.
        loop {
            match (q.pop(), r.pop()) {
                (None, None) => break,
                (a, b) => {
                    assert_eq!(a.map(|e| e.key()), b.map(|e| e.key()));
                }
            }
        }
    }

    proptest! {
        #[test]
        fn matches_reference_heap(ops in workload(), perturb in any::<bool>()) {
            run_against_reference(ops, perturb);
        }

        #[test]
        fn matches_reference_heap_at_wheel_boundaries(
            ops in boundary_workload(),
            perturb in any::<bool>(),
        ) {
            run_against_reference(ops, perturb);
        }
    }
}
