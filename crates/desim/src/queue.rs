//! Two-tier event queue: a near tier holding the events of the *current*
//! virtual instant plus a far tier (binary heap) for everything later.
//!
//! The scheduler's workload is extremely bimodal. Almost every wake on the
//! hot path — channel sends, mutex hand-offs, CPU grants, spawns — is
//! scheduled *at the current instant* (`schedule_wake_now`), while timers and
//! wire-propagation sleeps land strictly in the future. A binary heap makes
//! both pay `O(log n)` sift costs against each other; splitting the instants
//! apart makes the dominant same-instant traffic `O(1)`:
//!
//! - **near tier** (`bucket`): a FIFO of events whose time equals
//!   `bucket_time`, the instant the clock currently sits at. With
//!   perturbation off, every new same-instant event has a monotonically
//!   larger `seq` than everything already buffered, so `push` is a
//!   `push_back` and `pop` is a `pop_front`. With perturbation on, the tie
//!   draw can order a new event anywhere, so it is binary-insertion-sorted
//!   by `(tie, seq)` — still cheap because same-instant bursts are small.
//! - **far tier** (`far`): a plain binary heap of future events, ordered by
//!   the full `(time, tie, seq)` key. When the near tier runs dry the
//!   earliest far event is popped and `bucket_time` jumps forward to it.
//!
//! The far tier may legitimately hold events *at* `bucket_time` (scheduled
//! earlier, before the clock reached this instant, with smaller `seq` than
//! anything buffered since), so [`EventQueue::pop`] always compares the two
//! tier heads by the full key. That comparison is what preserves the exact
//! `(time, tie, seq)` total order of the old single-heap implementation —
//! bit-identical pop order, golden traces, and chaos hashes.
//!
//! # The `(time, tie, seq)` total order is a public invariant
//!
//! Events pop in strictly ascending `(time, tie, seq)` order, where `time`
//! is the virtual instant, `tie` is the (usually zero) schedule-perturbation
//! draw, and `seq` is the per-queue monotone insertion counter. Every
//! observable artifact of the simulator — golden trace renders, Table 1
//! latencies, chaos hashes, the selfperf sweep aggregate — is downstream of
//! this order, and the windowed parallel scheduler (`crate::shard`) relies
//! on it for bit-identity: a lane's pop order within a window depends only
//! on the lane's own queue contents, never on how many shards advance
//! concurrently. Code outside this module must not assume anything weaker
//! (e.g. "same time ⇒ FIFO" breaks under perturbation) or stronger.
//!
//! # The committed window floor
//!
//! Under windowed execution the driver commits a *floor* before each
//! window: every instant strictly below it is finished history on every
//! lane. Cross-shard injection — nowadays a barrier-time push of an
//! injection event ([`crate::core::LaneInjector`]) straight into this queue
//! — must never schedule below it: conservative lookahead guarantees a
//! cross-lane frame's delivery time lands at or past the window end.
//! [`EventQueue::set_floor`] records the committed floor and `push` carries
//! a debug assertion against it (in addition to the near-tier assertion,
//! which is the stricter per-lane check once the clock has advanced). The
//! floor is assertion-only state, so both it and its maintenance exist in
//! debug builds only; release builds pay nothing for it.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::core::ThreadId;
use crate::time::SimTime;

/// One scheduled wake. Ordered by `(time, tie, seq)`; see [`Event::cmp`].
pub(crate) struct Event {
    pub time: SimTime,
    /// Perturbation tie-break: 0 unless schedule perturbation is enabled, in
    /// which case it is a per-event draw from a dedicated seeded RNG. It is
    /// ordered *after* `time` and *before* `seq`, so virtual time is never
    /// violated — only the pick order among same-instant wakes is shuffled.
    pub tie: u64,
    pub seq: u64,
    pub thread: ThreadId,
    /// Wake generation this event belongs to; stale if the target thread's
    /// live generation has moved past it (see `CoreState::next_live`).
    pub wait_id: u64,
}

impl Event {
    /// The total-order key. Everything about queue ordering compares this.
    #[inline]
    fn key(&self) -> (SimTime, u64, u64) {
        (self.time, self.tie, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        // Must agree with `Ord::cmp` below: compare the full
        // (time, tie, seq) key, not just (time, seq).
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, tie, seq)
        // pops first. With perturbation off every `tie` is 0 and the order
        // degenerates to the historical (time, seq) FIFO.
        other.key().cmp(&self.key())
    }
}

/// The two-tier queue. Drop-in replacement for `BinaryHeap<Event>` with the
/// identical pop order (the module docs explain why).
pub(crate) struct EventQueue {
    /// The instant the near tier covers. Starts at zero and only moves
    /// forward, always to the time of a popped event — so it tracks the
    /// scheduler clock exactly.
    bucket_time: SimTime,
    /// Near tier: events at `bucket_time`, sorted ascending by `(tie, seq)`.
    bucket: VecDeque<Event>,
    /// Far tier: events strictly later than `bucket_time`, plus possibly
    /// some *at* `bucket_time` that were pushed before the clock got here.
    far: BinaryHeap<Event>,
    /// Committed window floor (see the module docs). `SimTime::ZERO` — i.e.
    /// no constraint — outside windowed execution. Debug-assertion state;
    /// release builds drop the field entirely.
    #[cfg(debug_assertions)]
    floor: SimTime,
}

impl EventQueue {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        EventQueue {
            bucket_time: SimTime::ZERO,
            bucket: VecDeque::with_capacity(cap.min(64)),
            far: BinaryHeap::with_capacity(cap),
            #[cfg(debug_assertions)]
            floor: SimTime::ZERO,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.bucket.len() + self.far.len()
    }

    /// The earliest queued event's time, without popping. Dead-generation
    /// events count — they still advance the clock when popped, so the
    /// windowed driver must treat them as work below the window edge.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        match (self.bucket.front(), self.far.peek()) {
            (None, None) => None,
            (Some(b), None) => Some(b.time),
            (None, Some(f)) => Some(f.time),
            // Bucket events sit at `bucket_time`; a far head at the same
            // time doesn't change the minimum.
            (Some(b), Some(f)) => Some(b.time.min(f.time)),
        }
    }

    /// Records the committed window floor (debug-asserted by `push`;
    /// debug builds only, like the floor itself).
    #[cfg(debug_assertions)]
    pub(crate) fn set_floor(&mut self, floor: SimTime) {
        self.floor = floor;
    }

    pub(crate) fn push(&mut self, ev: Event) {
        #[cfg(debug_assertions)]
        debug_assert!(
            ev.time >= self.floor,
            "cannot schedule below the committed window floor"
        );
        debug_assert!(
            ev.time >= self.bucket_time,
            "cannot schedule behind the near tier"
        );
        if ev.time != self.bucket_time {
            self.far.push(ev);
            return;
        }
        // Same-instant fast path: with perturbation off (tie == 0 always)
        // the new seq is the largest yet, so the bucket stays sorted with a
        // plain push_back. A random tie draw can land anywhere; fall back to
        // binary insertion by (tie, seq).
        match self.bucket.back() {
            Some(last) if last.key() > ev.key() => {
                let at = self.bucket.partition_point(|e| e.key() < ev.key());
                self.bucket.insert(at, ev);
            }
            _ => self.bucket.push_back(ev),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Event> {
        // The far tier can hold events at bucket_time with a smaller key
        // than the bucket front (pushed before the clock reached this
        // instant), so the heads must be compared by the full key.
        let take_far = match (self.bucket.front(), self.far.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(b), Some(f)) => f.key() < b.key(),
        };
        if take_far {
            let ev = self.far.pop().expect("peeked");
            if ev.time > self.bucket_time {
                debug_assert!(self.bucket.is_empty(), "near tier left behind");
                self.bucket_time = ev.time;
            }
            Some(ev)
        } else {
            self.bucket.pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ev(time_ns: u64, tie: u64, seq: u64) -> Event {
        Event {
            time: SimTime::from_nanos(time_ns),
            tie,
            seq,
            thread: ThreadId(0),
            wait_id: 0,
        }
    }

    /// Reference model: the old single binary heap.
    #[derive(Default)]
    struct RefHeap(BinaryHeap<Event>);
    impl RefHeap {
        fn push(&mut self, e: Event) {
            self.0.push(e);
        }
        fn pop(&mut self) -> Option<Event> {
            self.0.pop()
        }
    }

    #[test]
    fn same_instant_fifo() {
        let mut q = EventQueue::with_capacity(8);
        for seq in 0..10 {
            q.push(ev(0, 0, seq));
        }
        for seq in 0..10 {
            assert_eq!(q.pop().unwrap().seq, seq);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_event_at_bucket_time_wins_on_smaller_seq() {
        let mut q = EventQueue::with_capacity(8);
        // Timer scheduled for t=100 while the clock is at 0 …
        q.push(ev(100, 0, 0));
        // … a same-instant event pops first and advances nothing.
        q.push(ev(0, 0, 1));
        assert_eq!(q.pop().unwrap().seq, 1);
        // Clock jumps to 100 via the far tier.
        assert_eq!(q.pop().unwrap().seq, 0);
        // New events at 100 land in the bucket; an *older* far event at 100
        // (seq 2 below, pushed while it was still the future) must still
        // order by seq against bucket traffic.
        q.push(ev(100, 0, 2));
        q.push(ev(100, 0, 3));
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 3);
    }

    #[test]
    fn perturbation_ties_order_within_instant() {
        let mut q = EventQueue::with_capacity(8);
        q.push(ev(0, 5, 0));
        q.push(ev(0, 1, 1));
        q.push(ev(0, 9, 2));
        q.push(ev(0, 1, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    /// Workload generator: interleaved pushes and pops where pushed times
    /// never go behind the latest popped time (the scheduler invariant),
    /// with optional perturbation-style random ties. Pops interleave with
    /// pushes exactly as the scheduler does, including batches that drain
    /// several stale-generation events in a row.
    fn workload() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
        // (op, time_delta, tie): op 0..=2 push (delta ahead of the
        // watermark; 0 = same instant), 3 pop.
        proptest::collection::vec((0u8..4, 0u64..50, any::<u64>()), 0..300)
    }

    proptest! {
        #[test]
        fn matches_reference_heap(ops in workload(), perturb in any::<bool>()) {
            let mut q = EventQueue::with_capacity(8);
            let mut r = RefHeap::default();
            let mut seq = 0u64;
            let mut watermark = 0u64; // latest popped time, in ns
            for (op, delta, tie) in ops {
                if op < 3 {
                    let t = watermark + delta;
                    let tie = if perturb { tie } else { 0 };
                    q.push(ev(t, tie, seq));
                    r.push(ev(t, tie, seq));
                    seq += 1;
                } else {
                    let a = q.pop();
                    let b = r.pop();
                    prop_assert_eq!(a.is_some(), b.is_some());
                    if let (Some(a), Some(b)) = (a, b) {
                        prop_assert_eq!(a.key(), b.key());
                        watermark = a.time.as_nanos();
                    }
                }
            }
            // Drain both completely; the tails must agree too.
            loop {
                match (q.pop(), r.pop()) {
                    (None, None) => break,
                    (a, b) => {
                        prop_assert_eq!(a.map(|e| e.key()), b.map(|e| e.key()));
                    }
                }
            }
        }
    }
}
