//! Structured virtual-time tracing.
//!
//! Every layer of the simulated stack — scheduler, Ethernet, FLIP, the RPC
//! and group protocols, the Orca runtime — can emit [`TraceEvent`]s stamped
//! with the virtual clock, the emitting thread, and its processor. Events
//! land in a bounded ring buffer and simultaneously feed per-processor /
//! per-layer [`CounterSnapshot`]s, so a run can be inspected either as a
//! timeline (see [`chrome_trace_json`]) or as aggregate protocol statistics
//! (retransmits, duplicates, per-category cost totals).
//!
//! Tracing is **zero-cost in virtual time by construction**: emission never
//! sleeps, computes, draws randomness, or schedules wakes, so the virtual
//! clock and every scheduling decision are bit-identical whether tracing is
//! enabled or not. When disabled, the only real-time overhead is one relaxed
//! atomic load per call site.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::core::{ProcId, ThreadId};
use crate::time::SimTime;

/// Which layer of the stack emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The desim scheduler itself (spawn / switch / block / wake).
    Sched,
    /// The shared-medium Ethernet segment model.
    Net,
    /// The FLIP network layer (fragmentation, routing, reassembly).
    Flip,
    /// An RPC protocol, kernel-space (Amoeba) or user-space (Panda).
    Rpc,
    /// A totally ordered group protocol, kernel- or user-space.
    Group,
    /// The Orca runtime system (operation invocation, guards).
    Orca,
    /// Application-level events.
    App,
}

impl Layer {
    /// Stable lower-case name, used as the chrome-trace category.
    pub const fn as_str(self) -> &'static str {
        match self {
            Layer::Sched => "sched",
            Layer::Net => "net",
            Layer::Flip => "flip",
            Layer::Rpc => "rpc",
            Layer::Group => "group",
            Layer::Orca => "orca",
            Layer::App => "app",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Event shape: a point event or one side of a duration span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// A point in time.
    Instant,
    /// Span start; must be balanced by an [`Phase::End`] with the same name
    /// on the same thread.
    Begin,
    /// Span end.
    End,
}

/// Maximum number of key/value arguments per event.
pub const MAX_ARGS: usize = 4;

/// Inline, allocation-free argument list of up to [`MAX_ARGS`]
/// `(&'static str, u64)` pairs.
#[derive(Clone, Copy)]
pub struct ArgVec {
    len: u8,
    items: [(&'static str, u64); MAX_ARGS],
}

impl ArgVec {
    /// Builds from a slice, keeping at most [`MAX_ARGS`] entries.
    pub fn from_slice(args: &[(&'static str, u64)]) -> ArgVec {
        let mut items = [("", 0u64); MAX_ARGS];
        let n = args.len().min(MAX_ARGS);
        items[..n].copy_from_slice(&args[..n]);
        ArgVec {
            len: n as u8,
            items,
        }
    }

    /// The populated arguments.
    pub fn as_slice(&self) -> &[(&'static str, u64)] {
        &self.items[..self.len as usize]
    }

    /// Looks up an argument by key.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.as_slice()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }
}

impl fmt::Debug for ArgVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.as_slice().iter().map(|(k, v)| (*k, *v)))
            .finish()
    }
}

impl PartialEq for ArgVec {
    fn eq(&self, other: &ArgVec) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for ArgVec {}

/// One structured trace event in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of emission.
    pub time: SimTime,
    /// Processor of the emitting thread.
    pub proc: ProcId,
    /// Emitting thread.
    pub thread: ThreadId,
    /// Stack layer.
    pub layer: Layer,
    /// Event shape.
    pub phase: Phase,
    /// Event name (for cost events: the cost-model category).
    pub name: &'static str,
    /// Key/value arguments; cost events carry `("ns", duration)`.
    pub args: ArgVec,
}

impl TraceEvent {
    /// Compact single-line rendering, stable across runs of the same seed —
    /// the representation golden-trace tests compare.
    pub fn render(&self) -> String {
        let ph = match self.phase {
            Phase::Instant => "i",
            Phase::Begin => "B",
            Phase::End => "E",
        };
        let mut s = format!(
            "{} {} {} {}/{} {}",
            self.time.as_nanos(),
            self.proc,
            self.thread,
            self.layer,
            self.name,
            ph
        );
        for (k, v) in self.args.as_slice() {
            s.push_str(&format!(" {k}={v}"));
        }
        s
    }
}

/// Aggregate statistics for one `(processor, layer, event name)` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Processor the events were emitted on.
    pub proc: ProcId,
    /// Emitting layer.
    pub layer: Layer,
    /// Event name.
    pub name: &'static str,
    /// Number of events.
    pub count: u64,
    /// Sum of each event's first argument value (for cost events: total
    /// nanoseconds in that category).
    pub total: u64,
}

#[derive(Default)]
struct CounterCell {
    count: u64,
    total: u64,
}

/// The collector: bounded ring buffer plus counters.
pub(crate) struct Tracer {
    ring: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
    counters: HashMap<(ProcId, Layer, &'static str), CounterCell>,
}

impl Tracer {
    pub(crate) fn new(cap: usize) -> Tracer {
        Tracer {
            ring: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
            counters: HashMap::new(),
        }
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        let cell = self
            .counters
            .entry((ev.proc, ev.layer, ev.name))
            .or_default();
        cell.count += 1;
        cell.total += ev.args.as_slice().first().map_or(0, |(_, v)| *v);
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    pub(crate) fn drain(&mut self) -> Vec<TraceEvent> {
        self.ring.drain(..).collect()
    }

    pub(crate) fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring.iter().cloned().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn counters(&self) -> Vec<CounterSnapshot> {
        let mut out: Vec<CounterSnapshot> = self
            .counters
            .iter()
            .map(|((proc, layer, name), cell)| CounterSnapshot {
                proc: *proc,
                layer: *layer,
                name,
                count: cell.count,
                total: cell.total,
            })
            .collect();
        // HashMap iteration order is nondeterministic; sort for stable output.
        out.sort_by_key(|c| (c.proc, c.layer, c.name));
        out
    }
}

/// Serializes events as a chrome://tracing (Trace Event Format) JSON string.
///
/// `proc_names` and `thread_names` label the `pid`/`tid` rows; pass the
/// values from [`crate::Simulation::proc_names`] /
/// [`crate::Simulation::thread_names`] or your own.
pub fn chrome_trace_json(
    events: &[TraceEvent],
    proc_names: &[String],
    thread_names: &[String],
) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, s: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(s);
    };
    for (pid, name) in proc_names.iter().enumerate() {
        push(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_string(name)
            ),
        );
    }
    // Chrome matches thread_name metadata by (pid, tid); every simulated
    // thread lives on exactly one proc, recoverable from its events.
    let mut thread_pid = vec![0usize; thread_names.len()];
    for ev in events {
        if let Some(slot) = thread_pid.get_mut(ev.thread.0) {
            *slot = ev.proc.0;
        }
    }
    for (tid, name) in thread_names.iter().enumerate() {
        push(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                thread_pid[tid],
                json_string(name)
            ),
        );
    }
    for ev in events {
        let ph = match ev.phase {
            Phase::Instant => "i",
            Phase::Begin => "B",
            Phase::End => "E",
        };
        let ts_ns = ev.time.as_nanos();
        let mut args = String::new();
        for (i, (k, v)) in ev.args.as_slice().iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            args.push_str(&format!("{}:{v}", json_string(k)));
        }
        let scope = if ev.phase == Phase::Instant {
            ",\"s\":\"t\""
        } else {
            ""
        };
        push(
            &mut out,
            &format!(
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"{ph}\"{scope},\
                 \"ts\":{}.{:03},\"pid\":{},\"tid\":{},\"args\":{{{args}}}}}",
                json_string(ev.name),
                ev.layer,
                ts_ns / 1_000,
                ts_ns % 1_000,
                ev.proc.0,
                ev.thread.0,
            ),
        );
    }
    out.push_str("]}");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, name: &'static str, phase: Phase, arg: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            proc: ProcId(0),
            thread: ThreadId(1),
            layer: Layer::Flip,
            phase,
            name,
            args: ArgVec::from_slice(&[("ns", arg)]),
        }
    }

    #[test]
    fn ring_buffer_caps_and_counts() {
        let mut tr = Tracer::new(2);
        tr.record(ev(1, "a", Phase::Instant, 10));
        tr.record(ev(2, "a", Phase::Instant, 20));
        tr.record(ev(3, "b", Phase::Instant, 5));
        assert_eq!(tr.dropped(), 1);
        let events = tr.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        let counters = tr.counters();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].name, "a");
        assert_eq!(counters[0].count, 2);
        assert_eq!(counters[0].total, 30);
    }

    #[test]
    fn argvec_truncates_and_looks_up() {
        let a = ArgVec::from_slice(&[("x", 1), ("y", 2), ("z", 3), ("w", 4), ("v", 5)]);
        assert_eq!(a.as_slice().len(), MAX_ARGS);
        assert_eq!(a.get("y"), Some(2));
        assert_eq!(a.get("v"), None);
    }

    #[test]
    fn chrome_json_is_balanced() {
        let events = vec![
            ev(1_500, "frame", Phase::Begin, 0),
            ev(2_500, "frame", Phase::End, 0),
            ev(3_000, "drop\"quote", Phase::Instant, 7),
        ];
        let json = chrome_trace_json(&events, &["m0".into()], &["t0".into(), "t1".into()]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\\\"quote"));
        assert!(json.contains("\"ph\":\"B\""));
    }

    #[test]
    fn render_is_stable() {
        assert_eq!(
            ev(42, "cost", Phase::Instant, 9).render(),
            "42 p0 t1 flip/cost i ns=9"
        );
    }
}
