//! Deterministic worker pool for embarrassingly parallel simulation sweeps.
//!
//! Independent simulations (seed sweeps, benchmark tables, minimizer
//! candidate re-runs) share no state, so they can run on as many cores as
//! the host offers. The only requirement is that parallelism must not leak
//! into results: [`par_map`] hands indices out dynamically (fast workers
//! take more), but slot `i` of the returned vector always holds `f(i)`, so
//! every reduction over the output is byte-identical to a serial run.
//!
//! Built on `std::thread::scope` — no external dependencies, no global
//! pool, workers live only for the duration of one call.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workers used when the caller requests `0` (auto): the host's
/// available parallelism, or 1 if it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a `--jobs`-style request: `0` means auto-detect
/// ([`default_jobs`]), anything else is taken literally.
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

/// Maps `f` over `0..n` on up to `jobs` worker threads (`0` = auto) and
/// returns the results in index order.
///
/// Work distribution is dynamic and therefore wall-clock dependent, but the
/// output is not: slot `i` always holds `f(i)`. With one effective worker
/// (or fewer than two items) the map runs inline on the caller — the serial
/// path and the parallel path produce identical vectors.
///
/// # Panics
///
/// Propagates the first worker panic after all workers have stopped.
pub fn par_map<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = effective_jobs(jobs).min(n.max(1));
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, v) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} computed twice");
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, o)| o.unwrap_or_else(|| panic!("index {i} never computed")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for jobs in [0, 1, 2, 3, 8, 64] {
            assert_eq!(par_map(jobs, 100, |i| i * i), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_jobs_than_items() {
        assert_eq!(par_map(32, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn effective_jobs_resolves_auto() {
        assert_eq!(effective_jobs(5), 5);
        assert!(effective_jobs(0) >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = par_map(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
