//! Protocol-level tests of the user-space Panda RPC: stop-and-wait
//! serialization, piggybacked vs explicit acknowledgements, duplicate
//! suppression, and the Working (server-alive) mechanism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use amoeba::Machine;
use bytes::Bytes;
use chaos::testutil;
use desim::{ms, SimChannel, Simulation};
use ethernet::Network;
use panda::{Panda, PandaConfig, UserSpacePanda};

fn world(
    sim: &mut Simulation,
    n: u32,
    cfg: &PandaConfig,
) -> (Network, Vec<Machine>, Vec<Arc<UserSpacePanda>>) {
    // Booted through the shared scaffold; built directly as UserSpacePanda
    // because these tests poke protocol internals the Panda trait hides.
    let w = testutil::boot_machines(sim, n);
    let nodes = UserSpacePanda::build(sim, &w.machines, cfg);
    (w.net, w.machines, nodes)
}

#[test]
fn stop_and_wait_serializes_calls_per_connection() {
    // Two client threads on node 0 target the same server: the connection
    // lock must serialize them (the 2-way protocol allows one outstanding
    // request per connection).
    let mut sim = Simulation::new(1);
    let (_net, machines, nodes) = world(&mut sim, 2, &PandaConfig::default());
    let in_service = Arc::new(AtomicU64::new(0));
    let overlap_seen = Arc::new(AtomicU64::new(0));
    let (ins, ovl) = (Arc::clone(&in_service), Arc::clone(&overlap_seen));
    let replier = Arc::clone(&nodes[1]);
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, req, t| {
        if ins.fetch_add(1, Ordering::SeqCst) > 0 {
            ovl.fetch_add(1, Ordering::SeqCst);
        }
        ins.fetch_sub(1, Ordering::SeqCst);
        replier.reply(ctx, t, req);
    }));
    for n in &nodes {
        n.set_group_handler(Arc::new(|_, _| {}));
    }
    nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
    for t in 0..2 {
        let client = Arc::clone(&nodes[0]);
        sim.spawn(machines[0].proc(), &format!("c{t}"), move |ctx| {
            for _ in 0..10 {
                client.rpc(ctx, 1, Bytes::from_static(b"x")).expect("rpc");
            }
        });
    }
    sim.run().expect("run");
    assert_eq!(
        overlap_seen.load(Ordering::SeqCst),
        0,
        "one request in flight per conn"
    );
}

#[test]
fn quiet_client_sends_explicit_ack() {
    // After a reply with no follow-up request, the explicit-ack daemon must
    // release the server's cached reply.
    let mut sim = Simulation::new(2);
    let cfg = PandaConfig {
        ack_delay: ms(3),
        ..PandaConfig::default()
    };
    let (net, machines, nodes) = world(&mut sim, 2, &cfg);
    let replier = Arc::clone(&nodes[1]);
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, req, t| {
        replier.reply(ctx, t, req);
    }));
    for n in &nodes {
        n.set_group_handler(Arc::new(|_, _| {}));
    }
    nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
    let client = Arc::clone(&nodes[0]);
    let h = sim.spawn(machines[0].proc(), "client", move |ctx| {
        client
            .rpc(ctx, 1, Bytes::from_static(b"only"))
            .expect("rpc");
        // Stay quiet past the ack delay.
        ctx.sleep(ms(20));
    });
    let frames_before_wait = Arc::new(AtomicU64::new(0));
    let _ = frames_before_wait;
    sim.run_until_finished(&h).expect("run");
    let _ = sim.run();
    // At least: request + reply + explicit ack crossed the wire (plus locate).
    let frames = net.total_stats().frames;
    assert!(
        frames >= 3,
        "request, reply, and an explicit ack must be on the wire, saw {frames}"
    );
}

#[test]
fn back_to_back_calls_piggyback_the_ack() {
    // Continuous calls piggyback acknowledgements: wire frames stay at
    // request+reply per call (at most stray acks at the boundaries).
    let mut sim = Simulation::new(3);
    let (net, machines, nodes) = world(&mut sim, 2, &PandaConfig::default());
    let replier = Arc::clone(&nodes[1]);
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, req, t| {
        replier.reply(ctx, t, req);
    }));
    for n in &nodes {
        n.set_group_handler(Arc::new(|_, _| {}));
    }
    nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
    let calls = 20u64;
    let client = Arc::clone(&nodes[0]);
    let h = sim.spawn(machines[0].proc(), "client", move |ctx| {
        for _ in 0..calls {
            client.rpc(ctx, 1, Bytes::from_static(b"x")).expect("rpc");
        }
    });
    sim.run_until_finished(&h).expect("run");
    let frames_during_calls = net.total_stats().frames;
    // 2 per call + locate query/reply + at most one trailing explicit ack.
    assert!(
        frames_during_calls <= 2 * calls + 4,
        "piggybacking keeps the wire at ~2 frames per call, saw {frames_during_calls}"
    );
}

#[test]
fn working_probe_waits_out_long_server_holds() {
    // The server parks the ticket far longer than the full retry budget;
    // the Working probe must keep the client from timing out.
    let mut sim = Simulation::new(4);
    let cfg = PandaConfig {
        rpc_timeout: ms(5),
        rpc_retries: 2, // raw budget (5+10+20 ms with backoff) << hold time
        ..PandaConfig::default()
    };
    let (_net, machines, nodes) = world(&mut sim, 2, &cfg);
    let held: SimChannel<panda::ReplyTicket> = SimChannel::new();
    let held_in = held.clone();
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, _req, t| {
        let _ = held_in.send(ctx, t);
    }));
    for n in &nodes {
        n.set_group_handler(Arc::new(|_, _| {}));
    }
    nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
    let replier = Arc::clone(&nodes[1]);
    sim.spawn(machines[1].proc(), "guard", move |ctx| {
        let t = held.recv(ctx).expect("ticket");
        ctx.sleep(ms(200)); // far beyond the raw retry budget
        replier.reply(ctx, t, Bytes::from_static(b"eventually"));
    });
    let client = Arc::clone(&nodes[0]);
    let h = sim.spawn(machines[0].proc(), "client", move |ctx| {
        let r = client
            .rpc(ctx, 1, Bytes::from_static(b"hold me"))
            .expect("held rpc");
        assert_eq!(&r[..], b"eventually");
        assert!(ctx.now().as_millis_f64() >= 200.0);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn duplicate_requests_do_not_reexecute() {
    // Force the reply to be lost: the retransmitted request must be served
    // from the reply cache, not by running the handler again.
    let mut sim = Simulation::new(5);
    let cfg = PandaConfig {
        rpc_timeout: ms(10),
        ..PandaConfig::default()
    };
    let (net, machines, nodes) = world(&mut sim, 2, &cfg);
    let executions = Arc::new(AtomicU64::new(0));
    let ex = Arc::clone(&executions);
    let replier = Arc::clone(&nodes[1]);
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, req, t| {
        ex.fetch_add(1, Ordering::SeqCst);
        replier.reply(ctx, t, req);
    }));
    for n in &nodes {
        n.set_group_handler(Arc::new(|_, _| {}));
    }
    nodes[0].set_rpc_handler(Arc::new(|_, _, _, _| {}));
    let client = Arc::clone(&nodes[0]);
    let h = sim.spawn(machines[0].proc(), "client", move |ctx| {
        client
            .rpc(ctx, 1, Bytes::from_static(b"warm"))
            .expect("warmup");
        // Two drops: the request goes through on attempt 2, then the reply
        // dies, and the cached-reply path answers the retransmission.
        net.faults().lock().force_drop_next = 2;
        let r = client
            .rpc(ctx, 1, Bytes::from_static(b"again"))
            .expect("recovers");
        assert_eq!(&r[..], b"again");
    });
    sim.run_until_finished(&h).expect("run");
    assert_eq!(
        executions.load(Ordering::SeqCst),
        2,
        "warmup + one real execution"
    );
}
