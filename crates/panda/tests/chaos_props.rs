//! Property tests: both Panda stacks keep their end-to-end guarantees under
//! randomized duplication + reordering fault plans.
//!
//! Each case draws a seed and a dup/reorder plan, runs the chaos engine's
//! standard workload on one stack, and asserts the full invariant set —
//! exactly-once RPC execution, gap-free identical total order at every
//! member, clock monotonicity, frame conservation. On a violation the test
//! greedily shrinks the plan with [`chaos::minimize`] and panics with the
//! minimal still-failing plan plus a one-line repro, so a property failure
//! arrives already reduced.

use chaos::engine::{run_chaos, ChaosConfig};
use chaos::explore::{minimize, repro_command};
use chaos::plan::FaultPlan;
use chaos::Stack;
use desim::SimDuration;
use proptest::prelude::*;

/// Builds the dup+reorder-only configuration for one property case.
fn dup_reorder_config(
    stack: Stack,
    seed: u64,
    dup_pct: u32,
    reorder_pct: u32,
    reorder_span: u64,
) -> ChaosConfig {
    let mut cfg = ChaosConfig::for_seed(stack, seed, 12, 8, SimDuration::from_millis(500));
    // Replace the seed-generated plan with a pure duplication + reordering
    // plan: this property isolates the protocols' tolerance of the two
    // faults that corrupt *order* rather than availability.
    cfg.plan = FaultPlan {
        dup_prob: f64::from(dup_pct) / 100.0,
        reorder_prob: f64::from(reorder_pct) / 100.0,
        reorder_span,
        sched_perturb: Some(seed ^ 0x5eed),
        ..FaultPlan::default()
    };
    cfg
}

/// Runs one case and asserts the invariants, shrinking the plan on failure.
fn check(cfg: &ChaosConfig) {
    let out = run_chaos(cfg);
    if !out.violations.is_empty() {
        let minimal = minimize(cfg);
        panic!(
            "invariant violation under dup+reorder plan\n\
             violations:\n  {}\nrepro: {}\nminimized fault plan:\n{}",
            out.violations.join("\n  "),
            repro_command(cfg),
            minimal
        );
    }
    // The workload itself must have made progress: every RPC echoed.
    assert_eq!(out.rpc_ok, cfg.rpcs, "all RPCs complete");
    assert_eq!(out.rpc_bad, 0, "no failed or corrupt RPCs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn kernel_stack_survives_duplication_and_reordering(
        seed in 0u64..10_000,
        dup_pct in 1u32..15,
        reorder_pct in 1u32..20,
        reorder_span in 1u64..5,
    ) {
        check(&dup_reorder_config(Stack::Kernel, seed, dup_pct, reorder_pct, reorder_span));
    }

    #[test]
    fn user_stack_survives_duplication_and_reordering(
        seed in 0u64..10_000,
        dup_pct in 1u32..15,
        reorder_pct in 1u32..20,
        reorder_span in 1u64..5,
    ) {
        check(&dup_reorder_config(Stack::User, seed, dup_pct, reorder_pct, reorder_span));
    }

    #[test]
    fn same_seed_same_plan_is_bit_identical(
        seed in 0u64..10_000,
        dup_pct in 1u32..15,
        reorder_pct in 1u32..20,
    ) {
        let cfg = dup_reorder_config(Stack::Kernel, seed, dup_pct, reorder_pct, 2);
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        prop_assert_eq!(a.trace_hash, b.trace_hash, "same seed must replay identically");
    }
}

/// The shrinker's moves are sound: every candidate a plan offers removes
/// exactly one ingredient and leaves the rest untouched, so greedy descent
/// terminates at a plan where no single ingredient can be dropped — the
/// minimal fault plan reported on failure.
#[test]
fn plan_simplifications_each_remove_one_ingredient() {
    let full = FaultPlan::generate(3, 3, SimDuration::from_millis(200));
    let candidates = full.simplifications();
    assert!(!candidates.is_empty(), "a non-null plan must offer moves");
    for (desc, cand) in &candidates {
        assert_ne!(cand, &full, "{desc}: candidate must differ from parent");
        // Count populated ingredients; each move removes exactly one.
        let weight = |p: &FaultPlan| -> usize {
            usize::from(p.rx_loss_prob > 0.0)
                + usize::from(p.wire_loss_prob > 0.0)
                + usize::from(p.dup_prob > 0.0)
                + usize::from(p.reorder_prob > 0.0)
                + usize::from(p.gilbert.is_some())
                + usize::from(p.sched_perturb.is_some())
                + p.timed.len()
        };
        assert_eq!(
            weight(cand) + 1,
            weight(&full),
            "{desc}: exactly one ingredient removed"
        );
    }
    // Descending through simplifications always reaches the null plan.
    let mut p = full;
    while let Some((_, next)) = p.simplifications().into_iter().next() {
        p = next;
    }
    assert!(p.is_null(), "greedy descent bottoms out at the null plan");
}
