//! Behavioural parity tests: both Panda implementations must provide the
//! same interface semantics (RPC, asynchronous replies, totally ordered
//! groups), differing only in cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};

use bytes::Bytes;
use chaos::testutil::{self, Stack};
use desim::{ms, SimChannel, Simulation};
use ethernet::Network;
use panda::{GroupDelivery, Panda, PandaConfig};

fn build_world(
    sim: &mut Simulation,
    n_nodes: u32,
    which: &Stack,
) -> (Network, Vec<Arc<dyn Panda>>) {
    let (world, nodes) = testutil::build_world(sim, n_nodes, *which, &PandaConfig::default());
    (world.net, nodes)
}

fn all_impls() -> Vec<Stack> {
    vec![Stack::Kernel, Stack::User, Stack::UserDedicated]
}

#[test]
fn rpc_roundtrip_both_impls() {
    for which in all_impls() {
        let mut sim = Simulation::new(1);
        let (_net, nodes) = build_world(&mut sim, 3, &which);
        // Node 1 serves an echo-reverse service, replying from the upcall.
        let server = Arc::clone(&nodes[1]);
        let server2 = Arc::clone(&nodes[1]);
        server.set_rpc_handler(Arc::new(move |ctx, _from, req, ticket| {
            let mut v = req.to_vec();
            v.reverse();
            server2.reply(ctx, ticket, Bytes::from(v));
        }));
        for n in &nodes {
            n.set_group_handler(Arc::new(|_, _| {}));
            if !Arc::ptr_eq(n, &nodes[1]) {
                n.set_rpc_handler(Arc::new(|_, _, _, _| panic!("unexpected request")));
            }
        }
        let client = Arc::clone(&nodes[0]);
        let h = sim.spawn(client.machine().proc(), "client", move |ctx| {
            let reply = client
                .rpc(ctx, 1, Bytes::from_static(b"ping"))
                .expect("rpc");
            assert_eq!(&reply[..], b"gnip");
            // A second call exercises the piggybacked-ack path.
            let reply = client.rpc(ctx, 1, Bytes::from_static(b"abc")).expect("rpc");
            assert_eq!(&reply[..], b"cba");
        });
        sim.run_until_finished(&h).expect("run");
    }
}

#[test]
fn rpc_large_payloads_roundtrip() {
    for which in all_impls() {
        let mut sim = Simulation::new(2);
        let (_net, nodes) = build_world(&mut sim, 2, &which);
        let server = Arc::clone(&nodes[1]);
        let echo = Arc::clone(&nodes[1]);
        server.set_rpc_handler(Arc::new(move |ctx, _from, req, ticket| {
            echo.reply(ctx, ticket, req);
        }));
        for n in &nodes {
            n.set_group_handler(Arc::new(|_, _| {}));
        }
        let client = Arc::clone(&nodes[0]);
        let h = sim.spawn(client.machine().proc(), "client", move |ctx| {
            let body = Bytes::from((0..8000u32).map(|i| i as u8).collect::<Vec<u8>>());
            let reply = client.rpc(ctx, 1, body.clone()).expect("rpc");
            assert_eq!(reply, body);
        });
        sim.run_until_finished(&h).expect("run");
    }
}

#[test]
fn asynchronous_reply_from_another_thread() {
    // The continuation pattern: the upcall holds the ticket; a different
    // thread replies later. Both implementations must support it (the
    // kernel one pays an extra switch internally).
    for which in all_impls() {
        let mut sim = Simulation::new(3);
        let (_net, nodes) = build_world(&mut sim, 2, &which);
        let pending: SimChannel<panda::ReplyTicket> = SimChannel::new();
        let pending_in = pending.clone();
        nodes[1].set_rpc_handler(Arc::new(move |ctx, _from, _req, ticket| {
            // Hold the request; do not reply from the upcall.
            let _ = pending_in.send(ctx, ticket);
        }));
        for n in &nodes {
            n.set_group_handler(Arc::new(|_, _| {}));
        }
        // A separate "guard became true" thread answers 2 ms later.
        let replier = Arc::clone(&nodes[1]);
        sim.spawn(nodes[1].machine().proc(), "guard-setter", move |ctx| {
            let ticket = pending.recv(ctx).expect("ticket");
            ctx.sleep(ms(2));
            replier.reply(ctx, ticket, Bytes::from_static(b"finally"));
        });
        let client = Arc::clone(&nodes[0]);
        let h = sim.spawn(client.machine().proc(), "client", move |ctx| {
            let reply = client
                .rpc(ctx, 1, Bytes::from_static(b"wait"))
                .expect("rpc");
            assert_eq!(&reply[..], b"finally");
            assert!(ctx.now().as_millis_f64() >= 2.0);
        });
        sim.run_until_finished(&h).expect("run");
    }
}

type Log = Arc<StdMutex<Vec<Vec<(u32, u64, u8)>>>>;

fn install_collectors(nodes: &[Arc<dyn Panda>]) -> Log {
    let log: Log = Arc::new(StdMutex::new(vec![Vec::new(); nodes.len()]));
    for (i, n) in nodes.iter().enumerate() {
        let log = Arc::clone(&log);
        n.set_group_handler(Arc::new(move |_ctx, d: GroupDelivery| {
            log.lock().expect("log")[i].push((
                d.sender,
                d.seq,
                d.payload.first().copied().unwrap_or(0),
            ));
        }));
        n.set_rpc_handler(Arc::new(|_, _, _, _| {}));
    }
    log
}

#[test]
fn group_total_order_both_impls() {
    for which in all_impls() {
        let mut sim = Simulation::new(5);
        let (_net, nodes) = build_world(&mut sim, 4, &which);
        let log = install_collectors(&nodes);
        let per_sender = 8usize;
        for n in nodes.iter() {
            let n = Arc::clone(n);
            sim.spawn(
                n.machine().proc(),
                &format!("send{}", n.node()),
                move |ctx| {
                    for k in 0..per_sender {
                        let body = Bytes::from(vec![k as u8; 32]);
                        n.group_send(ctx, body).expect("sequenced");
                    }
                },
            );
        }
        sim.run().expect("run");
        let log = log.lock().expect("log");
        let total = per_sender * nodes.len();
        for node_log in log.iter() {
            assert_eq!(node_log.len(), total);
            for (idx, (_, seq, _)) in node_log.iter().enumerate() {
                assert_eq!(*seq, idx as u64 + 1, "contiguous sequence numbers");
            }
            assert_eq!(node_log, &log[0], "identical order at every node");
        }
    }
}

#[test]
fn group_large_messages_bb_method() {
    for which in all_impls() {
        let mut sim = Simulation::new(6);
        let (_net, nodes) = build_world(&mut sim, 3, &which);
        let body = Bytes::from((0..8000u32).map(|i| (i % 256) as u8).collect::<Vec<u8>>());
        let seen = Arc::new(AtomicU64::new(0));
        for (i, n) in nodes.iter().enumerate() {
            let seen = Arc::clone(&seen);
            let expected = body.clone();
            n.set_group_handler(Arc::new(move |_ctx, d: GroupDelivery| {
                assert_eq!(d.payload, expected, "node {i} got the full BB payload");
                seen.fetch_add(1, Ordering::SeqCst);
            }));
            n.set_rpc_handler(Arc::new(|_, _, _, _| {}));
        }
        let sender = Arc::clone(&nodes[1]);
        sim.spawn(sender.machine().proc(), "sender", move |ctx| {
            sender.group_send(ctx, body.clone()).expect("sequenced");
        });
        sim.run().expect("run");
        assert_eq!(seen.load(Ordering::SeqCst), nodes.len() as u64);
    }
}

#[test]
fn group_survives_packet_loss_both_impls() {
    for which in all_impls() {
        let mut sim = Simulation::new(11);
        let (net, nodes) = build_world(&mut sim, 3, &which);
        net.faults().lock().rx_loss_prob = 0.04;
        let log = install_collectors(&nodes);
        let per_sender = 10usize;
        for n in nodes.iter() {
            let n = Arc::clone(n);
            sim.spawn(
                n.machine().proc(),
                &format!("send{}", n.node()),
                move |ctx| {
                    for _ in 0..per_sender {
                        n.group_send(ctx, Bytes::from(vec![7u8; 24]))
                            .expect("sequenced");
                    }
                },
            );
        }
        sim.run().expect("run");
        let log = log.lock().expect("log");
        let total = per_sender * nodes.len();
        for node_log in log.iter() {
            assert_eq!(node_log.len(), total, "all messages delivered despite loss");
            assert_eq!(node_log, &log[0]);
        }
    }
}

#[test]
fn rpc_survives_packet_loss_both_impls() {
    for which in [Stack::Kernel, Stack::User] {
        let mut sim = Simulation::new(13);
        let (net, nodes) = build_world(&mut sim, 2, &which);
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let replier = Arc::clone(&nodes[1]);
        nodes[1].set_rpc_handler(Arc::new(move |ctx, _from, req, ticket| {
            c2.fetch_add(1, Ordering::SeqCst);
            replier.reply(ctx, ticket, req);
        }));
        for n in &nodes {
            n.set_group_handler(Arc::new(|_, _| {}));
        }
        net.faults().lock().rx_loss_prob = 0.05;
        let client = Arc::clone(&nodes[0]);
        let h = sim.spawn(client.machine().proc(), "client", move |ctx| {
            for i in 0..30u32 {
                let body = Bytes::from(i.to_be_bytes().to_vec());
                let reply = client.rpc(ctx, 1, body.clone()).expect("rpc recovers");
                assert_eq!(reply, body);
            }
        });
        sim.run_until_finished(&h).expect("run");
        // At-most-once: every call executed exactly once even when requests
        // or replies were retransmitted.
        assert_eq!(counter.load(Ordering::SeqCst), 30);
    }
}

#[test]
fn user_space_cheaper_for_async_replies_kernel_cheaper_for_plain_rpc() {
    // The paper's core finding at micro level: measure a plain RPC and a
    // deferred-reply RPC on both implementations and compare the shapes.
    fn measure(which: Stack, deferred: bool) -> f64 {
        let mut sim = Simulation::new(21);
        let (_net, nodes) = build_world(&mut sim, 2, &which);
        let replier = Arc::clone(&nodes[1]);
        let pending: SimChannel<panda::ReplyTicket> = SimChannel::new();
        if deferred {
            let pending_in = pending.clone();
            nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, _r, t| {
                let _ = pending_in.send(ctx, t);
            }));
            let r2 = Arc::clone(&nodes[1]);
            sim.spawn(nodes[1].machine().proc(), "async-replier", move |ctx| {
                while let Some(t) = pending.recv(ctx) {
                    r2.reply(ctx, t, Bytes::from_static(b"ok"));
                }
            });
        } else {
            nodes[1].set_rpc_handler(Arc::new(move |ctx, _f, _r, t| {
                replier.reply(ctx, t, Bytes::from_static(b"ok"));
            }));
        }
        for n in &nodes {
            n.set_group_handler(Arc::new(|_, _| {}));
        }
        let client = Arc::clone(&nodes[0]);
        let elapsed = Arc::new(AtomicU64::new(0));
        let e2 = Arc::clone(&elapsed);
        let h = sim.spawn(client.machine().proc(), "client", move |ctx| {
            let reps = 20;
            let t0 = ctx.now();
            for _ in 0..reps {
                client.rpc(ctx, 1, Bytes::from_static(b"x")).expect("rpc");
            }
            e2.store((ctx.now() - t0).as_nanos() / reps, Ordering::SeqCst);
        });
        sim.run_until_finished(&h).expect("run");
        elapsed.load(Ordering::SeqCst) as f64 / 1000.0
    }
    let kernel_plain = measure(Stack::Kernel, false);
    let user_plain = measure(Stack::User, false);
    let kernel_deferred = measure(Stack::Kernel, true);
    let user_deferred = measure(Stack::User, true);
    assert!(
        kernel_plain < user_plain,
        "plain RPC: kernel {kernel_plain:.0}us must beat user {user_plain:.0}us"
    );
    let kernel_penalty = kernel_deferred - kernel_plain;
    let user_penalty = user_deferred - user_plain;
    assert!(
        user_penalty < kernel_penalty,
        "deferring the reply must hurt the kernel path more \
         (kernel +{kernel_penalty:.0}us vs user +{user_penalty:.0}us)"
    );
}

#[test]
fn nonblocking_broadcast_hides_latency_and_stays_ordered() {
    // The paper's Section 6 extension, only possible in user space: send
    // without waiting for the sequencer, flush before the result is needed.
    let mut sim = Simulation::new(31);
    // Built directly (not through build_world): the test needs the concrete
    // UserSpacePanda type for its nonblocking group_module() extension.
    let machines = testutil::boot_machines(&mut sim, 3).machines;
    let nodes = panda::UserSpacePanda::build(&mut sim, &machines, &panda::PandaConfig::default());
    let order: Arc<StdMutex<Vec<Vec<u8>>>> = Arc::new(StdMutex::new(vec![Vec::new(); nodes.len()]));
    for (i, n) in nodes.iter().enumerate() {
        let order = Arc::clone(&order);
        n.set_group_handler(Arc::new(move |_ctx, d: GroupDelivery| {
            order.lock().expect("order")[i].push(d.payload[0]);
        }));
        n.set_rpc_handler(Arc::new(|_, _, _, _| {}));
    }
    let sender = Arc::clone(&nodes[0]);
    let elapsed_async = Arc::new(AtomicU64::new(0));
    let ea = Arc::clone(&elapsed_async);
    let h = sim.spawn(nodes[0].machine().proc(), "sender", move |ctx| {
        let group = sender.group_module();
        // Nonblocking burst: returns immediately per message.
        let t0 = ctx.now();
        for k in 0..10u8 {
            group.send_nonblocking(ctx, Bytes::from(vec![k; 16]));
        }
        let fire_time = ctx.now() - t0;
        group.flush(ctx).expect("flush");
        ea.store(fire_time.as_nanos(), Ordering::SeqCst);
        // A blocking send for comparison: one full sequencer round trip.
        let t0 = ctx.now();
        sender
            .group_send(ctx, Bytes::from(vec![99u8; 16]))
            .expect("send");
        let one_blocking = ctx.now() - t0;
        assert!(
            fire_time < one_blocking * 10,
            "10 nonblocking sends ({fire_time}) must beat 10 blocking round trips"
        );
    });
    sim.run_until_finished(&h).expect("run");
    let _ = sim.run(); // drain remaining deliveries everywhere
    let order = order.lock().expect("order");
    for node_log in order.iter() {
        assert_eq!(node_log.len(), 11, "all messages delivered");
        assert_eq!(
            node_log, &order[0],
            "identical total order with async sends"
        );
        // The sender's own burst stays in submission order.
        assert_eq!(&node_log[..10], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }
    assert!(elapsed_async.load(Ordering::SeqCst) > 0);
}

#[test]
fn nonblocking_flush_recovers_from_lost_request() {
    let mut sim = Simulation::new(33);
    let world = testutil::boot_machines(&mut sim, 2);
    let (net, machines) = (world.net, world.machines);
    let nodes = panda::UserSpacePanda::build(&mut sim, &machines, &panda::PandaConfig::default());
    let delivered = Arc::new(AtomicU64::new(0));
    for n in &nodes {
        let delivered = Arc::clone(&delivered);
        n.set_group_handler(Arc::new(move |_ctx, _d| {
            delivered.fetch_add(1, Ordering::SeqCst);
        }));
        n.set_rpc_handler(Arc::new(|_, _, _, _| {}));
    }
    let sender = Arc::clone(&nodes[1]); // not the sequencer: traffic hits the wire
    let h = sim.spawn(nodes[1].machine().proc(), "sender", move |ctx| {
        // Kill the next frame: the async request dies on the wire.
        net.faults().lock().force_drop_next = 1;
        sender
            .group_module()
            .send_nonblocking(ctx, Bytes::from_static(b"x"));
        sender.group_module().flush(ctx).expect("flush retransmits");
    });
    sim.run_until_finished(&h).expect("run");
    let _ = sim.run();
    assert_eq!(
        delivered.load(Ordering::SeqCst),
        2,
        "delivered at both nodes"
    );
}
