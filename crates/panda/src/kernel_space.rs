//! Panda implemented on Amoeba's **kernel-space** protocols (the left half of
//! Figure 2): thin wrapper routines make the kernel RPC and group primitives
//! look like the Panda interface.
//!
//! Two structural consequences the paper measures:
//!
//! - Amoeba expects server threads to block in `get_request`, so implicit
//!   receipt is built with a pool of daemon threads;
//! - the reply must be sent by the thread that issued `get_request`, so an
//!   asynchronous [`Panda::reply`] from another thread has to signal the
//!   original daemon, re-introducing a context switch and a blocked server
//!   thread — undoing the Orca runtime's continuation optimization.

use std::fmt;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use desim::{Ctx, SimChannel, Simulation};
use parking_lot::Mutex;

use amoeba::{GroupMember, GroupSpec, Machine, Port, RpcClient, RpcConfig, RpcServer};

use crate::transport::{
    CommError, GroupHandler, NodeId, Panda, PandaConfig, ReplyTicket, RpcHandler, TicketInner,
};

/// RPC service port of node `n`.
fn node_port(n: NodeId) -> Port {
    Port(0x5000 + u64::from(n))
}

struct Handlers {
    rpc: Option<RpcHandler>,
    group: Option<GroupHandler>,
}

/// One node of the kernel-space Panda implementation.
pub struct KernelSpacePanda {
    node: NodeId,
    nodes: u32,
    machine: Machine,
    client: RpcClient,
    member: GroupMember,
    handlers: Arc<Mutex<Handlers>>,
}

impl fmt::Debug for KernelSpacePanda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelSpacePanda")
            .field("node", &self.node)
            .field("machine", &self.machine.name())
            .finish()
    }
}

impl KernelSpacePanda {
    /// Builds the kernel-space Panda world: one node per machine, RPC
    /// services registered in each kernel, one kernel group spanning all
    /// nodes, and the daemon threads that turn Amoeba's explicit receipt
    /// into Panda's implicit receipt.
    pub fn build(
        sim: &mut Simulation,
        machines: &[Machine],
        config: &PandaConfig,
    ) -> Vec<Arc<KernelSpacePanda>> {
        assert!(
            !config.dedicated_sequencer,
            "a dedicated sequencer machine is a user-space configuration; \
             the kernel sequencer always runs inside a member kernel"
        );
        let n = machines.len() as u32;
        assert!(config.sequencer_node < n, "sequencer must be a node");
        let mut spec = GroupSpec::build(0x77, machines.len(), config.sequencer_node as usize);
        spec.config.send_timeout = config.group_send_timeout;
        spec.config.send_retries = config.group_send_retries;
        spec.config.status_interval = config.group_status_interval;
        spec.config.resync_interval = config.kernel_group_resync_interval;
        let mut out = Vec::with_capacity(machines.len());
        for (i, machine) in machines.iter().enumerate() {
            let node = i as NodeId;
            let server = RpcServer::register(machine, node_port(node));
            let client = RpcClient::install(
                machine,
                RpcConfig {
                    timeout: config.rpc_timeout,
                    retries: config.rpc_retries,
                },
            );
            let member = GroupMember::join(machine, spec.clone(), node);
            // Sequencer laggard-resync daemon (kernel thread; only if the
            // configuration enables it — see GroupConfig::resync_interval).
            if member.is_sequencer() && !config.kernel_group_resync_interval.is_zero() {
                let member_r = member.clone();
                sim.spawn_daemon_on_lane(
                    machine.lane(),
                    machine.proc(),
                    &format!("{}-gresync", machine.name()),
                    move |ctx| member_r.run_resync_daemon(ctx),
                );
            }
            let panda = Arc::new(KernelSpacePanda {
                node,
                nodes: n,
                machine: machine.clone(),
                client,
                member: member.clone(),
                handlers: Arc::new(Mutex::new(Handlers {
                    rpc: None,
                    group: None,
                })),
            });
            // RPC daemon pool: each thread loops get_request -> upcall ->
            // put_reply. A deferred reply parks the daemon on a slot until
            // some other thread calls Panda::reply (the workaround).
            for d in 0..config.rpc_server_pool {
                let server = server.clone();
                let panda_d = Arc::clone(&panda);
                sim.spawn_daemon_on_lane(
                    machine.lane(),
                    machine.proc(),
                    &format!("{}-rpcd{}", machine.name(), d),
                    move |ctx| loop {
                        let (req, token) = server.get_request(ctx);
                        let slot: SimChannel<Bytes> = SimChannel::new();
                        let ticket = ReplyTicket(TicketInner::Kernel { slot: slot.clone() });
                        let (from, body) = decode_from(&req);
                        let handler = panda_d
                            .handlers
                            .lock()
                            .rpc
                            .clone()
                            .expect("rpc handler installed before traffic");
                        handler(ctx, from, body, ticket);
                        // Wait for the reply (immediate if the handler
                        // answered inside the upcall) and send it from THIS
                        // thread, as the Amoeba kernel demands.
                        let reply = slot.recv(ctx).expect("reply slot never closes");
                        server.put_reply(ctx, token, reply);
                    },
                );
            }
            // Group receive daemon: pulls the kernel's ordered stream and
            // upcalls the Panda group handler.
            let member_d = member.clone();
            let panda_g = Arc::clone(&panda);
            sim.spawn_daemon_on_lane(
                machine.lane(),
                machine.proc(),
                &format!("{}-grpd", machine.name()),
                move |ctx| loop {
                    let msg = member_d.recv(ctx);
                    let handler = panda_g
                        .handlers
                        .lock()
                        .group
                        .clone()
                        .expect("group handler installed before traffic");
                    handler(
                        ctx,
                        crate::transport::GroupDelivery {
                            sender: msg.sender,
                            seq: msg.seq,
                            payload: msg.payload,
                        },
                    );
                },
            );
            out.push(panda);
        }
        out
    }

    /// The kernel group member (diagnostics).
    pub fn group_member(&self) -> &GroupMember {
        &self.member
    }
}

/// Requests carry the caller's node id in a 4-byte prefix (Panda-level
/// information the Amoeba port field does not provide).
fn encode_from(from: NodeId, body: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + body.len());
    buf.put_u32(from);
    buf.put_slice(body);
    buf.freeze()
}

fn decode_from(wire: &Bytes) -> (NodeId, Bytes) {
    let from = NodeId::from_be_bytes(wire[..4].try_into().expect("4-byte prefix"));
    (from, wire.slice(4..))
}

impl Panda for KernelSpacePanda {
    fn node(&self) -> NodeId {
        self.node
    }

    fn nodes(&self) -> u32 {
        self.nodes
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn set_rpc_handler(&self, handler: RpcHandler) {
        self.handlers.lock().rpc = Some(handler);
    }

    fn set_group_handler(&self, handler: GroupHandler) {
        self.handlers.lock().group = Some(handler);
    }

    fn rpc(&self, ctx: &Ctx, dst: NodeId, request: Bytes) -> Result<Bytes, CommError> {
        assert_ne!(dst, self.node, "local invocations never go through RPC");
        self.client
            .trans(ctx, node_port(dst), encode_from(self.node, &request))
            .map_err(|amoeba::RpcError::Timeout| CommError::Timeout)
    }

    fn reply(&self, ctx: &Ctx, ticket: ReplyTicket, reply: Bytes) {
        match ticket.0 {
            TicketInner::Kernel { slot } => {
                // Signal the parked get_request daemon; it performs the
                // actual put_reply. The signal is a system call (Amoeba
                // threads are kernel threads), and handing the CPU to the
                // daemon costs the extra context switch the paper attributes
                // to the kernel-space path for asynchronous replies.
                let cost = self.machine.cost();
                ctx.compute(cost.syscall(cost.shallow_call_depth));
                let _ = slot.send(ctx, reply);
            }
            TicketInner::User { .. } => {
                panic!("user-space ticket answered through the kernel-space implementation")
            }
        }
    }

    fn group_send(&self, ctx: &Ctx, msg: Bytes) -> Result<(), CommError> {
        self.member
            .send(ctx, msg)
            .map(|_seq| ())
            .map_err(|amoeba::GroupError::Timeout| CommError::Timeout)
    }
}
