//! The Panda **system layer** of the user-space implementation: the
//! OS-dependent bottom of Figure 1.
//!
//! It wraps Amoeba's user-level FLIP system calls, runs the per-node receive
//! daemon that pulls messages out of the kernel and upcalls the RPC or group
//! module, and owns the Panda wire header (64 bytes for RPC, 40 bytes for
//! group traffic — the header sizes the paper compares against Amoeba's 56
//! and 52 bytes).

use std::fmt;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use desim::trace::Layer;
use desim::{Ctx, SimChannel, Simulation};
use ethernet::McastAddr;
use flip::{FlipAddr, FlipMessage};
use parking_lot::Mutex;

use amoeba::Machine;

use crate::transport::NodeId;

/// Panda RPC header size on the wire (paper, Section 4.2).
pub const PANDA_RPC_HEADER_BYTES: usize = 64;

/// Panda group header size on the wire (paper, Section 4.3).
pub const PANDA_GROUP_HEADER_BYTES: usize = 40;

/// FLIP address of node `n`'s Panda endpoint.
pub fn panda_addr(n: NodeId) -> FlipAddr {
    FlipAddr(0x7000_0000_0000_0000 | u64::from(n))
}

/// FLIP group address shared by all Panda nodes of one world.
pub fn panda_group_addr() -> FlipAddr {
    FlipAddr(0x7800_0000_0000_0000)
}

/// Ethernet multicast group backing the Panda FLIP group.
pub fn panda_eth_group() -> McastAddr {
    McastAddr(0x2000)
}

/// Which protocol module a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Module {
    /// Panda RPC.
    Rpc,
    /// Panda totally ordered group communication.
    Group,
}

impl Module {
    fn to_byte(self) -> u8 {
        match self {
            Module::Rpc => 0,
            Module::Group => 1,
        }
    }
    fn from_byte(b: u8) -> Option<Module> {
        match b {
            0 => Some(Module::Rpc),
            1 => Some(Module::Group),
            _ => None,
        }
    }
    /// Header size this module puts on every message.
    pub fn header_bytes(self) -> usize {
        match self {
            Module::Rpc => PANDA_RPC_HEADER_BYTES,
            Module::Group => PANDA_GROUP_HEADER_BYTES,
        }
    }
}

/// The Panda wire header. Field meaning depends on the module/kind:
/// for RPC `a` is the request sequence number and `b` the piggybacked
/// acknowledgement; for group traffic `a` is the global sequence number and
/// `b` the delivery-progress piggyback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PandaHeader {
    /// Protocol module.
    pub module: Module,
    /// Module-specific message kind.
    pub kind: u8,
    /// Originating node (for sequenced group messages: the original sender,
    /// not the sequencer).
    pub src: NodeId,
    /// Per-source message identifier.
    pub msg_id: u64,
    /// Module-specific field (see type docs).
    pub a: u64,
    /// Module-specific field (see type docs).
    pub b: u64,
}

impl PandaHeader {
    /// Encodes the header (padded to the module's wire size) plus `body`.
    pub fn encode_with(&self, body: &[u8]) -> Bytes {
        let size = self.module.header_bytes();
        let mut buf = BytesMut::with_capacity(size + body.len());
        buf.put_u8(self.module.to_byte());
        buf.put_u8(self.kind);
        buf.put_u32(self.src);
        buf.put_u64(self.msg_id);
        buf.put_u64(self.a);
        buf.put_u64(self.b);
        buf.put_bytes(0, size - 30);
        debug_assert_eq!(buf.len(), size);
        buf.put_slice(body);
        buf.freeze()
    }

    /// Decodes a header and returns the remaining body.
    pub fn decode(wire: &Bytes) -> Option<(PandaHeader, Bytes)> {
        if wire.len() < 30 {
            return None;
        }
        let b = &wire[..];
        let module = Module::from_byte(b[0])?;
        if wire.len() < module.header_bytes() {
            return None;
        }
        let rd64 = |o: usize| u64::from_be_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        Some((
            PandaHeader {
                module,
                kind: b[1],
                src: NodeId::from_be_bytes(b[2..6].try_into().expect("4 bytes")),
                msg_id: rd64(6),
                a: rd64(14),
                b: rd64(22),
            },
            wire.slice(module.header_bytes()..),
        ))
    }
}

/// Upcall from the system layer into a protocol module. Runs on the receive
/// daemon thread; must run to completion quickly.
pub type ModuleUpcall = Arc<dyn Fn(&Ctx, PandaHeader, Bytes) + Send + Sync>;

struct Upcalls {
    rpc: Option<ModuleUpcall>,
    group: Option<ModuleUpcall>,
}

/// The per-node system layer: FLIP endpoint registration, the receive
/// daemon, and cost-charged send entry points.
pub struct SysLayer {
    machine: Machine,
    node: NodeId,
    upcalls: Arc<Mutex<Upcalls>>,
}

impl fmt::Debug for SysLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SysLayer")
            .field("node", &self.node)
            .field("machine", &self.machine.name())
            .finish()
    }
}

impl SysLayer {
    /// Brings up the system layer on `machine` as node `node`: registers the
    /// Panda endpoint and group with the kernel and starts the receive
    /// daemon.
    pub fn start(sim: &mut Simulation, machine: &Machine, node: NodeId) -> Arc<SysLayer> {
        let inbox: SimChannel<FlipMessage> = SimChannel::new();
        machine.register_user_endpoint_into(panda_addr(node), inbox.clone());
        machine.join_user_group_into(panda_group_addr(), panda_eth_group(), inbox.clone());
        let sys = Arc::new(SysLayer {
            machine: machine.clone(),
            node,
            upcalls: Arc::new(Mutex::new(Upcalls {
                rpc: None,
                group: None,
            })),
        });
        let daemon_sys = Arc::clone(&sys);
        sim.spawn_daemon_on_lane(
            machine.lane(),
            machine.proc(),
            &format!("{}-pandad", machine.name()),
            move |ctx| daemon_sys.receive_daemon(ctx, inbox),
        );
        sys
    }

    /// Installs the RPC module upcall.
    pub fn set_rpc_upcall(&self, up: ModuleUpcall) {
        self.upcalls.lock().rpc = Some(up);
    }

    /// Installs the group module upcall.
    pub fn set_group_upcall(&self, up: ModuleUpcall) {
        self.upcalls.lock().group = Some(up);
    }

    /// The system-level receive daemon: fetches messages from the kernel and
    /// upcalls the protocol modules. Being an ordinary thread, every message
    /// it handles costs a context switch (charged by the CPU model) plus the
    /// blocking-receive system call — the structural price of user space.
    fn receive_daemon(&self, ctx: &Ctx, inbox: SimChannel<FlipMessage>) {
        let cost = self.machine.cost().clone();
        while let Some(fm) = inbox.recv(ctx) {
            // Return from the blocking receive syscall with Panda's deep
            // stack: all register windows fault back in.
            ctx.trace_cost(Layer::Flip, "syscall", cost.syscall(cost.deep_call_depth));
            ctx.compute(cost.syscall(cost.deep_call_depth));
            let Some((header, body)) = PandaHeader::decode(&fm.payload) else {
                continue;
            };
            let layer = match header.module {
                Module::Rpc => Layer::Rpc,
                Module::Group => Layer::Group,
            };
            ctx.trace_instant(
                layer,
                "sys_upcall",
                &[("src", u64::from(header.src)), ("bytes", body.len() as u64)],
            );
            let up = {
                let ups = self.upcalls.lock();
                match header.module {
                    Module::Rpc => ups.rpc.clone(),
                    Module::Group => ups.group.clone(),
                }
            };
            if let Some(up) = up {
                up(ctx, header, body);
            }
        }
    }

    /// Sends a Panda message to node `dst`. Charges Panda's own (portable)
    /// fragmentation layer plus the user-level FLIP send syscall.
    pub fn send(&self, ctx: &Ctx, dst: NodeId, header: PandaHeader, body: &Bytes) {
        ctx.trace_cost(
            Layer::Flip,
            "fragmentation_layer",
            self.machine.cost().fragmentation_layer,
        );
        ctx.compute(self.machine.cost().fragmentation_layer);
        let wire = header.encode_with(body);
        self.machine
            .flip_send_syscall(ctx, panda_addr(self.node), panda_addr(dst), wire);
    }

    /// Multicasts a Panda message to the whole group. `charge_fragmentation`
    /// is false for sequencer traffic: the paper notes double fragmentation
    /// occurs only at the sending member because the sequencer orders at the
    /// fragment level.
    pub fn send_group(
        &self,
        ctx: &Ctx,
        header: PandaHeader,
        body: &Bytes,
        charge_fragmentation: bool,
    ) {
        if charge_fragmentation {
            ctx.trace_cost(
                Layer::Flip,
                "fragmentation_layer",
                self.machine.cost().fragmentation_layer,
            );
            ctx.compute(self.machine.cost().fragmentation_layer);
        }
        let wire = header.encode_with(body);
        self.machine
            .flip_send_group_syscall(ctx, panda_addr(self.node), panda_group_addr(), wire);
    }

    /// The node this layer serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The machine this layer runs on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_rpc() {
        let h = PandaHeader {
            module: Module::Rpc,
            kind: 1,
            src: 3,
            msg_id: 99,
            a: 7,
            b: 6,
        };
        let wire = h.encode_with(b"abc");
        assert_eq!(wire.len(), PANDA_RPC_HEADER_BYTES + 3);
        let (h2, body) = PandaHeader::decode(&wire).expect("decode");
        assert_eq!(h, h2);
        assert_eq!(&body[..], b"abc");
    }

    #[test]
    fn header_roundtrip_group() {
        let h = PandaHeader {
            module: Module::Group,
            kind: 4,
            src: 0,
            msg_id: 1,
            a: 2,
            b: 3,
        };
        let wire = h.encode_with(&[0u8; 100]);
        assert_eq!(wire.len(), PANDA_GROUP_HEADER_BYTES + 100);
        let (h2, body) = PandaHeader::decode(&wire).expect("decode");
        assert_eq!(h, h2);
        assert_eq!(body.len(), 100);
    }

    #[test]
    fn short_or_garbage_rejected() {
        assert!(PandaHeader::decode(&Bytes::from_static(&[1, 2, 3])).is_none());
        let mut junk = vec![0u8; 64];
        junk[0] = 9; // unknown module
        assert!(PandaHeader::decode(&Bytes::from(junk)).is_none());
    }

    #[test]
    fn header_sizes_match_paper() {
        assert_eq!(Module::Rpc.header_bytes(), 64);
        assert_eq!(Module::Group.header_bytes(), 40);
    }
}
