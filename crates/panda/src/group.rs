//! Panda's user-space totally ordered group communication.
//!
//! Same protocol family as the Amoeba kernel version (sequencer ordering, PB
//! for small messages, BB for large ones, history + retransmission), but the
//! sequencer is an ordinary **user thread**: every message it orders costs an
//! interrupt-to-thread dispatch (110 µs; 60 µs when the sequencer machine is
//! dedicated) and two system calls — the overheads of Section 4.3. In
//! exchange the protocol is flexible: it lives entirely in this module and
//! needs no kernel changes to evolve (the paper's Section 6 argument).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use desim::trace::{Layer, Phase};
use desim::{Ctx, RecvTimeoutError, SimChannel, SimDuration, Simulation, SwitchCharge};
use parking_lot::Mutex;

use crate::system::{Module, PandaHeader, SysLayer, PANDA_GROUP_HEADER_BYTES};
use crate::transport::{CommError, GroupDelivery, GroupHandler, NodeId};

const KIND_REQ: u8 = 0;
const KIND_REQ_BB: u8 = 1;
const KIND_SEQ: u8 = 2;
const KIND_BB_DATA: u8 = 3;
const KIND_ACCEPT: u8 = 4;
const KIND_RETRANS: u8 = 5;
const KIND_STATUS: u8 = 6;

/// Tuning of the user-space group protocol.
#[derive(Debug, Clone)]
pub struct UserGroupConfig {
    /// Messages larger than this are broadcast by the sender (BB method).
    pub bb_threshold: usize,
    /// History entries kept past the slowest member's acknowledged point.
    pub history_max: usize,
    /// History entries resent per retransmission request.
    pub retrans_chunk: u64,
    /// Sender timeout before repeating its request to the sequencer.
    pub send_timeout: SimDuration,
    /// Send (re)tries before giving up.
    pub send_retries: u32,
    /// Sequencer resync interval while members lag.
    pub resync_interval: SimDuration,
    /// A member reports progress after this many deliveries.
    pub status_interval: u64,
}

impl Default for UserGroupConfig {
    fn default() -> Self {
        UserGroupConfig {
            bb_threshold: flip::FLIP_FRAGMENT_BYTES - PANDA_GROUP_HEADER_BYTES,
            history_max: 4096,
            retrans_chunk: 32,
            send_timeout: SimDuration::from_millis(400),
            send_retries: 8,
            resync_interval: SimDuration::from_millis(250),
            status_interval: 20,
        }
    }
}

/// Work items forwarded from the receive daemon to the sequencer thread.
enum SeqWork {
    Request {
        sender: NodeId,
        msg_id: u64,
        payload: Option<Bytes>, // None: BB announcement, data travels separately
        piggyback: u64,
    },
    BbArrived {
        sender: NodeId,
        msg_id: u64,
    },
    Retrans {
        requester: NodeId,
        from: u64,
        piggyback: u64,
    },
    Status {
        member: NodeId,
        piggyback: u64,
    },
}

/// Member-side receiver state.
struct MemberState {
    next_deliver: u64,
    ooo: BTreeMap<u64, (NodeId, u64, Bytes)>,
    accepts: BTreeMap<u64, (NodeId, u64)>,
    bb_store: HashMap<(NodeId, u64), Bytes>,
    delivered_msg: HashMap<NodeId, u64>,
    send_waiters: HashMap<u64, SimChannel<u64>>,
    next_msg_id: u64,
    since_status: u64,
    last_gap_request: u64,
    last_status_at: desim::SimTime,
    /// Outstanding nonblocking sends: `msg_id -> (request header, body)` for
    /// retransmission at flush time.
    pending_async: HashMap<u64, (PandaHeader, Bytes)>,
}

/// Sequencer-thread state (owned by the thread, no sharing).
struct SeqState {
    next_seq: u64,
    history: BTreeMap<u64, (NodeId, u64, Bytes)>,
    seen: HashMap<(NodeId, u64), u64>,
    delivered: Vec<u64>,
    pending_bb: HashMap<(NodeId, u64), u64>,
    overflow_drops: u64,
}

/// The user-space group module for one member node.
pub struct UserGroup {
    sys: Arc<SysLayer>,
    config: UserGroupConfig,
    /// Member id == node id; the member list covers all app nodes plus a
    /// dedicated sequencer node if configured.
    n_members: u32,
    sequencer: NodeId,
    dedicated: bool,
    state: Mutex<MemberState>,
    handler: Mutex<Option<GroupHandler>>,
    /// Present only on the sequencer node: feed to the sequencer thread.
    seq_chan: Option<SimChannel<SeqWork>>,
    /// Sequencer node only: local delivery progress, written by the receive
    /// daemon and read by the sequencer thread (cheaper than fake work
    /// items for self-reporting).
    local_delivered: std::sync::atomic::AtomicU64,
}

impl fmt::Debug for UserGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UserGroup")
            .field("node", &self.sys.node())
            .field("sequencer", &self.sequencer)
            .finish()
    }
}

impl UserGroup {
    /// Creates the group module on `sys`, registering its upcall. If this
    /// node is the sequencer, the sequencer thread is spawned here.
    pub fn start(
        sim: &mut Simulation,
        sys: Arc<SysLayer>,
        config: UserGroupConfig,
        n_members: u32,
        sequencer: NodeId,
        dedicated: bool,
    ) -> Arc<UserGroup> {
        let am_sequencer = sys.node() == sequencer;
        let seq_chan = am_sequencer.then(SimChannel::new);
        let group = Arc::new(UserGroup {
            sys: Arc::clone(&sys),
            config,
            n_members,
            sequencer,
            dedicated,
            state: Mutex::new(MemberState {
                next_deliver: 1,
                ooo: BTreeMap::new(),
                accepts: BTreeMap::new(),
                bb_store: HashMap::new(),
                delivered_msg: HashMap::new(),
                send_waiters: HashMap::new(),
                next_msg_id: 1,
                since_status: 0,
                last_gap_request: 0,
                last_status_at: desim::SimTime::ZERO,
                pending_async: HashMap::new(),
            }),
            handler: Mutex::new(None),
            seq_chan: seq_chan.clone(),
            local_delivered: std::sync::atomic::AtomicU64::new(0),
        });
        let upcall_group = Arc::clone(&group);
        sys.set_group_upcall(Arc::new(move |ctx, header, body| {
            upcall_group.upcall(ctx, header, body);
        }));
        if let Some(chan) = seq_chan {
            let seq_group = Arc::clone(&group);
            sim.spawn_daemon_on_lane(
                sys.machine().lane(),
                sys.machine().proc(),
                &format!("{}-seqr", sys.machine().name()),
                move |ctx| seq_group.sequencer_thread(ctx, chan),
            );
        }
        group
    }

    /// Installs the delivery upcall.
    pub fn set_handler(&self, handler: GroupHandler) {
        *self.handler.lock() = Some(handler);
    }

    /// Number of buffered not-yet-deliverable messages (diagnostics).
    pub fn backlog(&self) -> usize {
        let st = self.state.lock();
        st.ooo.len() + st.accepts.len()
    }

    // -- sending ----------------------------------------------------------

    /// Broadcasts with total order; blocks until the message is sequenced
    /// and delivered locally.
    ///
    /// # Errors
    ///
    /// [`CommError::Timeout`] if the sequencer never orders the message.
    pub fn send(&self, ctx: &Ctx, payload: Bytes) -> Result<(), CommError> {
        let me = self.sys.node();
        let (msg_id, waiter) = {
            let mut st = self.state.lock();
            let id = st.next_msg_id;
            st.next_msg_id += 1;
            let w = SimChannel::new();
            st.send_waiters.insert(id, w.clone());
            (id, w)
        };
        let piggyback = self.state.lock().next_deliver - 1;
        let big = payload.len() > self.config.bb_threshold;
        let req_header = PandaHeader {
            module: Module::Group,
            kind: if big { KIND_REQ_BB } else { KIND_REQ },
            src: me,
            msg_id,
            a: 0,
            b: piggyback,
        };
        ctx.trace_emit(
            Layer::Group,
            Phase::Begin,
            "grp_send",
            &[
                ("msg_id", msg_id),
                ("bytes", payload.len() as u64),
                ("bb", u64::from(big)),
            ],
        );
        ctx.trace_cost(
            Layer::Group,
            "protocol_layer",
            self.sys.machine().cost().protocol_layer,
        );
        ctx.compute(self.sys.machine().cost().protocol_layer);
        let mut result = Err(CommError::Timeout);
        for attempt in 0..=self.config.send_retries {
            if attempt > 0 {
                ctx.trace_instant(
                    Layer::Group,
                    "retransmit",
                    &[("msg_id", msg_id), ("attempt", u64::from(attempt))],
                );
            }
            if big && attempt == 0 {
                let bb_header = PandaHeader {
                    module: Module::Group,
                    kind: KIND_BB_DATA,
                    src: me,
                    msg_id,
                    a: 0,
                    b: piggyback,
                };
                self.sys.send_group(ctx, bb_header, &payload, true);
                self.sys
                    .send(ctx, self.sequencer, req_header, &Bytes::new());
            } else if big {
                self.sys
                    .send(ctx, self.sequencer, req_header, &Bytes::new());
            } else {
                self.sys.send(ctx, self.sequencer, req_header, &payload);
            }
            let backoff = self.config.send_timeout * (1u64 << attempt.min(3));
            match waiter.recv_timeout(ctx, backoff) {
                Ok(_seq) => {
                    result = Ok(());
                    break;
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Closed) => break,
            }
        }
        self.state.lock().send_waiters.remove(&msg_id);
        ctx.trace_emit(
            Layer::Group,
            Phase::End,
            "grp_send",
            &[("msg_id", msg_id), ("ok", u64::from(result.is_ok()))],
        );
        result
    }

    /// Broadcasts without waiting for the sequencer — the paper's Section 6
    /// extension, possible **only** in the user-space implementation (the
    /// Amoeba kernel protocol would need kernel modifications). Total order
    /// is still guaranteed by the sequencer; call [`UserGroup::flush`] at a
    /// point where delivery must have happened. Returns the message id.
    pub fn send_nonblocking(&self, ctx: &Ctx, payload: Bytes) -> u64 {
        let me = self.sys.node();
        let (msg_id, piggyback) = {
            let mut st = self.state.lock();
            let id = st.next_msg_id;
            st.next_msg_id += 1;
            let w = SimChannel::new();
            st.send_waiters.insert(id, w);
            (id, st.next_deliver - 1)
        };
        let big = payload.len() > self.config.bb_threshold;
        let req_header = PandaHeader {
            module: Module::Group,
            kind: if big { KIND_REQ_BB } else { KIND_REQ },
            src: me,
            msg_id,
            a: 0,
            b: piggyback,
        };
        let req_body = if big { Bytes::new() } else { payload.clone() };
        if big {
            let bb_header = PandaHeader {
                module: Module::Group,
                kind: KIND_BB_DATA,
                src: me,
                msg_id,
                a: 0,
                b: piggyback,
            };
            self.sys.send_group(ctx, bb_header, &payload, true);
        }
        self.sys.send(ctx, self.sequencer, req_header, &req_body);
        self.state
            .lock()
            .pending_async
            .insert(msg_id, (req_header, req_body));
        msg_id
    }

    /// Blocks until every outstanding nonblocking send has been sequenced
    /// and delivered locally, retransmitting as needed.
    ///
    /// # Errors
    ///
    /// [`CommError::Timeout`] if the sequencer stops answering.
    pub fn flush(&self, ctx: &Ctx) -> Result<(), CommError> {
        loop {
            let next = {
                let st = self.state.lock();
                st.pending_async.keys().next().copied()
            };
            let Some(msg_id) = next else { return Ok(()) };
            let waiter = self.state.lock().send_waiters.get(&msg_id).cloned();
            let Some(waiter) = waiter else {
                // Already delivered (the waiter fired before flush).
                self.state.lock().pending_async.remove(&msg_id);
                continue;
            };
            let mut done = false;
            for _attempt in 0..=self.config.send_retries {
                match waiter.recv_timeout(ctx, self.config.send_timeout) {
                    Ok(_seq) => {
                        done = true;
                        break;
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        let (header, body) = {
                            let st = self.state.lock();
                            match st.pending_async.get(&msg_id) {
                                Some((h, b)) => (*h, b.clone()),
                                None => {
                                    done = true;
                                    break;
                                }
                            }
                        };
                        self.sys.send(ctx, self.sequencer, header, &body);
                    }
                    Err(RecvTimeoutError::Closed) => break,
                }
            }
            let mut st = self.state.lock();
            st.pending_async.remove(&msg_id);
            st.send_waiters.remove(&msg_id);
            if !done {
                return Err(CommError::Timeout);
            }
        }
    }

    // -- the sequencer thread ---------------------------------------------

    /// The sequencer: an ordinary user thread fed by the receive daemon.
    fn sequencer_thread(&self, ctx: &Ctx, chan: SimChannel<SeqWork>) {
        let cost = self.sys.machine().cost().clone();
        let dispatch_charge = if self.dedicated {
            cost.sequencer_thread_switch_dedicated
        } else {
            cost.sequencer_thread_switch
        };
        let mut seq = SeqState {
            next_seq: 1,
            history: BTreeMap::new(),
            seen: HashMap::new(),
            delivered: vec![0; self.n_members as usize],
            pending_bb: HashMap::new(),
            overflow_drops: 0,
        };
        let me = self.sys.node() as usize;
        loop {
            // Refresh our own member's progress from the receive daemon.
            if me < seq.delivered.len() {
                let local = self
                    .local_delivered
                    .load(std::sync::atomic::Ordering::Relaxed);
                seq.delivered[me] = seq.delivered[me].max(local);
            }
            let lagging = {
                let max_acked = seq.delivered.iter().copied().min().unwrap_or(0);
                max_acked + 1 < seq.next_seq
            };
            let work = if lagging {
                match chan.recv_timeout(ctx, self.config.resync_interval) {
                    Ok(w) => Some(w),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Closed) => return,
                }
            } else {
                match chan.recv(ctx) {
                    Some(w) => Some(w),
                    None => return,
                }
            };
            let Some(work) = work else {
                self.resync_laggards(ctx, &mut seq);
                continue;
            };
            // Dispatch from the interrupt path to this thread: the paper's
            // 110 us (60 us when this machine is a dedicated sequencer),
            // plus the system call fetching the message from the network.
            ctx.trace_cost(Layer::Group, "sequencer_dispatch", dispatch_charge);
            ctx.trace_cost(Layer::Group, "syscall", cost.syscall(cost.deep_call_depth));
            ctx.trace_cost(Layer::Group, "protocol_layer", cost.protocol_layer);
            ctx.compute_charged(
                cost.syscall(cost.deep_call_depth) + cost.protocol_layer,
                SwitchCharge::Fixed(dispatch_charge),
            );
            match work {
                SeqWork::Request {
                    sender,
                    msg_id,
                    payload,
                    piggyback,
                } => {
                    self.note_progress(&mut seq, sender, piggyback);
                    let key = (sender, msg_id);
                    if let Some(&assigned) = seq.seen.get(&key) {
                        ctx.trace_instant(
                            Layer::Group,
                            "dup_suppressed",
                            &[("sender", u64::from(sender)), ("seq", assigned)],
                        );
                        if let Some((s, m, data)) = seq.history.get(&assigned).cloned() {
                            if data.len() > self.config.bb_threshold {
                                // The sender holds its own BB data; a small
                                // accept suffices (resending 8 KB under
                                // congestion would only feed the collapse).
                                let header = PandaHeader {
                                    module: Module::Group,
                                    kind: KIND_ACCEPT,
                                    src: s,
                                    msg_id: m,
                                    a: assigned,
                                    b: 0,
                                };
                                self.sys.send(ctx, sender, header, &Bytes::new());
                            } else {
                                self.resend_seq(ctx, sender, s, m, assigned, &data);
                            }
                        }
                        continue;
                    }
                    let payload = match payload {
                        Some(p) => p,
                        None => match self.state.lock().bb_store.get(&key).cloned() {
                            Some(data) => data,
                            None => {
                                seq.pending_bb.insert(key, piggyback);
                                continue;
                            }
                        },
                    };
                    self.assign(ctx, &mut seq, sender, msg_id, payload);
                }
                SeqWork::BbArrived { sender, msg_id } => {
                    let key = (sender, msg_id);
                    if seq.pending_bb.remove(&key).is_some() {
                        if let Some(data) = self.state.lock().bb_store.get(&key).cloned() {
                            self.assign(ctx, &mut seq, sender, msg_id, data);
                        }
                    }
                }
                SeqWork::Retrans {
                    requester,
                    from,
                    piggyback,
                } => {
                    ctx.trace_instant(
                        Layer::Group,
                        "retrans_req_rx",
                        &[("sender", u64::from(requester)), ("from_seq", from)],
                    );
                    self.note_progress(&mut seq, requester, piggyback);
                    let to = (from + self.config.retrans_chunk).min(seq.next_seq);
                    for s in from..to {
                        if let Some((snd, mid, data)) = seq.history.get(&s).cloned() {
                            self.resend_seq(ctx, requester, snd, mid, s, &data);
                        }
                    }
                }
                SeqWork::Status { member, piggyback } => {
                    self.note_progress(&mut seq, member, piggyback);
                }
            }
            self.trim_history(&mut seq);
        }
    }

    fn note_progress(&self, seq: &mut SeqState, member: NodeId, piggyback: u64) {
        if (member as usize) < seq.delivered.len() {
            let d = &mut seq.delivered[member as usize];
            *d = (*d).max(piggyback);
        }
    }

    fn assign(&self, ctx: &Ctx, seq: &mut SeqState, sender: NodeId, msg_id: u64, payload: Bytes) {
        let s = seq.next_seq;
        seq.next_seq += 1;
        ctx.trace_instant(
            Layer::Group,
            "seq_assign",
            &[
                ("seq", s),
                ("sender", u64::from(sender)),
                ("msg_id", msg_id),
            ],
        );
        seq.seen.insert((sender, msg_id), s);
        seq.history.insert(s, (sender, msg_id, payload.clone()));
        let big = payload.len() > self.config.bb_threshold;
        let header = PandaHeader {
            module: Module::Group,
            kind: if big { KIND_ACCEPT } else { KIND_SEQ },
            src: sender,
            msg_id,
            a: s,
            b: 0,
        };
        // The sequencer orders at fragment level: no second fragmentation
        // charge here (paper, Section 4.3). This multicast loops back into
        // our own receive daemon for local delivery.
        if big {
            self.sys.send_group(ctx, header, &Bytes::new(), false);
        } else {
            self.sys.send_group(ctx, header, &payload, false);
        }
    }

    fn resend_seq(
        &self,
        ctx: &Ctx,
        to: NodeId,
        sender: NodeId,
        msg_id: u64,
        seqno: u64,
        payload: &Bytes,
    ) {
        let header = PandaHeader {
            module: Module::Group,
            kind: KIND_SEQ,
            src: sender,
            msg_id,
            a: seqno,
            b: 0,
        };
        self.sys.send(ctx, to, header, payload);
    }

    fn resync_laggards(&self, ctx: &Ctx, seq: &mut SeqState) {
        let top = seq.next_seq;
        if std::env::var("GROUP_DEBUG").is_ok() {
            eprintln!(
                "[resync t={}] next_seq={} delivered={:?}",
                ctx.now(),
                top,
                seq.delivered
            );
        }
        let laggards: Vec<(NodeId, u64)> = seq
            .delivered
            .iter()
            .enumerate()
            .filter(|(_, &d)| d + 1 < top)
            .map(|(m, &d)| (m as NodeId, d))
            .collect();
        for (m, d) in laggards {
            // Gentle repair: a bounded number of messages AND a byte budget
            // per member per round, so the backstop can never flood the wire
            // (large entries go out as small accepts when the member already
            // holds the data it sent itself).
            let to = (d + 1 + self.config.retrans_chunk).min(top);
            let mut budget: usize = 8192;
            let mut sent_any = false;
            for s in (d + 1)..to {
                if let Some((snd, mid, data)) = seq.history.get(&s).cloned() {
                    if snd == m && data.len() > self.config.bb_threshold {
                        let header = PandaHeader {
                            module: Module::Group,
                            kind: KIND_ACCEPT,
                            src: snd,
                            msg_id: mid,
                            a: s,
                            b: 0,
                        };
                        self.sys.send(ctx, m, header, &Bytes::new());
                        sent_any = true;
                        continue;
                    }
                    // The first resend is exempt from the byte budget: it is
                    // what repairs a genuinely lost large message, and the
                    // duplicate it may cause prompts the member to report its
                    // true progress (which stops the resync).
                    if sent_any && data.len() > budget {
                        break;
                    }
                    budget = budget.saturating_sub(data.len());
                    self.resend_seq(ctx, m, snd, mid, s, &data);
                    sent_any = true;
                }
            }
        }
    }

    fn trim_history(&self, seq: &mut SeqState) {
        let min_delivered = seq.delivered.iter().copied().min().unwrap_or(0);
        let keys: Vec<u64> = seq
            .history
            .range(..=min_delivered)
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            let e = seq.history.remove(&k).expect("key from range");
            seq.seen.remove(&(e.0, e.1));
        }
        while seq.history.len() > self.config.history_max {
            let (&k, _) = seq.history.iter().next().expect("non-empty");
            let e = seq.history.remove(&k).expect("key exists");
            seq.seen.remove(&(e.0, e.1));
            seq.overflow_drops += 1;
        }
    }

    // -- member-side receive path ------------------------------------------

    /// System-layer upcall for group traffic (receive daemon thread).
    fn upcall(&self, ctx: &Ctx, header: PandaHeader, body: Bytes) {
        let me = self.sys.node();
        match header.kind {
            KIND_REQ | KIND_REQ_BB | KIND_RETRANS | KIND_STATUS => {
                // Sequencer-role traffic: forward to the sequencer thread.
                let Some(chan) = &self.seq_chan else { return };
                let work = match header.kind {
                    KIND_REQ => SeqWork::Request {
                        sender: header.src,
                        msg_id: header.msg_id,
                        payload: Some(body),
                        piggyback: header.b,
                    },
                    KIND_REQ_BB => SeqWork::Request {
                        sender: header.src,
                        msg_id: header.msg_id,
                        payload: None,
                        piggyback: header.b,
                    },
                    KIND_RETRANS => SeqWork::Retrans {
                        requester: header.src,
                        from: header.a,
                        piggyback: header.b,
                    },
                    _ => SeqWork::Status {
                        member: header.src,
                        piggyback: header.b,
                    },
                };
                let _ = chan.send(ctx, work);
            }
            KIND_BB_DATA => {
                let key = (header.src, header.msg_id);
                let mut deliveries = Vec::new();
                {
                    let mut st = self.state.lock();
                    let already = st
                        .delivered_msg
                        .get(&header.src)
                        .is_some_and(|&m| m >= header.msg_id);
                    if !already {
                        st.bb_store.insert(key, body.clone());
                    }
                    let slot = st.accepts.iter().find(|(_, k)| **k == key).map(|(s, _)| *s);
                    if let Some(s) = slot {
                        st.accepts.remove(&s);
                        st.ooo.insert(s, (header.src, header.msg_id, body));
                    }
                    self.collect_deliveries(&mut st, &mut deliveries);
                }
                if let Some(chan) = &self.seq_chan {
                    let _ = chan.send(
                        ctx,
                        SeqWork::BbArrived {
                            sender: header.src,
                            msg_id: header.msg_id,
                        },
                    );
                }
                self.run_deliveries(ctx, deliveries);
                self.after_receive(ctx, me);
            }
            KIND_SEQ | KIND_ACCEPT => {
                let mut deliveries = Vec::new();
                let mut duplicate = false;
                {
                    let mut st = self.state.lock();
                    if header.a < st.next_deliver {
                        duplicate = true;
                    } else if header.kind == KIND_SEQ {
                        st.ooo.insert(header.a, (header.src, header.msg_id, body));
                        st.accepts.remove(&header.a);
                    } else {
                        let key = (header.src, header.msg_id);
                        if let Some(data) = st.bb_store.get(&key).cloned() {
                            st.ooo.insert(header.a, (key.0, key.1, data));
                        } else {
                            st.accepts.insert(header.a, key);
                        }
                    }
                    self.collect_deliveries(&mut st, &mut deliveries);
                }
                if duplicate && me != self.sequencer {
                    // Tell the sequencer how far we really are, so resync
                    // stops resending to us.
                    self.send_status(ctx);
                }
                self.run_deliveries(ctx, deliveries);
                self.after_receive(ctx, me);
            }
            _ => {}
        }
    }

    /// Pops every contiguous message (under the lock; no blocking).
    fn collect_deliveries(
        &self,
        st: &mut MemberState,
        out: &mut Vec<(GroupDelivery, Option<SimChannel<u64>>)>,
    ) {
        loop {
            let next = st.next_deliver;
            let Some((sender, msg_id, payload)) = st.ooo.remove(&next) else {
                break;
            };
            st.accepts.remove(&next);
            st.bb_store.remove(&(sender, msg_id));
            let dm = st.delivered_msg.entry(sender).or_insert(0);
            *dm = (*dm).max(msg_id);
            let wake = if sender == self.sys.node() {
                st.pending_async.remove(&msg_id);
                st.send_waiters.remove(&msg_id)
            } else {
                None
            };
            out.push((
                GroupDelivery {
                    sender,
                    seq: next,
                    payload,
                },
                wake,
            ));
            st.next_deliver += 1;
            st.since_status += 1;
        }
        self.local_delivered
            .store(st.next_deliver - 1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Upcalls the application and wakes blocked senders (outside the lock;
    /// charges CPU).
    fn run_deliveries(&self, ctx: &Ctx, deliveries: Vec<(GroupDelivery, Option<SimChannel<u64>>)>) {
        if deliveries.is_empty() {
            return;
        }
        let cost = self.sys.machine().cost().clone();
        let handler = self.handler.lock().clone();
        ctx.trace_cost(Layer::Group, "protocol_layer", cost.protocol_layer);
        ctx.compute(cost.protocol_layer);
        for (delivery, wake) in deliveries {
            let seq = delivery.seq;
            ctx.trace_instant(
                Layer::Group,
                "deliver",
                &[
                    ("seq", seq),
                    ("sender", u64::from(delivery.sender)),
                    ("bytes", delivery.payload.len() as u64),
                ],
            );
            if let Some(h) = &handler {
                h(ctx, delivery);
            }
            if let Some(w) = wake {
                // Notifying the condition variable the sending client sleeps
                // on is a system call with underflow traps on return — the
                // ~40 us the paper charges the user-space group send path.
                ctx.trace_cost(
                    Layer::Group,
                    "syscall",
                    cost.syscall(cost.shallow_call_depth),
                );
                ctx.compute(cost.syscall(cost.shallow_call_depth));
                let _ = w.send(ctx, seq);
            }
        }
    }

    /// Post-receive bookkeeping: gap repair and progress reports.
    fn after_receive(&self, ctx: &Ctx, me: NodeId) {
        let (request_from, send_status) = {
            let mut st = self.state.lock();
            let next = st.next_deliver;
            let has_ahead = st.ooo.keys().next().is_some_and(|&k| k > next)
                || st.accepts.keys().next().is_some_and(|&k| k > next);
            let request = if has_ahead && st.last_gap_request < next && me != self.sequencer {
                st.last_gap_request = next;
                Some(next)
            } else {
                None
            };
            // Report progress when the interval passes, or promptly when the
            // member is fully caught up (throttled): without this, an idle
            // stretch makes the sequencer believe members lag and its resync
            // floods the wire with history it never needed to resend.
            let caught_up = st.ooo.is_empty() && st.accepts.is_empty();
            let now = ctx.now();
            let due = st.since_status >= self.config.status_interval
                || (caught_up
                    && st.since_status > 0
                    && now.saturating_duration_since(st.last_status_at)
                        >= SimDuration::from_millis(10));
            let status = if due && me != self.sequencer {
                st.since_status = 0;
                st.last_status_at = now;
                true
            } else {
                false
            };
            (request, status)
        };
        if let Some(from) = request_from {
            let header = PandaHeader {
                module: Module::Group,
                kind: KIND_RETRANS,
                src: me,
                msg_id: 0,
                a: from,
                b: from - 1,
            };
            self.sys.send(ctx, self.sequencer, header, &Bytes::new());
        }
        if send_status {
            self.send_status(ctx);
        }
    }

    fn send_status(&self, ctx: &Ctx) {
        let piggyback = self.state.lock().next_deliver - 1;
        let header = PandaHeader {
            module: Module::Group,
            kind: KIND_STATUS,
            src: self.sys.node(),
            msg_id: 0,
            a: 0,
            b: piggyback,
        };
        self.sys.send(ctx, self.sequencer, header, &Bytes::new());
    }
}
