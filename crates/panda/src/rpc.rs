//! Panda's user-space RPC: a 2-way stop-and-wait protocol.
//!
//! The client sends a request; the server's reply doubles as the implicit
//! acknowledgement of the request; the client acknowledges the reply by
//! piggybacking on its next request over the same connection, falling back
//! to an explicit acknowledgement after a short delay. This saves the
//! explicit per-call acknowledgement of Amoeba's 3-way protocol
//! (Section 2 of the paper).
//!
//! Unlike the kernel protocol, `pan_rpc_reply` is asynchronous: any thread
//! may answer a held request, transmitting directly — no signalling of the
//! original server thread, no extra context switch. This is the flexibility
//! the Orca runtime's continuations exploit.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use desim::trace::{Layer, Phase};
use desim::{Ctx, RecvTimeoutError, SimChannel, SimMutex, Simulation};
use parking_lot::Mutex;

use crate::system::{Module, PandaHeader, SysLayer};
use crate::transport::{CommError, NodeId, PandaConfig, ReplyTicket, RpcHandler, TicketInner};

const KIND_REQUEST: u8 = 0;
const KIND_REPLY: u8 = 1;
const KIND_ACK: u8 = 2;
/// Server-alive probe answer: the request is held (blocked guard).
const KIND_WORKING: u8 = 3;

/// Client side of one connection (this node -> one server). Stop-and-wait:
/// the `SimMutex` serializes calls, the state inside tracks sequencing and
/// the pending reply-acknowledgement.
struct OutState {
    next_seq: u64,
    pending_ack: Option<u64>,
}

struct OutConn {
    state: SimMutex<OutState>,
}

/// Events carry the `(server, seq)` pair they answer (sequence numbers are
/// only per-connection): reply slots are pooled and reused across calls, and
/// a late duplicate from a slot's previous life must be recognizable so the
/// new owner can discard it.
enum ClientEvent {
    Reply(NodeId, u64, Bytes),
    Working(NodeId, u64),
}

/// Reply slots kept for reuse per node. Stop-and-wait serializes calls per
/// connection, so a short free list captures all reuse.
const SLOT_POOL_MAX: usize = 4;

struct InConn {
    last_done: u64,
    in_progress: Option<u64>,
    cached: Option<(u64, Bytes)>,
}

/// The user-space Panda RPC module for one node.
pub(crate) struct UserRpc {
    sys: Arc<SysLayer>,
    config: PandaConfig,
    out: Mutex<HashMap<NodeId, Arc<OutConn>>>,
    incoming: Mutex<HashMap<NodeId, InConn>>,
    /// Reply routing: `(server, seq) -> slot` for calls in flight.
    replies: Mutex<HashMap<(NodeId, u64), SimChannel<ClientEvent>>>,
    /// Free list of reply slots (see [`ClientEvent`]).
    slot_pool: Mutex<Vec<SimChannel<ClientEvent>>>,
    handler: Mutex<Option<RpcHandler>>,
    /// Deferred explicit acknowledgements, drained by the ack daemon.
    ack_queue: SimChannel<(NodeId, u64)>,
}

impl fmt::Debug for UserRpc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UserRpc")
            .field("node", &self.sys.node())
            .finish()
    }
}

impl UserRpc {
    /// Creates the RPC module, registers its system-layer upcall, and starts
    /// the explicit-acknowledgement daemon.
    pub(crate) fn start(
        sim: &mut Simulation,
        sys: Arc<SysLayer>,
        config: PandaConfig,
    ) -> Arc<UserRpc> {
        let rpc = Arc::new(UserRpc {
            sys: Arc::clone(&sys),
            config,
            out: Mutex::new(HashMap::new()),
            incoming: Mutex::new(HashMap::new()),
            replies: Mutex::new(HashMap::new()),
            slot_pool: Mutex::new(Vec::new()),
            handler: Mutex::new(None),
            ack_queue: SimChannel::new(),
        });
        let upcall_rpc = Arc::clone(&rpc);
        sys.set_rpc_upcall(Arc::new(move |ctx, header, body| {
            upcall_rpc.upcall(ctx, header, body);
        }));
        let ack_rpc = Arc::clone(&rpc);
        let proc = sys.machine().proc();
        sim.spawn_daemon_on_lane(
            sys.machine().lane(),
            proc,
            &format!("{}-ackd", sys.machine().name()),
            move |ctx| {
                ack_rpc.ack_daemon(ctx);
            },
        );
        rpc
    }

    pub(crate) fn set_handler(&self, handler: RpcHandler) {
        *self.handler.lock() = Some(handler);
    }

    fn conn_to(&self, dst: NodeId) -> Arc<OutConn> {
        Arc::clone(self.out.lock().entry(dst).or_insert_with(|| {
            Arc::new(OutConn {
                state: SimMutex::new(OutState {
                    next_seq: 1,
                    pending_ack: None,
                }),
            })
        }))
    }

    /// Client call: stop-and-wait with retransmission.
    pub(crate) fn call(&self, ctx: &Ctx, dst: NodeId, request: Bytes) -> Result<Bytes, CommError> {
        let me = self.sys.node();
        assert_ne!(dst, me, "local invocations never go through RPC");
        let conn = self.conn_to(dst);
        let mut st = conn.state.lock(ctx);
        let seq = st.next_seq;
        st.next_seq += 1;
        let ack = st.pending_ack.take();
        let slot = self.slot_pool.lock().pop().unwrap_or_default();
        self.replies.lock().insert((dst, seq), slot.clone());
        let header = PandaHeader {
            module: Module::Rpc,
            kind: KIND_REQUEST,
            src: me,
            msg_id: seq,
            a: seq,
            b: ack.unwrap_or(0),
        };
        ctx.trace_emit(
            Layer::Rpc,
            Phase::Begin,
            "call",
            &[("seq", seq), ("bytes", request.len() as u64)],
        );
        ctx.trace_cost(
            Layer::Rpc,
            "protocol_layer",
            self.sys.machine().cost().protocol_layer,
        );
        ctx.compute(self.sys.machine().cost().protocol_layer);
        let mut result = Err(CommError::Timeout);
        let mut attempt = 0u32;
        let mut sent = false;
        while attempt <= self.config.rpc_retries {
            if !sent {
                if attempt > 0 {
                    ctx.trace_instant(
                        Layer::Rpc,
                        "retransmit",
                        &[("seq", seq), ("attempt", u64::from(attempt))],
                    );
                }
                ctx.trace_instant(Layer::Rpc, "request_tx", &[("seq", seq)]);
                self.sys.send(ctx, dst, header, &request);
                sent = true;
            }
            let backoff = self.config.rpc_timeout * (1u64 << attempt.min(4));
            match slot.recv_timeout(ctx, backoff) {
                // Events from a pooled slot's previous life carry a stale
                // (server, seq) pair; discard them and keep waiting.
                Ok(ClientEvent::Reply(d, s, _)) | Ok(ClientEvent::Working(d, s))
                    if (d, s) != (dst, seq) =>
                {
                    continue;
                }
                Ok(ClientEvent::Reply(_, _, reply)) => {
                    result = Ok(reply);
                    break;
                }
                Ok(ClientEvent::Working(_, _)) => {
                    // Server alive, request held (blocked guard): wait on.
                    attempt = 0;
                    continue;
                }
                Err(RecvTimeoutError::Timeout) => {
                    attempt += 1;
                    sent = false;
                    continue;
                }
                Err(RecvTimeoutError::Closed) => break,
            }
        }
        self.replies.lock().remove(&(dst, seq));
        {
            let mut pool = self.slot_pool.lock();
            if pool.len() < SLOT_POOL_MAX {
                pool.push(slot);
            }
        }
        if result.is_ok() {
            // The reply acknowledges implicitly on the next request; if none
            // comes soon, the ack daemon sends an explicit one.
            st.pending_ack = Some(seq);
            let _ = self.ack_queue.send(ctx, (dst, seq));
        }
        drop(st);
        ctx.trace_emit(
            Layer::Rpc,
            Phase::End,
            "call",
            &[("seq", seq), ("ok", u64::from(result.is_ok()))],
        );
        result
    }

    /// Answers a held request; callable from any thread (the user-space
    /// advantage: the reply is transmitted directly, no thread signalling).
    pub(crate) fn reply_to(&self, ctx: &Ctx, client: NodeId, seq: u64, reply: Bytes) {
        ctx.trace_instant(
            Layer::Rpc,
            "reply_tx",
            &[("seq", seq), ("bytes", reply.len() as u64)],
        );
        ctx.trace_cost(
            Layer::Rpc,
            "protocol_layer",
            self.sys.machine().cost().protocol_layer,
        );
        ctx.compute(self.sys.machine().cost().protocol_layer);
        {
            let mut inc = self.incoming.lock();
            let conn = inc.entry(client).or_insert_with(new_in_conn);
            conn.cached = Some((seq, reply.clone()));
            conn.in_progress = None;
            conn.last_done = conn.last_done.max(seq);
        }
        let header = PandaHeader {
            module: Module::Rpc,
            kind: KIND_REPLY,
            src: self.sys.node(),
            msg_id: seq,
            a: seq,
            b: 0,
        };
        self.sys.send(ctx, client, header, &reply);
    }

    /// System-layer upcall for RPC traffic (runs on the receive daemon).
    fn upcall(&self, ctx: &Ctx, header: PandaHeader, body: Bytes) {
        ctx.trace_cost(
            Layer::Rpc,
            "protocol_layer",
            self.sys.machine().cost().protocol_layer,
        );
        ctx.compute(self.sys.machine().cost().protocol_layer);
        match header.kind {
            KIND_REQUEST => self.handle_request(ctx, header, body),
            KIND_REPLY => {
                ctx.trace_instant(
                    Layer::Rpc,
                    "reply_rx",
                    &[("seq", header.a), ("bytes", body.len() as u64)],
                );
                let slot = self.replies.lock().get(&(header.src, header.a)).cloned();
                if let Some(slot) = slot {
                    // Hand the reply to the blocked client thread. Two
                    // context switches are on this path (daemon in, client
                    // out) — the 140 us the paper measures.
                    let _ = slot.send(ctx, ClientEvent::Reply(header.src, header.a, body));
                }
            }
            KIND_WORKING => {
                let slot = self.replies.lock().get(&(header.src, header.a)).cloned();
                if let Some(slot) = slot {
                    let _ = slot.send(ctx, ClientEvent::Working(header.src, header.a));
                }
            }
            KIND_ACK => {
                let mut inc = self.incoming.lock();
                if let Some(conn) = inc.get_mut(&header.src) {
                    if conn.cached.as_ref().is_some_and(|(s, _)| *s <= header.b) {
                        conn.cached = None;
                    }
                }
            }
            _ => {}
        }
    }

    fn handle_request(&self, ctx: &Ctx, header: PandaHeader, body: Bytes) {
        let client = header.src;
        let seq = header.a;
        ctx.trace_instant(Layer::Rpc, "request_rx", &[("seq", seq)]);
        enum Action {
            Deliver,
            Resend(Bytes),
            Working,
            Ignore,
        }
        let action = {
            let mut inc = self.incoming.lock();
            let conn = inc.entry(client).or_insert_with(new_in_conn);
            // Piggybacked acknowledgement of the previous reply.
            if header.b > 0 && conn.cached.as_ref().is_some_and(|(s, _)| *s <= header.b) {
                conn.cached = None;
            }
            if let Some((s, r)) = &conn.cached {
                if *s == seq {
                    Action::Resend(r.clone()) // lost reply, retransmit it
                } else if seq <= conn.last_done {
                    Action::Ignore
                } else {
                    conn.in_progress = Some(seq);
                    Action::Deliver
                }
            } else if conn.in_progress == Some(seq) {
                Action::Working
            } else if seq <= conn.last_done {
                Action::Ignore
            } else {
                conn.in_progress = Some(seq);
                Action::Deliver
            }
        };
        match action {
            Action::Deliver => {
                let handler = self
                    .handler
                    .lock()
                    .clone()
                    .expect("rpc handler installed before traffic");
                let ticket = ReplyTicket(TicketInner::User { client, seq });
                handler(ctx, client, body, ticket);
            }
            Action::Resend(reply) => {
                ctx.trace_instant(Layer::Rpc, "dup_suppressed", &[("seq", seq)]);
                ctx.trace_instant(Layer::Rpc, "reply_resend", &[("seq", seq)]);
                let header = PandaHeader {
                    module: Module::Rpc,
                    kind: KIND_REPLY,
                    src: self.sys.node(),
                    msg_id: seq,
                    a: seq,
                    b: 0,
                };
                self.sys.send(ctx, client, header, &reply);
            }
            Action::Working => {
                // Tell the retransmitting client its request is held by a
                // blocked guard and the server is alive.
                ctx.trace_instant(Layer::Rpc, "dup_suppressed", &[("seq", seq)]);
                ctx.trace_instant(Layer::Rpc, "working_tx", &[("seq", seq)]);
                let header = PandaHeader {
                    module: Module::Rpc,
                    kind: KIND_WORKING,
                    src: self.sys.node(),
                    msg_id: seq,
                    a: seq,
                    b: 0,
                };
                self.sys.send(ctx, client, header, &Bytes::new());
            }
            Action::Ignore => {}
        }
    }

    /// Sends explicit acknowledgements for replies that no later request
    /// piggybacked in time.
    fn ack_daemon(&self, ctx: &Ctx) {
        while let Some((dst, seq)) = self.ack_queue.recv(ctx) {
            ctx.sleep(self.config.ack_delay);
            let conn = self.conn_to(dst);
            let mut st = conn.state.lock(ctx);
            if st.pending_ack == Some(seq) {
                st.pending_ack = None;
                drop(st);
                ctx.trace_instant(Layer::Rpc, "ack_tx", &[("seq", seq)]);
                let header = PandaHeader {
                    module: Module::Rpc,
                    kind: KIND_ACK,
                    src: self.sys.node(),
                    msg_id: seq,
                    a: 0,
                    b: seq,
                };
                self.sys.send(ctx, dst, header, &Bytes::new());
            }
        }
    }
}

fn new_in_conn() -> InConn {
    InConn {
        last_done: 0,
        in_progress: None,
        cached: None,
    }
}
