//! Panda implemented with **user-space** protocols over raw FLIP system
//! calls (the right half of Figure 2): the Panda RPC and group protocols,
//! unchanged from their UNIX origins, with only the system layer bound to
//! Amoeba.

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use desim::{Ctx, Simulation};

use amoeba::Machine;

use crate::group::{UserGroup, UserGroupConfig};
use crate::rpc::UserRpc;
use crate::system::SysLayer;
use crate::transport::{
    CommError, GroupHandler, NodeId, Panda, PandaConfig, ReplyTicket, RpcHandler, TicketInner,
};

/// One node of the user-space Panda implementation.
pub struct UserSpacePanda {
    node: NodeId,
    nodes: u32,
    sys: Arc<SysLayer>,
    rpc: Arc<UserRpc>,
    group: Arc<UserGroup>,
}

impl fmt::Debug for UserSpacePanda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UserSpacePanda")
            .field("node", &self.node)
            .field("machine", &self.sys.machine().name())
            .finish()
    }
}

impl UserSpacePanda {
    /// Builds the user-space Panda world.
    ///
    /// With `config.dedicated_sequencer` the **last** machine is sacrificed
    /// to run only the sequencer (the paper's "User-space-dedicated" rows):
    /// `machines.len() - 1` application nodes are returned. Otherwise every
    /// machine is an application node and `config.sequencer_node` hosts the
    /// sequencer thread alongside its application.
    pub fn build(
        sim: &mut Simulation,
        machines: &[Machine],
        config: &PandaConfig,
    ) -> Vec<Arc<UserSpacePanda>> {
        let app_nodes = if config.dedicated_sequencer {
            machines.len() - 1
        } else {
            machines.len()
        } as u32;
        let n_members = machines.len() as u32; // a dedicated sequencer is still a member
        let sequencer: NodeId = if config.dedicated_sequencer {
            app_nodes // the extra machine gets the last member id
        } else {
            config.sequencer_node
        };
        assert!(sequencer < n_members, "sequencer must be a member");
        let group_config = UserGroupConfig {
            send_timeout: config.group_send_timeout,
            send_retries: config.group_send_retries,
            resync_interval: config.group_resync_interval,
            status_interval: config.group_status_interval,
            ..UserGroupConfig::default()
        };
        let mut out = Vec::new();
        for (i, machine) in machines.iter().enumerate() {
            let node = i as NodeId;
            let sys = SysLayer::start(sim, machine, node);
            let group = UserGroup::start(
                sim,
                Arc::clone(&sys),
                group_config.clone(),
                n_members,
                sequencer,
                config.dedicated_sequencer,
            );
            if node < app_nodes {
                let rpc = UserRpc::start(sim, Arc::clone(&sys), config.clone());
                out.push(Arc::new(UserSpacePanda {
                    node,
                    nodes: app_nodes,
                    sys,
                    rpc,
                    group,
                }));
            } else {
                // Dedicated sequencer machine: member of the group, no
                // application. Deliveries are acknowledged and discarded.
                group.set_handler(Arc::new(|_ctx, _msg| {}));
            }
        }
        out
    }

    /// The user-space group module (diagnostics).
    pub fn group_module(&self) -> &Arc<UserGroup> {
        &self.group
    }
}

impl Panda for UserSpacePanda {
    fn node(&self) -> NodeId {
        self.node
    }

    fn nodes(&self) -> u32 {
        self.nodes
    }

    fn machine(&self) -> &Machine {
        self.sys.machine()
    }

    fn set_rpc_handler(&self, handler: RpcHandler) {
        self.rpc.set_handler(handler);
    }

    fn set_group_handler(&self, handler: GroupHandler) {
        self.group.set_handler(handler);
    }

    fn rpc(&self, ctx: &Ctx, dst: NodeId, request: Bytes) -> Result<Bytes, CommError> {
        self.rpc.call(ctx, dst, request)
    }

    fn reply(&self, ctx: &Ctx, ticket: ReplyTicket, reply: Bytes) {
        match ticket.0 {
            TicketInner::User { client, seq } => self.rpc.reply_to(ctx, client, seq, reply),
            TicketInner::Kernel { .. } => {
                panic!("kernel-space ticket answered through the user-space implementation")
            }
        }
    }

    fn group_send(&self, ctx: &Ctx, msg: Bytes) -> Result<(), CommError> {
        self.group.send(ctx, msg)
    }
}
