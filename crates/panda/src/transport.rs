//! The Panda communication interface used by the Orca runtime system.
//!
//! Figure 1 of the paper: Panda provides threads, RPC, and totally ordered
//! group communication to the language runtime above it. The two
//! implementations of this trait are the subject of the paper's comparison:
//!
//! - [`crate::KernelSpacePanda`] wraps Amoeba's kernel protocols;
//! - [`crate::UserSpacePanda`] runs Panda's own protocols in user space on
//!   the raw FLIP system calls.
//!
//! Message receipt is *implicit*: handlers (upcalls) registered per node run
//! to completion in protocol-daemon context. A request handler may reply
//! immediately from the upcall or capture the [`ReplyTicket`] and reply later
//! from any thread — the asynchronous reply only the user-space protocol
//! supports without an extra context switch (Section 3).

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use desim::{Ctx, SimChannel, SimDuration};

use amoeba::Machine;

/// Identifies a Panda node (one per machine running the runtime).
pub type NodeId = u32;

/// Errors reported by the communication operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// The peer (or the sequencer) never answered.
    Timeout,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout => write!(f, "communication timed out"),
        }
    }
}

impl std::error::Error for CommError {}

/// A totally ordered message delivered to the group upcall at every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupDelivery {
    /// Node that sent the message.
    pub sender: NodeId,
    /// Global sequence number (identical at all nodes).
    pub seq: u64,
    /// Message body.
    pub payload: Bytes,
}

/// Capability to answer one RPC request, now or later, from any thread.
///
/// With the kernel-space implementation a deferred reply is routed back to
/// the original server thread (Amoeba's same-thread restriction), costing an
/// extra context switch; the user-space implementation transmits straight
/// from the replying thread.
#[derive(Debug)]
pub struct ReplyTicket(pub(crate) TicketInner);

#[derive(Debug)]
pub(crate) enum TicketInner {
    /// Kernel-space: hand the reply back to the blocked `get_request` daemon.
    Kernel { slot: SimChannel<Bytes> },
    /// User-space: transmit directly to the client.
    User { client: NodeId, seq: u64 },
}

/// Upcall invoked for every incoming RPC request.
///
/// Arguments: calling context, requesting node, request payload, and the
/// reply capability. Must run to completion without long blocking.
pub type RpcHandler = Arc<dyn Fn(&Ctx, NodeId, Bytes, ReplyTicket) + Send + Sync>;

/// Upcall invoked for every totally ordered group message, in sequence
/// order. Must run to completion without long blocking.
pub type GroupHandler = Arc<dyn Fn(&Ctx, GroupDelivery) + Send + Sync>;

/// The Panda communication interface (RPC + totally ordered groups).
pub trait Panda: Send + Sync {
    /// This node's identifier.
    fn node(&self) -> NodeId;

    /// Total number of application nodes.
    fn nodes(&self) -> u32;

    /// The machine this node runs on.
    fn machine(&self) -> &Machine;

    /// Installs the RPC request upcall. Must be called before peers send.
    fn set_rpc_handler(&self, handler: RpcHandler);

    /// Installs the group message upcall. Must be called before traffic.
    fn set_group_handler(&self, handler: GroupHandler);

    /// Remote procedure call to `dst`; blocks until the reply arrives.
    ///
    /// # Errors
    ///
    /// [`CommError::Timeout`] if the peer never answers.
    fn rpc(&self, ctx: &Ctx, dst: NodeId, request: Bytes) -> Result<Bytes, CommError>;

    /// Answers a request (from any thread; see [`ReplyTicket`]).
    fn reply(&self, ctx: &Ctx, ticket: ReplyTicket, reply: Bytes);

    /// Broadcasts `msg` with total ordering; blocks until the message has
    /// been sequenced and delivered locally (so a subsequent `group_send`
    /// is ordered after it).
    ///
    /// # Errors
    ///
    /// [`CommError::Timeout`] if the message is never sequenced.
    fn group_send(&self, ctx: &Ctx, msg: Bytes) -> Result<(), CommError>;
}

/// Shared tuning for both Panda implementations.
#[derive(Debug, Clone)]
pub struct PandaConfig {
    /// RPC reply timeout before retransmission.
    pub rpc_timeout: SimDuration,
    /// RPC (re)transmissions before giving up.
    pub rpc_retries: u32,
    /// Group send timeout before the request to the sequencer is repeated.
    pub group_send_timeout: SimDuration,
    /// Group send (re)transmissions before giving up.
    pub group_send_retries: u32,
    /// Which node hosts the sequencer.
    pub sequencer_node: NodeId,
    /// User-space only: the sequencer runs on a dedicated extra machine
    /// (the paper's "User-space-dedicated" configuration).
    pub dedicated_sequencer: bool,
    /// Kernel-space only: server thread pool size per node (Amoeba servers
    /// park threads in `get_request`).
    pub rpc_server_pool: usize,
    /// Explicit-acknowledgement delay: if no new request piggybacks the ack
    /// within this time, the user-space RPC client sends an explicit ack.
    pub ack_delay: SimDuration,
    /// User-space only: sequencer resync interval while members lag (how
    /// quickly laggards are brought back up to date when no new traffic
    /// flows). Chaos tests shrink this so recovery converges fast.
    pub group_resync_interval: SimDuration,
    /// User-space only: a member reports progress to the sequencer after
    /// this many deliveries.
    pub group_status_interval: u64,
    /// Kernel-space only: sequencer-driven laggard resync interval for the
    /// kernel group. `ZERO` disables it (the historical Amoeba behavior,
    /// and the default: fault-free kernel traces stay bit-identical). The
    /// user-space group always resyncs via `group_resync_interval`.
    pub kernel_group_resync_interval: SimDuration,
}

impl Default for PandaConfig {
    fn default() -> Self {
        PandaConfig {
            rpc_timeout: SimDuration::from_millis(100),
            rpc_retries: 8,
            group_send_timeout: SimDuration::from_millis(400),
            group_send_retries: 8,
            sequencer_node: 0,
            dedicated_sequencer: false,
            rpc_server_pool: 4,
            ack_delay: SimDuration::from_millis(5),
            group_resync_interval: SimDuration::from_millis(250),
            group_status_interval: 20,
            kernel_group_resync_interval: SimDuration::ZERO,
        }
    }
}
