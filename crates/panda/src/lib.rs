//! # panda — the Panda portability layer, both ways
//!
//! Panda is the layer between the Orca runtime system and the operating
//! system (Figure 1 of the paper): threads, RPC, and totally ordered group
//! communication. This crate contains the paper's two rival implementations
//! behind one trait, [`Panda`]:
//!
//! - [`KernelSpacePanda`] — wrapper routines over Amoeba's kernel protocols
//!   (left half of Figure 2). Fast primitives, but the kernel's
//!   `get_request`/`put_reply` pairing forces an extra context switch for
//!   asynchronous replies, and nothing about the protocols can change
//!   without changing the kernel.
//! - [`UserSpacePanda`] — Panda's own 2-way RPC and sequencer-based group
//!   protocol in user space over raw FLIP system calls (right half of
//!   Figure 2). Slightly slower primitives — the paper's Section 4 accounts
//!   for every microsecond — but flexible: asynchronous replies transmit
//!   from any thread, and a dedicated-sequencer configuration is a
//!   constructor flag rather than a kernel patch.
//!
//! ```text
//!               Orca runtime system
//!                       │
//!                 trait Panda (rpc / reply / group_send + upcalls)
//!            ┌──────────┴──────────┐
//!   KernelSpacePanda        UserSpacePanda
//!   (amoeba::Rpc*,          (SysLayer + UserRpc + UserGroup
//!    amoeba::GroupMember)    over Machine::flip_*_syscall)
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod group;
mod kernel_space;
mod rpc;
mod system;
mod transport;
mod user_space;

pub use group::{UserGroup, UserGroupConfig};
pub use kernel_space::KernelSpacePanda;
pub use system::{
    panda_addr, panda_eth_group, panda_group_addr, Module, ModuleUpcall, PandaHeader, SysLayer,
    PANDA_GROUP_HEADER_BYTES, PANDA_RPC_HEADER_BYTES,
};
pub use transport::{
    CommError, GroupDelivery, GroupHandler, NodeId, Panda, PandaConfig, ReplyTicket, RpcHandler,
};
pub use user_space::UserSpacePanda;
