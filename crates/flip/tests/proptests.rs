//! Property-based tests: FLIP header codec and fragmentation/reassembly
//! must round-trip arbitrary messages, including under fragment reordering.

use bytes::Bytes;
use proptest::prelude::*;

use desim::Simulation;
use ethernet::{MacAddr, NetConfig, Network};
use flip::{FlipAddr, FlipIface, PacketHeader, PacketType, FLIP_FRAGMENT_BYTES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn header_roundtrips(
        dst in any::<u64>(),
        src in any::<u64>(),
        msg_id in any::<u64>(),
        offset in any::<u32>(),
        total_len in any::<u32>(),
        ptype_sel in 0u8..4,
        multicast in any::<bool>(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let ptype = match ptype_sel {
            0 => PacketType::Data,
            1 => PacketType::Locate,
            2 => PacketType::LocateReply,
            _ => PacketType::NotHere,
        };
        let h = PacketHeader {
            dst: FlipAddr(dst),
            src: FlipAddr(src),
            msg_id,
            offset,
            total_len,
            ptype,
            multicast,
        };
        let wire = h.encode_with(&body);
        let (h2, body2) = PacketHeader::decode(&wire).expect("roundtrip");
        prop_assert_eq!(h, h2);
        prop_assert_eq!(&body2[..], &body[..]);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = PacketHeader::decode(&Bytes::from(bytes));
    }

    #[test]
    fn messages_of_any_size_roundtrip_over_the_wire(
        size in 0usize..6000,
        seed in any::<u64>(),
    ) {
        let mut sim = Simulation::new(seed);
        let mut net = Network::new(NetConfig::default());
        let seg = net.add_segment(&mut sim, "s0");
        let tx = FlipIface::new(net.attach(MacAddr(0), seg));
        let rx = FlipIface::new(net.attach(MacAddr(1), seg));
        rx.register(FlipAddr(9));
        let proc = sim.add_processor("m");
        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let payload2 = payload.clone();
        let rx2 = rx.clone();
        // Pump the sender's interface so locate replies are processed.
        let tx_pump = tx.clone();
        sim.spawn_daemon(proc, "tx-pump", move |ctx| {
            let frames = tx_pump.nic().rx().clone();
            while let Some(frame) = frames.recv(ctx) {
                let _ = tx_pump.handle_frame(ctx, &frame);
            }
        });
        let h = sim.spawn(proc, "driver", move |ctx| {
            tx.send(ctx, FlipAddr(1), FlipAddr(9), Bytes::from(payload2.clone()));
            let frames = rx2.nic().rx().clone();
            loop {
                let frame = frames.recv(ctx).expect("frame");
                let msgs = rx2.handle_frame(ctx, &frame);
                if let Some(m) = msgs.into_iter().next() {
                    assert_eq!(&m.payload[..], &payload2[..], "payload intact");
                    assert_eq!(m.src, FlipAddr(1));
                    break;
                }
            }
        });
        sim.run_until_finished(&h).expect("run");
    }

    #[test]
    fn fragment_count_is_exact(size in 1usize..20_000) {
        // div_ceil semantics: the number of wire fragments FLIP produces.
        let frags = size.div_ceil(FLIP_FRAGMENT_BYTES);
        prop_assert!(frags * FLIP_FRAGMENT_BYTES >= size);
        prop_assert!((frags - 1) * FLIP_FRAGMENT_BYTES < size);
    }
}
