//! End-to-end FLIP tests over the simulated Ethernet: locate resolution,
//! fragmentation, groups, migration, and loss behaviour.

use bytes::Bytes;
use desim::{ms, Ctx, SimChannel, Simulation};
use ethernet::{MacAddr, McastAddr, NetConfig, Network};
use flip::{FlipAddr, FlipIface, FlipMessage, FLIP_FRAGMENT_BYTES};

/// Builds `n` machines, each with a FLIP interface and a receive pump that
/// forwards completed messages into a per-machine channel.
fn cluster(
    sim: &mut Simulation,
    n: u32,
) -> (Network, Vec<FlipIface>, Vec<SimChannel<FlipMessage>>) {
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(sim, "s0");
    let mut ifaces = Vec::new();
    let mut inboxes = Vec::new();
    for i in 0..n {
        let nic = net.attach(MacAddr(i), seg);
        let iface = FlipIface::new(nic);
        let proc = sim.add_processor(&format!("m{i}"));
        let inbox = SimChannel::new();
        let pump_iface = iface.clone();
        let pump_inbox = inbox.clone();
        sim.spawn_daemon(proc, &format!("netrx{i}"), move |ctx: &Ctx| {
            let rx = pump_iface.nic().rx().clone();
            while let Some(frame) = rx.recv(ctx) {
                for msg in pump_iface.handle_frame(ctx, &frame) {
                    let _ = pump_inbox.send(ctx, msg);
                }
            }
        });
        ifaces.push(iface);
        inboxes.push(inbox);
    }
    (net, ifaces, inboxes)
}

fn payload(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

#[test]
fn locate_then_deliver() {
    let mut sim = Simulation::new(1);
    let (_net, ifaces, inboxes) = cluster(&mut sim, 2);
    let dst = FlipAddr(100);
    ifaces[1].register(dst);
    let tx = ifaces[0].clone();
    let proc = sim.add_processor("driver");
    let inbox = inboxes[1].clone();
    let h = sim.spawn(proc, "t", move |ctx| {
        let local = tx.send(ctx, FlipAddr(50), dst, payload(64));
        assert!(local.is_none(), "remote destination");
        let msg = inbox.recv(ctx).expect("delivered");
        assert_eq!(msg.src, FlipAddr(50));
        assert_eq!(msg.dst, dst);
        assert_eq!(msg.payload, payload(64));
        assert!(!msg.multicast);
        // Route is now cached: a second send needs no locate.
        let locates_before = tx.stats().locates_sent;
        tx.send(ctx, FlipAddr(50), dst, payload(8));
        assert!(inbox.recv(ctx).is_some());
        assert_eq!(tx.stats().locates_sent, locates_before);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn local_destination_short_circuits() {
    let mut sim = Simulation::new(1);
    let (net, ifaces, _inboxes) = cluster(&mut sim, 1);
    let dst = FlipAddr(7);
    ifaces[0].register(dst);
    let iface = ifaces[0].clone();
    let proc = sim.add_processor("driver");
    let h = sim.spawn(proc, "t", move |ctx| {
        let msg = iface.send(ctx, FlipAddr(1), dst, payload(10));
        let msg = msg.expect("local delivery");
        assert_eq!(msg.payload, payload(10));
    });
    sim.run_until_finished(&h).expect("run");
    assert_eq!(net.total_stats().frames, 0, "nothing touched the wire");
}

#[test]
fn large_message_fragments_and_reassembles() {
    let mut sim = Simulation::new(1);
    let (net, ifaces, inboxes) = cluster(&mut sim, 2);
    let dst = FlipAddr(100);
    ifaces[1].register(dst);
    let tx = ifaces[0].clone();
    let inbox = inboxes[1].clone();
    let proc = sim.add_processor("driver");
    let size = 4096;
    let h = sim.spawn(proc, "t", move |ctx| {
        tx.send(ctx, FlipAddr(50), dst, payload(size));
        let msg = inbox.recv(ctx).expect("delivered");
        assert_eq!(msg.payload, payload(size));
    });
    sim.run_until_finished(&h).expect("run");
    // 4 KB needs exactly 3 data fragments (plus 1 locate + 1 reply).
    assert_eq!(size.div_ceil(FLIP_FRAGMENT_BYTES), 3);
    assert_eq!(net.total_stats().frames, 3 + 2);
}

#[test]
fn empty_message_is_valid() {
    let mut sim = Simulation::new(1);
    let (_net, ifaces, inboxes) = cluster(&mut sim, 2);
    let dst = FlipAddr(100);
    ifaces[1].register(dst);
    let tx = ifaces[0].clone();
    let inbox = inboxes[1].clone();
    let proc = sim.add_processor("driver");
    let h = sim.spawn(proc, "t", move |ctx| {
        tx.send(ctx, FlipAddr(50), dst, Bytes::new());
        let msg = inbox.recv(ctx).expect("delivered");
        assert!(msg.payload.is_empty());
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn group_multicast_delivers_to_members_and_self() {
    let mut sim = Simulation::new(1);
    let (_net, ifaces, inboxes) = cluster(&mut sim, 3);
    let group = FlipAddr(0x9000);
    let eth = McastAddr(1);
    ifaces[0].join_group(group, eth);
    ifaces[1].join_group(group, eth);
    // Machine 2 is not a member.
    let sender = ifaces[0].clone();
    let member_inbox = inboxes[1].clone();
    let outsider_inbox = inboxes[2].clone();
    let proc = sim.add_processor("driver");
    let h = sim.spawn(proc, "t", move |ctx| {
        let self_msg = sender.send_group(ctx, FlipAddr(1), group, payload(100));
        let self_msg = self_msg.expect("self delivery is returned");
        assert!(self_msg.multicast);
        let msg = member_inbox.recv(ctx).expect("member receives");
        assert_eq!(msg.payload, payload(100));
        assert!(msg.multicast);
        ctx.sleep(ms(5));
        assert!(outsider_inbox.is_empty(), "non-member must not receive");
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn migration_invalidates_stale_route() {
    let mut sim = Simulation::new(1);
    let (_net, ifaces, inboxes) = cluster(&mut sim, 3);
    let dst = FlipAddr(500);
    ifaces[1].register(dst);
    let tx = ifaces[0].clone();
    let old_home = ifaces[1].clone();
    let new_home = ifaces[2].clone();
    let inbox1 = inboxes[1].clone();
    let inbox2 = inboxes[2].clone();
    let proc = sim.add_processor("driver");
    let h = sim.spawn(proc, "t", move |ctx| {
        // First exchange caches the route to machine 1.
        tx.send(ctx, FlipAddr(1), dst, payload(4));
        assert!(inbox1.recv(ctx).is_some());
        // The entity migrates to machine 2.
        old_home.unregister(dst);
        new_home.register(dst);
        // Next send hits the stale route; machine 1 answers "not here",
        // the route is evicted, and a retry re-locates to machine 2.
        tx.send(ctx, FlipAddr(1), dst, payload(5));
        ctx.sleep(ms(1)); // allow NotHere to come back and evict
        tx.send(ctx, FlipAddr(1), dst, payload(6));
        let msg = inbox2.recv(ctx).expect("delivered at the new home");
        assert_eq!(msg.payload.len(), 6);
        assert_eq!(tx.stats().locates_sent, 2, "one locate per home");
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn unlocatable_destination_discards_silently() {
    let mut sim = Simulation::new(1);
    let (_net, ifaces, _inboxes) = cluster(&mut sim, 2);
    let tx = ifaces[0].clone();
    let proc = sim.add_processor("driver");
    let h = sim.spawn(proc, "t", move |ctx| {
        // Nobody registers this address anywhere.
        tx.send(ctx, FlipAddr(1), FlipAddr(0xdead), payload(8));
        ctx.sleep(ms(50));
        // Enough later traffic to trigger pending expiry.
        tx.send(ctx, FlipAddr(1), FlipAddr(0xdead), payload(8));
        ctx.sleep(ms(1));
        assert!(tx.stats().pending_expired >= 1);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn lost_fragment_drops_whole_message_not_later_ones() {
    let mut sim = Simulation::new(1);
    let (net, ifaces, inboxes) = cluster(&mut sim, 2);
    let dst = FlipAddr(100);
    ifaces[1].register(dst);
    let tx = ifaces[0].clone();
    let inbox = inboxes[1].clone();
    let proc = sim.add_processor("driver");
    let h = sim.spawn(proc, "t", move |ctx| {
        // Prime the route first so the locate is not what gets dropped.
        tx.send(ctx, FlipAddr(50), dst, payload(4));
        assert!(inbox.recv(ctx).is_some());
        net.faults().lock().force_drop_next = 1;
        tx.send(ctx, FlipAddr(50), dst, payload(4096)); // first fragment dies
        tx.send(ctx, FlipAddr(50), dst, payload(32)); // complete message
        let msg = inbox.recv(ctx).expect("intact message delivered");
        assert_eq!(msg.payload.len(), 32, "the mutilated 4 KB message is gone");
        ctx.sleep(ms(5));
        assert!(inbox.is_empty());
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn concurrent_senders_interleave_without_corruption() {
    let mut sim = Simulation::new(3);
    let (_net, ifaces, inboxes) = cluster(&mut sim, 3);
    let dst = FlipAddr(42);
    ifaces[2].register(dst);
    let proc_a = sim.add_processor("da");
    let proc_b = sim.add_processor("db");
    for (i, proc) in [(0usize, proc_a), (1usize, proc_b)] {
        let tx = ifaces[i].clone();
        sim.spawn(proc, &format!("send{i}"), move |ctx| {
            for k in 0..5u32 {
                let size = 2000 + (k as usize) * 100 + i;
                tx.send(ctx, FlipAddr(i as u64 + 1), dst, payload(size));
            }
        });
    }
    let inbox = inboxes[2].clone();
    let proc = sim.add_processor("driver");
    let h = sim.spawn(proc, "check", move |ctx| {
        let mut got = Vec::new();
        for _ in 0..10 {
            let msg = inbox.recv(ctx).expect("message");
            assert_eq!(msg.payload, payload(msg.payload.len()));
            got.push((msg.src, msg.payload.len()));
        }
        // Each sender's five sizes all arrived.
        for i in 0..2usize {
            let mut sizes: Vec<usize> = got
                .iter()
                .filter(|(s, _)| *s == FlipAddr(i as u64 + 1))
                .map(|(_, l)| *l)
                .collect();
            sizes.sort_unstable();
            assert_eq!(
                sizes,
                (0..5).map(|k| 2000 + k * 100 + i).collect::<Vec<_>>()
            );
        }
    });
    sim.run_until_finished(&h).expect("run");
}
