//! The FLIP packet header and its wire encoding.
//!
//! Every Ethernet payload carried by FLIP starts with a fixed 40-byte header
//! (the size the paper charges against the user-space protocols' budget when
//! comparing header overheads).

use bytes::Bytes;

use crate::addr::FlipAddr;

/// Size of the encoded FLIP header in bytes.
pub const FLIP_HEADER_BYTES: usize = 40;

/// Maximum FLIP fragment data per Ethernet frame:
/// MTU minus the FLIP header.
pub const FLIP_FRAGMENT_BYTES: usize = ethernet::MAX_PAYLOAD_BYTES - FLIP_HEADER_BYTES;

/// Largest message FLIP will fragment and reassemble.
pub const MAX_MESSAGE_BYTES: usize = 1 << 20;

/// FLIP packet types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// A fragment of a data message.
    Data,
    /// Broadcast query: who hosts this address?
    Locate,
    /// Unicast answer to a [`PacketType::Locate`].
    LocateReply,
    /// Data arrived for an address not present here (stale route).
    NotHere,
}

impl PacketType {
    fn to_byte(self) -> u8 {
        match self {
            PacketType::Data => 0,
            PacketType::Locate => 1,
            PacketType::LocateReply => 2,
            PacketType::NotHere => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(PacketType::Data),
            1 => Some(PacketType::Locate),
            2 => Some(PacketType::LocateReply),
            3 => Some(PacketType::NotHere),
            _ => None,
        }
    }
}

/// Decoded FLIP packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Destination entity (or the target address for locate traffic).
    pub dst: FlipAddr,
    /// Source entity.
    pub src: FlipAddr,
    /// Message identifier, unique per source interface.
    pub msg_id: u64,
    /// Byte offset of this fragment within the message.
    pub offset: u32,
    /// Total message length in bytes.
    pub total_len: u32,
    /// Packet type.
    pub ptype: PacketType,
    /// Set on multicast (group) traffic.
    pub multicast: bool,
}

/// Errors from [`PacketHeader::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than [`FLIP_HEADER_BYTES`].
    Truncated,
    /// Unknown packet type byte.
    BadType(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "packet shorter than the FLIP header"),
            DecodeError::BadType(b) => write!(f, "unknown FLIP packet type {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl PacketHeader {
    /// Encodes the header followed by `data` into one Ethernet payload.
    ///
    /// The header is assembled in a stack scratch buffer — no heap traffic
    /// and no per-field length bookkeeping — and the packet is then built
    /// with a single exact-size allocation receiving two block copies.
    /// (A thread-local heap scratch would buy nothing more: the output must
    /// escape into an immutable [`Bytes`] allocation anyway, so the scratch
    /// on the stack is the zero-cost variant.)
    pub fn encode_with(&self, data: &[u8]) -> Bytes {
        let mut hdr = [0u8; FLIP_HEADER_BYTES];
        hdr[0..8].copy_from_slice(&self.dst.0.to_be_bytes());
        hdr[8..16].copy_from_slice(&self.src.0.to_be_bytes());
        hdr[16..24].copy_from_slice(&self.msg_id.to_be_bytes());
        hdr[24..28].copy_from_slice(&self.offset.to_be_bytes());
        hdr[28..32].copy_from_slice(&self.total_len.to_be_bytes());
        hdr[32] = self.ptype.to_byte();
        hdr[33] = u8::from(self.multicast);
        // hdr[34..40] stays zero: pad to FLIP_HEADER_BYTES.
        let mut packet = Vec::with_capacity(FLIP_HEADER_BYTES + data.len());
        packet.extend_from_slice(&hdr);
        packet.extend_from_slice(data);
        Bytes::from(packet)
    }

    /// Decodes a header and returns it with the remaining fragment data.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if the buffer is too short;
    /// [`DecodeError::BadType`] on an unknown packet type.
    pub fn decode(packet: &Bytes) -> Result<(PacketHeader, Bytes), DecodeError> {
        if packet.len() < FLIP_HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let b = &packet[..];
        let rd_u64 = |off: usize| u64::from_be_bytes(b[off..off + 8].try_into().expect("8 bytes"));
        let rd_u32 = |off: usize| u32::from_be_bytes(b[off..off + 4].try_into().expect("4 bytes"));
        let ptype = PacketType::from_byte(b[32]).ok_or(DecodeError::BadType(b[32]))?;
        let header = PacketHeader {
            dst: FlipAddr(rd_u64(0)),
            src: FlipAddr(rd_u64(8)),
            msg_id: rd_u64(16),
            offset: rd_u32(24),
            total_len: rd_u32(28),
            ptype,
            multicast: b[33] != 0,
        };
        Ok((header, packet.slice(FLIP_HEADER_BYTES..)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PacketHeader {
        PacketHeader {
            dst: FlipAddr(0xdead),
            src: FlipAddr(0xbeef),
            msg_id: 77,
            offset: 1460,
            total_len: 4096,
            ptype: PacketType::Data,
            multicast: true,
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let wire = h.encode_with(b"payload");
        assert_eq!(wire.len(), FLIP_HEADER_BYTES + 7);
        let (h2, data) = PacketHeader::decode(&wire).expect("decode");
        assert_eq!(h, h2);
        assert_eq!(&data[..], b"payload");
    }

    #[test]
    fn truncated_rejected() {
        let short = Bytes::from_static(&[0u8; 10]);
        assert_eq!(PacketHeader::decode(&short), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_type_rejected() {
        let mut h = sample();
        h.ptype = PacketType::Data;
        let mut wire = h.encode_with(b"").to_vec();
        wire[32] = 250;
        assert_eq!(
            PacketHeader::decode(&Bytes::from(wire)),
            Err(DecodeError::BadType(250))
        );
    }

    #[test]
    fn fragment_capacity_matches_paper_packet_counts() {
        // The paper observes 2 packets for 2 KB and 3 packets for both 3 KB
        // and 4 KB messages (Section 4.1).
        let frags = |len: usize| len.div_ceil(FLIP_FRAGMENT_BYTES);
        assert_eq!(frags(2048), 2);
        assert_eq!(frags(3072), 3);
        assert_eq!(frags(4096), 3);
    }
}
