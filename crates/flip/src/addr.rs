//! FLIP addresses.
//!
//! FLIP addresses identify *entities* (processes, services, groups), not
//! hosts — the location of an address is resolved at run time by the locate
//! protocol, which is what gives FLIP its location transparency.

use std::fmt;

use ethernet::MacAddr;

/// A 64-bit location-independent FLIP address.
///
/// # Examples
///
/// ```
/// use flip::FlipAddr;
///
/// let service = FlipAddr(0x1234);
/// assert_ne!(service, FlipAddr::NULL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlipAddr(pub u64);

impl FlipAddr {
    /// The null address; never routable.
    pub const NULL: FlipAddr = FlipAddr(0);

    /// The per-interface address space: the high bit distinguishes interface
    /// addresses (used by the locate protocol) from entity addresses.
    const IFACE_BIT: u64 = 1 << 63;

    /// Derives the interface address of the FLIP interface on `mac`.
    pub fn for_interface(mac: MacAddr) -> FlipAddr {
        FlipAddr(Self::IFACE_BIT | u64::from(mac.0))
    }

    /// Returns `true` for interface addresses.
    pub fn is_interface(self) -> bool {
        self.0 & Self::IFACE_BIT != 0
    }
}

impl fmt::Display for FlipAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flip:{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_addresses_are_distinct() {
        let a = FlipAddr::for_interface(MacAddr(1));
        let b = FlipAddr::for_interface(MacAddr(2));
        assert_ne!(a, b);
        assert!(a.is_interface());
        assert!(!FlipAddr(42).is_interface());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", FlipAddr(0xbeef)), "flip:beef");
    }
}
