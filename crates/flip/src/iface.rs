//! The per-machine FLIP interface: routing, locate, fragmentation,
//! reassembly, and group communication.
//!
//! The interface is pure protocol logic: it charges no CPU time itself. The
//! Amoeba kernel model (crate `amoeba`) wraps every entry point with the
//! appropriate system-call, interrupt, and copy costs, so the same code can
//! be accounted as kernel-resident (cheap to reach from interrupts, expensive
//! from user space) on both protocol stacks.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use desim::trace::{Layer, Phase};
use desim::{Ctx, SimDuration, SimTime};
use ethernet::{Dest, Frame, MacAddr, McastAddr, Nic};
use parking_lot::Mutex;

use crate::addr::FlipAddr;
use crate::header::{PacketHeader, PacketType, FLIP_FRAGMENT_BYTES, MAX_MESSAGE_BYTES};

/// How long a packet queued behind an unresolved locate may wait before it is
/// discarded (FLIP is unreliable; upper layers retransmit).
const PENDING_TIMEOUT: SimDuration = SimDuration::from_millis(10);

/// Minimum spacing between repeated locate broadcasts for one address.
const LOCATE_RETRY: SimDuration = SimDuration::from_micros(500);

/// Reassembly buffers older than this are discarded.
const REASSEMBLY_TIMEOUT: SimDuration = SimDuration::from_millis(100);

/// A fully reassembled FLIP message delivered to the layer above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlipMessage {
    /// Sending entity.
    pub src: FlipAddr,
    /// Destination entity or group.
    pub dst: FlipAddr,
    /// Message body.
    pub payload: Bytes,
    /// `true` if the message arrived via group multicast.
    pub multicast: bool,
}

/// Cumulative per-interface counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlipStats {
    /// Data messages sent (unicast + multicast).
    pub msgs_sent: u64,
    /// Data packets (fragments) sent.
    pub packets_sent: u64,
    /// Complete messages delivered upward.
    pub msgs_delivered: u64,
    /// Data packets received.
    pub packets_received: u64,
    /// Locate broadcasts sent.
    pub locates_sent: u64,
    /// Packets discarded while waiting for a locate that never resolved.
    pub pending_expired: u64,
    /// Partial messages dropped by the reassembly timeout.
    pub reassembly_drops: u64,
    /// Data packets that arrived for an address not present here.
    pub misdelivered: u64,
}

struct Partial {
    total_len: usize,
    received: usize,
    have: HashSet<u32>,
    buf: BytesMut,
    started: SimTime,
    multicast: bool,
}

struct PendingSend {
    src: FlipAddr,
    payload: Bytes,
    queued_at: SimTime,
}

/// Cap on pooled reassembly buffers kept per interface.
const REASSEMBLY_POOL_MAX: usize = 4;

struct IfaceState {
    local: HashSet<FlipAddr>,
    groups: HashMap<FlipAddr, McastAddr>,
    routes: HashMap<FlipAddr, MacAddr>,
    pending: HashMap<FlipAddr, VecDeque<PendingSend>>,
    last_locate: HashMap<FlipAddr, SimTime>,
    reassembly: HashMap<(FlipAddr, u64), Partial>,
    /// Buffers recycled from timed-out partial messages; completed messages
    /// escape as immutable payloads and cannot be pooled.
    reassembly_pool: Vec<BytesMut>,
    next_msg_id: u64,
    /// When set, routes are learned from the source of arriving data
    /// packets (see [`FlipIface::set_route_learning`]). Off by default.
    route_learning: bool,
    stats: FlipStats,
}

/// A FLIP network interface bound to one NIC.
///
/// Clonable handle; clones share all interface state.
#[derive(Clone)]
pub struct FlipIface {
    nic: Nic,
    iface_addr: FlipAddr,
    state: Arc<Mutex<IfaceState>>,
}

impl fmt::Debug for FlipIface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlipIface")
            .field("mac", &self.nic.mac())
            .field("iface_addr", &self.iface_addr)
            .finish()
    }
}

impl FlipIface {
    /// Creates a FLIP interface on `nic`.
    pub fn new(nic: Nic) -> Self {
        let iface_addr = FlipAddr::for_interface(nic.mac());
        FlipIface {
            nic,
            iface_addr,
            state: Arc::new(Mutex::new(IfaceState {
                local: HashSet::new(),
                groups: HashMap::new(),
                routes: HashMap::new(),
                pending: HashMap::new(),
                last_locate: HashMap::new(),
                reassembly: HashMap::new(),
                reassembly_pool: Vec::new(),
                next_msg_id: 1,
                route_learning: false,
                stats: FlipStats::default(),
            })),
        }
    }

    /// The station this interface sends from.
    pub fn mac(&self) -> MacAddr {
        self.nic.mac()
    }

    /// The NIC backing this interface (its `rx` queue carries raw frames for
    /// the kernel receive loop).
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// Snapshot of the interface counters.
    pub fn stats(&self) -> FlipStats {
        self.state.lock().stats.clone()
    }

    /// Registers `addr` as present on this machine; locate queries will now
    /// resolve here and arriving data for `addr` is delivered.
    pub fn register(&self, addr: FlipAddr) {
        self.state.lock().local.insert(addr);
    }

    /// Removes `addr` from this machine (the entity moved or exited).
    pub fn unregister(&self, addr: FlipAddr) {
        self.state.lock().local.remove(&addr);
    }

    /// Returns `true` if `addr` is registered locally.
    pub fn is_local(&self, addr: FlipAddr) -> bool {
        self.state.lock().local.contains(&addr)
    }

    /// Installs a static route: data for `dst` goes straight to station
    /// `mac` without a locate broadcast. Locates are each a network-wide
    /// flood, so large fleets pre-seed the well-known service addresses at
    /// boot instead of letting thousands of clients locate them at first
    /// contact. A stale route still heals normally: the wrong station
    /// answers with `NotHere`, the route is dropped, and the next send
    /// falls back to a locate.
    pub fn install_route(&self, dst: FlipAddr, mac: MacAddr) {
        self.state.lock().routes.insert(dst, mac);
    }

    /// Enables (or disables) source learning: the interface remembers which
    /// station each arriving data packet came from and uses it as the route
    /// back to that sender — the lazy per-peer counterpart of
    /// [`FlipIface::install_route`], so a server answering thousands of
    /// clients never locate-floods. Off by default: learned routes suppress
    /// locates and would perturb schedules pinned by golden traces.
    pub fn set_route_learning(&self, on: bool) {
        self.state.lock().route_learning = on;
    }

    /// Joins group `group` mapped onto the Ethernet multicast `eth`.
    /// Messages sent to `group` will be delivered here.
    pub fn join_group(&self, group: FlipAddr, eth: McastAddr) {
        self.nic.join_group(eth);
        let mut st = self.state.lock();
        st.groups.insert(group, eth);
    }

    /// Leaves `group`.
    pub fn leave_group(&self, group: FlipAddr) {
        let mut st = self.state.lock();
        if let Some(eth) = st.groups.remove(&group) {
            drop(st);
            self.nic.leave_group(eth);
        }
    }

    /// Sends `payload` unreliably from `src` to entity `dst`.
    ///
    /// If `dst` is registered on this machine the message is returned for
    /// local delivery instead of touching the network. If the destination's
    /// location is unknown, the packet is queued behind a locate broadcast
    /// and silently discarded if the locate never resolves (FLIP is
    /// unreliable by contract).
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_MESSAGE_BYTES`].
    pub fn send(
        &self,
        ctx: &Ctx,
        src: FlipAddr,
        dst: FlipAddr,
        payload: Bytes,
    ) -> Option<FlipMessage> {
        assert!(
            payload.len() <= MAX_MESSAGE_BYTES,
            "message too large for FLIP"
        );
        let route = {
            let mut st = self.state.lock();
            if st.local.contains(&dst) {
                st.stats.msgs_sent += 1;
                st.stats.msgs_delivered += 1;
                drop(st);
                ctx.trace_instant(
                    Layer::Flip,
                    "local_deliver",
                    &[("bytes", payload.len() as u64)],
                );
                return Some(FlipMessage {
                    src,
                    dst,
                    payload,
                    multicast: false,
                });
            }
            st.routes.get(&dst).copied()
        };
        match route {
            Some(mac) => {
                self.transmit_fragments(ctx, src, dst, payload, Dest::Unicast(mac), false);
                None
            }
            None => {
                self.queue_pending_and_locate(ctx, src, dst, payload);
                None
            }
        }
    }

    /// Sends `payload` unreliably from `src` to every member of `group`.
    ///
    /// Returns the message for local self-delivery if this machine is itself
    /// a member (Ethernet does not loop frames back to the sender).
    ///
    /// # Panics
    ///
    /// Panics if this machine never joined `group`, or the payload exceeds
    /// [`MAX_MESSAGE_BYTES`]. Sending to a group requires membership in this
    /// simplified FLIP (all the paper's protocols satisfy that).
    pub fn send_group(
        &self,
        ctx: &Ctx,
        src: FlipAddr,
        group: FlipAddr,
        payload: Bytes,
    ) -> Option<FlipMessage> {
        assert!(
            payload.len() <= MAX_MESSAGE_BYTES,
            "message too large for FLIP"
        );
        let eth = {
            let st = self.state.lock();
            *st.groups
                .get(&group)
                .expect("send_group requires membership")
        };
        self.transmit_fragments(ctx, src, group, payload.clone(), Dest::Multicast(eth), true);
        Some(FlipMessage {
            src,
            dst: group,
            payload,
            multicast: true,
        })
    }

    /// Processes one raw Ethernet frame. Returns any messages that completed
    /// reassembly and are addressed to entities or groups present here.
    ///
    /// Call this from the machine's network receive loop for every frame on
    /// [`FlipIface::nic`]'s `rx` queue.
    pub fn handle_frame(&self, ctx: &Ctx, frame: &Frame) -> Vec<FlipMessage> {
        let Ok((header, data)) = PacketHeader::decode(&frame.payload) else {
            return Vec::new(); // not FLIP or corrupt: ignore
        };
        match header.ptype {
            PacketType::Locate => {
                let is_here = {
                    let st = self.state.lock();
                    st.local.contains(&header.dst)
                };
                if is_here {
                    let reply = PacketHeader {
                        dst: header.dst,
                        src: self.iface_addr,
                        msg_id: 0,
                        offset: 0,
                        total_len: 0,
                        ptype: PacketType::LocateReply,
                        multicast: false,
                    };
                    self.nic
                        .send(ctx, Dest::Unicast(frame.src), reply.encode_with(&[]));
                }
                Vec::new()
            }
            PacketType::LocateReply => {
                let flush: Vec<PendingSend> = {
                    let mut st = self.state.lock();
                    st.routes.insert(header.dst, frame.src);
                    st.pending
                        .remove(&header.dst)
                        .map(|q| q.into_iter().collect())
                        .unwrap_or_default()
                };
                let now = ctx.now();
                for p in flush {
                    if now.saturating_duration_since(p.queued_at) > PENDING_TIMEOUT {
                        self.state.lock().stats.pending_expired += 1;
                        continue;
                    }
                    self.transmit_fragments(
                        ctx,
                        p.src,
                        header.dst,
                        p.payload,
                        Dest::Unicast(frame.src),
                        false,
                    );
                }
                Vec::new()
            }
            PacketType::NotHere => {
                let mut st = self.state.lock();
                st.routes.remove(&header.dst);
                Vec::new()
            }
            PacketType::Data => self.handle_data(ctx, frame.src, header, data),
        }
    }

    fn handle_data(
        &self,
        ctx: &Ctx,
        from_mac: MacAddr,
        header: PacketHeader,
        data: Bytes,
    ) -> Vec<FlipMessage> {
        let deliverable = {
            let st = self.state.lock();
            if header.multicast {
                st.groups.contains_key(&header.dst)
            } else {
                st.local.contains(&header.dst)
            }
        };
        if !deliverable {
            let mut st = self.state.lock();
            st.stats.misdelivered += 1;
            drop(st);
            ctx.trace_instant(Layer::Flip, "misdelivered", &[("bytes", data.len() as u64)]);
            if !header.multicast {
                // Stale route at the sender: tell it to re-locate.
                let nack = PacketHeader {
                    dst: header.dst,
                    src: self.iface_addr,
                    msg_id: 0,
                    offset: 0,
                    total_len: 0,
                    ptype: PacketType::NotHere,
                    multicast: false,
                };
                self.nic
                    .send(ctx, Dest::Unicast(from_mac), nack.encode_with(&[]));
            }
            return Vec::new();
        }

        let now = ctx.now();
        let mut st = self.state.lock();
        st.stats.packets_received += 1;
        if st.route_learning {
            st.routes.entry(header.src).or_insert(from_mac);
        }
        // Lazy reassembly garbage collection. Runs for every data packet —
        // fast-path or not — so the set of partials that survive to a given
        // instant is independent of the delivery path taken. Expired
        // buffers feed the pool; their capacity is reused by later partials.
        let st = &mut *st;
        let expired: Vec<(FlipAddr, u64)> = st
            .reassembly
            .iter()
            .filter(|(_, p)| now.saturating_duration_since(p.started) > REASSEMBLY_TIMEOUT)
            .map(|(k, _)| *k)
            .collect();
        for k in expired {
            if let Some(dead) = st.reassembly.remove(&k) {
                if st.reassembly_pool.len() < REASSEMBLY_POOL_MAX {
                    let mut buf = dead.buf;
                    buf.clear();
                    st.reassembly_pool.push(buf);
                }
            }
            st.stats.reassembly_drops += 1;
        }

        let total = header.total_len as usize;
        if total > MAX_MESSAGE_BYTES || (header.offset as usize) >= total.max(1) && total != 0 {
            return Vec::new(); // malformed
        }
        let key = (header.src, header.msg_id);
        if header.offset == 0 && data.len() == total && !st.reassembly.contains_key(&key) {
            // Single-fragment fast path: the frame payload slice *is* the
            // message — hand it through unchanged instead of round-tripping
            // it through a zeroed reassembly buffer (alloc + memset + copy).
            // Behavior matches the general path exactly: same stats, same
            // trace event, and duplicates re-deliver just as a re-created
            // one-fragment partial would have.
            st.stats.msgs_delivered += 1;
            ctx.trace_instant(
                Layer::Flip,
                "reassembled",
                &[("bytes", total as u64), ("msg_id", key.1)],
            );
            return vec![FlipMessage {
                src: header.src,
                dst: header.dst,
                payload: data,
                multicast: header.multicast,
            }];
        }
        let pool = &mut st.reassembly_pool;
        let entry = st.reassembly.entry(key).or_insert_with(|| {
            let mut buf = pool.pop().unwrap_or_default();
            buf.reserve(total);
            Partial {
                total_len: total,
                received: 0,
                have: HashSet::new(),
                buf,
                started: now,
                multicast: header.multicast,
            }
        });
        if entry.total_len != total {
            return Vec::new(); // inconsistent fragments: drop silently
        }
        let off = header.offset as usize;
        let end = off + data.len();
        if end > total {
            return Vec::new();
        }
        if entry.have.insert(header.offset) {
            // Tracked fill: the buffer grows with the fragments instead of
            // starting as `total` zeroed bytes. In-order arrival appends;
            // out-of-order arrival zero-fills the gap once and the missing
            // fragment overwrites it later. Any completed message has every
            // offset present, so the delivered bytes are identical to the
            // zeroed-buffer scheme.
            if off == entry.buf.len() {
                entry.buf.extend_from_slice(&data);
            } else {
                if end > entry.buf.len() {
                    entry.buf.resize(end, 0);
                }
                entry.buf[off..end].copy_from_slice(&data);
            }
            entry.received += data.len();
        }
        if entry.received >= entry.total_len {
            let done = st.reassembly.remove(&key).expect("entry present");
            st.stats.msgs_delivered += 1;
            ctx.trace_instant(
                Layer::Flip,
                "reassembled",
                &[("bytes", done.total_len as u64), ("msg_id", key.1)],
            );
            vec![FlipMessage {
                src: header.src,
                dst: header.dst,
                payload: done.buf.freeze(),
                multicast: done.multicast,
            }]
        } else {
            Vec::new()
        }
    }

    fn queue_pending_and_locate(&self, ctx: &Ctx, src: FlipAddr, dst: FlipAddr, payload: Bytes) {
        let now = ctx.now();
        let send_locate = {
            let mut st = self.state.lock();
            // Expire rotten pending packets while we are here.
            let expired: Vec<FlipAddr> = st
                .pending
                .iter()
                .filter(|(_, q)| {
                    q.front().is_some_and(|p| {
                        now.saturating_duration_since(p.queued_at) > PENDING_TIMEOUT
                    })
                })
                .map(|(a, _)| *a)
                .collect();
            for a in expired {
                if let Some(q) = st.pending.remove(&a) {
                    st.stats.pending_expired += q.len() as u64;
                }
            }
            st.pending.entry(dst).or_default().push_back(PendingSend {
                src,
                payload,
                queued_at: now,
            });
            let due = match st.last_locate.get(&dst) {
                Some(t) => now.saturating_duration_since(*t) >= LOCATE_RETRY,
                None => true,
            };
            if due {
                st.last_locate.insert(dst, now);
                st.stats.locates_sent += 1;
            }
            due
        };
        if send_locate {
            ctx.trace_instant(Layer::Flip, "locate", &[]);
            let query = PacketHeader {
                dst,
                src: self.iface_addr,
                msg_id: 0,
                offset: 0,
                total_len: 0,
                ptype: PacketType::Locate,
                multicast: false,
            };
            self.nic.send(ctx, Dest::Broadcast, query.encode_with(&[]));
        }
    }

    fn transmit_fragments(
        &self,
        ctx: &Ctx,
        src: FlipAddr,
        dst: FlipAddr,
        payload: Bytes,
        eth_dst: Dest,
        multicast: bool,
    ) {
        let msg_id = {
            let mut st = self.state.lock();
            st.stats.msgs_sent += 1;
            let id = st.next_msg_id;
            st.next_msg_id += 1;
            id
        };
        let total_len = payload.len() as u32;
        ctx.trace_emit(
            Layer::Flip,
            Phase::Instant,
            "msg_send",
            &[("bytes", u64::from(total_len)), ("msg_id", msg_id)],
        );
        let mut offset = 0usize;
        loop {
            let end = (offset + FLIP_FRAGMENT_BYTES).min(payload.len());
            let header = PacketHeader {
                dst,
                src,
                msg_id,
                offset: offset as u32,
                total_len,
                ptype: PacketType::Data,
                multicast,
            };
            ctx.trace_instant(
                Layer::Flip,
                "fragment",
                &[("bytes", (end - offset) as u64), ("offset", offset as u64)],
            );
            // Borrow the fragment straight out of the payload; encode_with
            // copies it into the wire packet, so a refcounted Bytes slice
            // per fragment would only add allocator traffic.
            self.nic
                .send(ctx, eth_dst, header.encode_with(&payload[offset..end]));
            self.state.lock().stats.packets_sent += 1;
            offset = end;
            if offset >= payload.len() {
                break;
            }
        }
    }
}
