//! # flip — the Fast Local Internet Protocol
//!
//! A reproduction of FLIP (Kaashoek, van Renesse, van Staveren, Tanenbaum,
//! ACM TOCS 1993), the network layer of the Amoeba distributed operating
//! system and the substrate both protocol stacks in the paper run on:
//!
//! - **location-transparent addressing** ([`FlipAddr`]): entities, not hosts,
//!   are addressed; a broadcast locate protocol resolves locations at run
//!   time and stale routes are invalidated with "not here" packets;
//! - **fragmentation** of messages up to a megabyte into 1500-byte Ethernet
//!   frames, with reassembly at the receiving interface;
//! - **group communication**: FLIP group addresses map onto Ethernet
//!   hardware multicast;
//! - **unreliability by contract**: packets queued behind an unresolved
//!   locate or stuck in reassembly are eventually discarded; recovery belongs
//!   to the protocols above (Amoeba RPC / Panda).
//!
//! The interface charges no CPU time itself; the `amoeba` crate wraps it with
//! the kernel cost model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod header;
mod iface;

pub use addr::FlipAddr;
pub use header::{
    DecodeError, PacketHeader, PacketType, FLIP_FRAGMENT_BYTES, FLIP_HEADER_BYTES,
    MAX_MESSAGE_BYTES,
};
pub use iface::{FlipIface, FlipMessage, FlipStats};
