//! Integration tests: delivery semantics, medium serialization, the switch,
//! and fault injection.

use bytes::Bytes;
use desim::{us, SimChannel, Simulation};
use ethernet::{
    Dest, GilbertElliott, MacAddr, McastAddr, NetConfig, Network, FRAME_OVERHEAD_BYTES,
};

fn payload(n: usize) -> Bytes {
    Bytes::from(vec![0xabu8; n])
}

#[test]
fn unicast_delivered_to_addressee_only() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let a = net.attach(MacAddr(0), seg);
    let b = net.attach(MacAddr(1), seg);
    let c = net.attach(MacAddr(2), seg);
    let m = sim.add_processor("m");
    let a2 = a.clone();
    sim.spawn(m, "send", move |ctx| {
        a2.send(ctx, Dest::Unicast(MacAddr(1)), payload(100));
    });
    let h = sim.spawn(m, "check", move |ctx| {
        let f = b.rx().recv(ctx).expect("b gets the frame");
        assert_eq!(f.src, MacAddr(0));
        assert_eq!(f.payload.len(), 100);
        assert!(c.rx().is_empty(), "bystander receives nothing");
        assert!(a.rx().is_empty(), "no self-delivery");
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn wire_time_matches_bandwidth() {
    // 100-byte payload + 38 bytes overhead at 10 Mbit/s = 110.4 us.
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let a = net.attach(MacAddr(0), seg);
    let b = net.attach(MacAddr(1), seg);
    let m = sim.add_processor("m");
    sim.spawn(m, "send", move |ctx| {
        a.send(ctx, Dest::Unicast(MacAddr(1)), payload(100));
    });
    let h = sim.spawn(m, "check", move |ctx| {
        let _ = b.rx().recv(ctx).expect("frame");
        let expected_ns = (100 + FRAME_OVERHEAD_BYTES) as u64 * 800;
        assert_eq!(ctx.now().as_nanos(), expected_ns);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn medium_serializes_back_to_back_frames() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let a = net.attach(MacAddr(0), seg);
    let b = net.attach(MacAddr(1), seg);
    let m = sim.add_processor("m");
    sim.spawn(m, "send", move |ctx| {
        // Two frames queued at t=0 must serialize on the wire.
        a.send(ctx, Dest::Unicast(MacAddr(1)), payload(1000));
        a.send(ctx, Dest::Unicast(MacAddr(1)), payload(1000));
    });
    let h = sim.spawn(m, "check", move |ctx| {
        let one_frame_ns = (1000 + FRAME_OVERHEAD_BYTES) as u64 * 800;
        let _ = b.rx().recv(ctx).expect("first");
        assert_eq!(ctx.now().as_nanos(), one_frame_ns);
        let _ = b.rx().recv(ctx).expect("second");
        assert_eq!(ctx.now().as_nanos(), 2 * one_frame_ns);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn multicast_reaches_subscribers_only() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let a = net.attach(MacAddr(0), seg);
    let b = net.attach(MacAddr(1), seg);
    let c = net.attach(MacAddr(2), seg);
    let g = McastAddr(9);
    b.join_group(g);
    let m = sim.add_processor("m");
    sim.spawn(m, "send", move |ctx| {
        a.send(ctx, Dest::Multicast(g), payload(10));
    });
    let h = sim.spawn(m, "check", move |ctx| {
        assert!(b.rx().recv(ctx).is_some(), "subscriber receives");
        assert!(c.rx().is_empty(), "non-subscriber filtered in hardware");
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn leave_group_stops_delivery() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let a = net.attach(MacAddr(0), seg);
    let b = net.attach(MacAddr(1), seg);
    let g = McastAddr(4);
    b.join_group(g);
    b.leave_group(g);
    let m = sim.add_processor("m");
    let h = sim.spawn(m, "t", move |ctx| {
        a.send(ctx, Dest::Multicast(g), payload(10));
        ctx.sleep(us(500));
        assert!(b.rx().is_empty());
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn broadcast_reaches_everyone() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let a = net.attach(MacAddr(0), seg);
    let nics: Vec<_> = (1..5).map(|i| net.attach(MacAddr(i), seg)).collect();
    let m = sim.add_processor("m");
    sim.spawn(m, "send", move |ctx| {
        a.send(ctx, Dest::Broadcast, payload(10));
    });
    let h = sim.spawn(m, "check", move |ctx| {
        for nic in &nics {
            assert!(nic.rx().recv(ctx).is_some());
        }
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn switch_forwards_unicast_across_segments() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let s0 = net.add_segment(&mut sim, "s0");
    let s1 = net.add_segment(&mut sim, "s1");
    net.add_switch(&mut sim, &[s0, s1], "sw");
    let a = net.attach(MacAddr(0), s0);
    let b = net.attach(MacAddr(1), s1);
    let m = sim.add_processor("m");
    sim.spawn(m, "send", move |ctx| {
        a.send(ctx, Dest::Unicast(MacAddr(1)), payload(200));
    });
    let h = sim.spawn(m, "check", move |ctx| {
        let f = b.rx().recv(ctx).expect("forwarded frame");
        assert_eq!(f.src, MacAddr(0));
        // Crossing the switch costs two wire transits plus switch latency.
        let one_wire = (200 + FRAME_OVERHEAD_BYTES) as u64 * 800;
        assert_eq!(ctx.now().as_nanos(), 2 * one_wire + 30_000);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn switch_does_not_reinject_local_traffic() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let s0 = net.add_segment(&mut sim, "s0");
    let s1 = net.add_segment(&mut sim, "s1");
    net.add_switch(&mut sim, &[s0, s1], "sw");
    let a = net.attach(MacAddr(0), s0);
    let b = net.attach(MacAddr(1), s0); // same segment
    let m = sim.add_processor("m");
    let net2 = net.clone();
    let h = sim.spawn(m, "t", move |ctx| {
        a.send(ctx, Dest::Unicast(MacAddr(1)), payload(50));
        let _ = b.rx().recv(ctx).expect("local delivery");
        ctx.sleep(us(2000));
        // The other segment carried nothing.
        assert_eq!(net2.segment_stats(s1).frames, 0);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn switch_floods_multicast_to_other_segments_once() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let s0 = net.add_segment(&mut sim, "s0");
    let s1 = net.add_segment(&mut sim, "s1");
    let s2 = net.add_segment(&mut sim, "s2");
    net.add_switch(&mut sim, &[s0, s1, s2], "sw");
    let a = net.attach(MacAddr(0), s0);
    let b = net.attach(MacAddr(1), s1);
    let c = net.attach(MacAddr(2), s2);
    let g = McastAddr(1);
    b.join_group(g);
    c.join_group(g);
    let m = sim.add_processor("m");
    sim.spawn(m, "send", move |ctx| {
        a.send(ctx, Dest::Multicast(g), payload(64));
    });
    let net2 = net.clone();
    let h = sim.spawn(m, "check", move |ctx| {
        assert!(b.rx().recv(ctx).is_some());
        assert!(c.rx().recv(ctx).is_some());
        ctx.sleep(us(5000));
        // Exactly one frame per segment: no switch loops.
        for seg in [s0, s1, s2] {
            assert_eq!(net2.segment_stats(seg).frames, 1, "{seg}");
        }
        assert!(b.rx().is_empty());
        assert!(c.rx().is_empty());
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn forced_drops_lose_frames() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let a = net.attach(MacAddr(0), seg);
    let b = net.attach(MacAddr(1), seg);
    net.faults().lock().force_drop_next = 1;
    let m = sim.add_processor("m");
    let net2 = net.clone();
    let h = sim.spawn(m, "t", move |ctx| {
        a.send(ctx, Dest::Unicast(MacAddr(1)), payload(10));
        a.send(ctx, Dest::Unicast(MacAddr(1)), payload(10));
        let f = b.rx().recv(ctx).expect("second frame survives");
        assert_eq!(f.payload.len(), 10);
        let stats = net2.segment_stats(seg);
        assert_eq!(stats.wire_drops, 1);
        assert_eq!(stats.frames, 1);
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn probabilistic_loss_is_deterministic_per_seed() {
    fn losses(seed: u64) -> u64 {
        let mut sim = Simulation::new(seed);
        let mut net = Network::new(NetConfig::default());
        let seg = net.add_segment(&mut sim, "s0");
        let a = net.attach(MacAddr(0), seg);
        let _b = net.attach(MacAddr(1), seg);
        net.faults().lock().wire_loss_prob = 0.3;
        let m = sim.add_processor("m");
        let h = sim.spawn(m, "t", move |ctx| {
            for _ in 0..100 {
                a.send(ctx, Dest::Unicast(MacAddr(1)), payload(10));
            }
            ctx.sleep(desim::ms(100));
        });
        sim.run_until_finished(&h).expect("run");
        net.segment_stats(seg).wire_drops
    }
    let first = losses(42);
    assert!(first > 5 && first < 70, "plausible loss count, got {first}");
    assert_eq!(first, losses(42));
}

#[test]
fn utilization_reflects_busy_medium() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let a = net.attach(MacAddr(0), seg);
    let b = net.attach(MacAddr(1), seg);
    let m = sim.add_processor("m");
    let h = sim.spawn(m, "t", move |ctx| {
        for _ in 0..8 {
            a.send(ctx, Dest::Unicast(MacAddr(1)), payload(1500));
        }
        for _ in 0..8 {
            let _ = b.rx().recv(ctx);
        }
    });
    sim.run_until_finished(&h).expect("run");
    let stats = net.segment_stats(seg);
    let elapsed = sim.now().duration_since(desim::SimTime::ZERO);
    let u = stats.utilization(elapsed);
    assert!(u > 0.99, "back-to-back full frames saturate the wire: {u}");
    let _: SimChannel<u8> = SimChannel::new(); // keep import used
}

/// Two edge switches sharing a backbone: `a` on a leaf behind switch A,
/// `b` on a leaf behind switch B, `srv` directly on the backbone.
fn tree(
    sim: &mut Simulation,
    net: &mut Network,
) -> (
    ethernet::SegmentId,
    ethernet::SegmentId,
    ethernet::SegmentId,
) {
    let s0 = net.add_segment(sim, "s0");
    let s1 = net.add_segment(sim, "s1");
    let bb = net.add_segment(sim, "backbone");
    net.add_switch_with_uplink(sim, &[s0], bb, "swA");
    net.add_switch_with_uplink(sim, &[s1], bb, "swB");
    (s0, s1, bb)
}

#[test]
fn tree_switch_routes_unicast_between_edge_switches() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let (s0, s1, bb) = tree(&mut sim, &mut net);
    let a = net.attach(MacAddr(0), s0);
    let b = net.attach(MacAddr(1), s1);
    let srv = net.attach(MacAddr(2), bb);
    let m = sim.add_processor("m");
    let a2 = a.clone();
    let b2 = b.clone();
    let srv2 = srv.clone();
    sim.spawn(m, "send", move |ctx| {
        // Leaf → leaf crosses both switches and the backbone.
        a2.send(ctx, Dest::Unicast(MacAddr(1)), payload(100));
    });
    let h = sim.spawn(m, "check", move |ctx| {
        let f = b.rx().recv(ctx).expect("leaf-to-leaf across the backbone");
        assert_eq!(f.src, MacAddr(0));
        // Leaf → backbone station: one switch hop up.
        b2.send(ctx, Dest::Unicast(MacAddr(2)), payload(50));
        let f = srv.rx().recv(ctx).expect("leaf to backbone station");
        assert_eq!(f.src, MacAddr(1));
        // Backbone station → leaf: one switch hop down.
        srv2.send(ctx, Dest::Unicast(MacAddr(0)), payload(25));
        let f = a.rx().recv(ctx).expect("backbone station to leaf");
        assert_eq!(f.src, MacAddr(2));
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
fn tree_switch_floods_multicast_only_toward_members() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let s0 = net.add_segment(&mut sim, "s0");
    let s2 = net.add_segment(&mut sim, "s2");
    let s1 = net.add_segment(&mut sim, "s1");
    let bb = net.add_segment(&mut sim, "backbone");
    net.add_switch_with_uplink(&mut sim, &[s0, s2], bb, "swA");
    net.add_switch_with_uplink(&mut sim, &[s1], bb, "swB");
    let a = net.attach(MacAddr(0), s0);
    let b = net.attach(MacAddr(1), s1);
    let _c = net.attach(MacAddr(2), s2);
    let g = McastAddr(9);
    b.join_group(g);
    let m = sim.add_processor("m");
    let h = sim.spawn(m, "t", move |ctx| {
        a.send(ctx, Dest::Multicast(g), payload(10));
        assert!(b.rx().recv(ctx).is_some(), "member behind the other switch");
    });
    sim.run_until_finished(&h).expect("run");
    assert_eq!(
        net.segment_stats(s2).frames,
        0,
        "memberless sibling leaf is pruned"
    );
    assert_eq!(
        net.segment_stats(bb).frames,
        1,
        "one copy crosses the backbone"
    );
}

#[test]
fn tree_switch_keeps_local_multicast_off_the_backbone() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let (s0, _s1, bb) = tree(&mut sim, &mut net);
    let a = net.attach(MacAddr(0), s0);
    let b = net.attach(MacAddr(1), s0);
    let g = McastAddr(7);
    b.join_group(g);
    let m = sim.add_processor("m");
    let h = sim.spawn(m, "t", move |ctx| {
        a.send(ctx, Dest::Multicast(g), payload(10));
        assert!(b.rx().recv(ctx).is_some(), "same-segment member");
    });
    sim.run_until_finished(&h).expect("run");
    assert_eq!(
        net.segment_stats(bb).frames,
        0,
        "all members local: nothing crosses the uplink"
    );
}

#[test]
fn tree_switch_broadcast_reaches_every_segment() {
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let (s0, s1, bb) = tree(&mut sim, &mut net);
    let a = net.attach(MacAddr(0), s0);
    let b = net.attach(MacAddr(1), s1);
    let srv = net.attach(MacAddr(2), bb);
    let m = sim.add_processor("m");
    let h = sim.spawn(m, "t", move |ctx| {
        a.send(ctx, Dest::Broadcast, payload(10));
        assert!(b.rx().recv(ctx).is_some(), "leaf behind the other switch");
        assert!(srv.rx().recv(ctx).is_some(), "backbone station");
    });
    sim.run_until_finished(&h).expect("run");
}

#[test]
#[should_panic(expected = "restricted to single-lane networks")]
fn force_drop_next_panics_on_multi_lane_network() {
    let mut sim = Simulation::new(1);
    let lane = sim.add_lane();
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let _far = net.add_segment_on(&mut sim, "s1", lane);
    let a = net.attach(MacAddr(0), seg);
    let _b = net.attach(MacAddr(1), seg);
    net.faults().lock().force_drop_next = 1;
    let m = sim.add_processor("m");
    sim.spawn(m, "t", move |ctx| {
        a.send(ctx, Dest::Unicast(MacAddr(1)), payload(10));
    });
    let _ = sim.run();
}

#[test]
#[should_panic(expected = "restricted to single-lane networks")]
fn gilbert_panics_on_multi_lane_network() {
    let mut sim = Simulation::new(1);
    let lane = sim.add_lane();
    let mut net = Network::new(NetConfig::default());
    let seg = net.add_segment(&mut sim, "s0");
    let _far = net.add_segment_on(&mut sim, "s1", lane);
    let a = net.attach(MacAddr(0), seg);
    let _b = net.attach(MacAddr(1), seg);
    net.faults().lock().gilbert = Some(GilbertElliott {
        p_enter_bad: 0.5,
        p_exit_bad: 0.5,
        loss_good: 0.0,
        loss_bad: 1.0,
        bad: false,
    });
    let m = sim.add_processor("m");
    sim.spawn(m, "t", move |ctx| {
        a.send(ctx, Dest::Unicast(MacAddr(1)), payload(10));
    });
    let _ = sim.run();
}
