//! Topology-builder placement properties.
//!
//! The scale-out story rests on placement being a pure function of the
//! [`TopologySpec`]: machine→segment→lane assignment must not depend on the
//! execution backend or the shard count, or runs stop being bit-identical
//! across runner configurations. These tests pin that down directly, without
//! running any protocol traffic.

use desim::{Backend, LaneId, Simulation};
use ethernet::{NetConfig, Network, TopologySpec};
use proptest::prelude::*;

/// Realizes `spec` on a fresh simulation and returns the full placement map
/// as plain numbers (debug-format identities, stable across processes).
fn placement(spec: &TopologySpec, backend: Backend, shards: usize) -> Vec<(String, String)> {
    let mut sim = Simulation::builder()
        .seed(7)
        .backend(backend)
        .shards(shards)
        .build();
    let mut net = Network::new(NetConfig::default());
    let topo = spec.build(&mut sim, &mut net, "pool");
    (0..spec.machines)
        .map(|m| {
            let seg = topo.segment_of(m);
            let lane = topo.lane_of(m);
            // The placement map must agree with where the builder actually
            // put the segment.
            assert_eq!(net.segment_lane(seg), lane, "machine {m} lane mismatch");
            (format!("{seg:?}"), format!("{lane:?}"))
        })
        .collect()
}

fn spec_strategy() -> impl Strategy<Value = TopologySpec> {
    (1u32..64, 1u32..12, 0u32..8, 1u32..5, 1u32..4).prop_map(
        |(machines, per_segment, backbone, per_switch, lanes)| TopologySpec {
            machines,
            per_segment,
            backbone_stations: backbone.min(machines),
            segments_per_switch: per_switch,
            lanes,
            backbone_bandwidth_bps: None,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Placement is identical across backends and shard counts: the shard
    /// knob only decides how many OS threads drive the lanes.
    #[test]
    fn placement_independent_of_backend_and_shards(spec in spec_strategy()) {
        let reference = placement(&spec, Backend::OsThreads, 1);
        prop_assert_eq!(&reference, &placement(&spec, Backend::Fibers, 1));
        prop_assert_eq!(&reference, &placement(&spec, Backend::Fibers, 2));
        prop_assert_eq!(&reference, &placement(&spec, Backend::OsThreads, 0));
    }

    /// Structural invariants of the placement map itself.
    #[test]
    fn placement_invariants(spec in spec_strategy()) {
        let mut sim = Simulation::new(7);
        let mut net = Network::new(NetConfig::default());
        let topo = spec.build(&mut sim, &mut net, "pool");
        prop_assert_eq!(topo.leaf_segments().len() as u32, spec.n_leaves());
        prop_assert_eq!(topo.backbone().is_some(), spec.is_tree());
        let mut leaf_load = vec![0u32; topo.leaf_segments().len()];
        for m in 0..spec.machines {
            let seg = topo.segment_of(m);
            if m < spec.backbone_stations {
                // Servers sit on the backbone, which lives on the root lane.
                prop_assert_eq!(Some(seg), topo.backbone());
                prop_assert_eq!(topo.lane_of(m), LaneId::ZERO);
            } else {
                let leaf = topo
                    .leaf_segments()
                    .iter()
                    .position(|s| *s == seg)
                    .expect("client machines live on a leaf");
                leaf_load[leaf] += 1;
                // Leaves fill in machine order, `per_segment` at a time.
                prop_assert_eq!(
                    leaf as u32,
                    (m - spec.backbone_stations) / spec.per_segment
                );
            }
        }
        for (leaf, load) in leaf_load.iter().enumerate() {
            prop_assert!(
                *load <= spec.per_segment,
                "leaf {} overfull: {} > {}",
                leaf,
                load,
                spec.per_segment
            );
        }
    }

    /// The capacity-hint estimator is a true upper bound on the machines
    /// any single lane actually hosts.
    #[test]
    fn per_lane_estimate_bounds_actual_load(spec in spec_strategy()) {
        let mut sim = Simulation::new(7);
        let mut net = Network::new(NetConfig::default());
        let topo = spec.build(&mut sim, &mut net, "pool");
        let mut lane_load = std::collections::HashMap::new();
        for m in 0..spec.machines {
            *lane_load.entry(topo.lane_of(m)).or_insert(0u32) += 1;
        }
        let busiest = lane_load.values().copied().max().unwrap_or(0);
        prop_assert!(
            busiest <= spec.max_machines_per_lane(),
            "busiest lane {} over estimate {}",
            busiest,
            spec.max_machines_per_lane()
        );
    }
}

/// The flat spec reproduces the historical hand-rolled shapes exactly.
#[test]
fn flat_spec_matches_historical_shapes() {
    // Single segment, no switch: the 32-machine test world.
    let spec = TopologySpec::flat(32, 32);
    assert!(!spec.is_tree());
    assert_eq!(spec.n_leaves(), 1);
    // The paper's pool: 8 per segment behind one flat switch.
    let spec = TopologySpec::flat(32, 8);
    assert!(!spec.is_tree());
    assert_eq!(spec.n_leaves(), 4);
    let mut sim = Simulation::new(1);
    let mut net = Network::new(NetConfig::default());
    let topo = spec.build(&mut sim, &mut net, "pool");
    assert!(topo.backbone().is_none());
    for m in 0..32 {
        assert_eq!(topo.lane_of(m), LaneId::ZERO);
        assert_eq!(topo.segment_of(m), topo.leaf_segments()[(m / 8) as usize]);
    }
}
