//! Segments, NICs, and the switch.
//!
//! A [`Network`] owns any number of shared-medium segments. Each segment is
//! driven by a daemon thread that serializes transmissions at the configured
//! bandwidth (half-duplex, like the paper's 10 Mbit/s Ethernet) and then
//! delivers the frame to every matching attachment. A [`Switch`] connects
//! segments store-and-forward; multicast and broadcast frames are flooded to
//! all other segments.
//!
//! # Sharding: segments as the unit of parallelism
//!
//! A segment can be placed on a dedicated scheduler lane with
//! [`Network::add_segment_on`], which lets the simulation advance segments
//! concurrently under desim's conservative windowed driver. [`Network::add_switch`]
//! detects segment placement automatically: when every connected segment
//! lives on one lane it spawns the classic in-lane port daemons (bit-identical
//! to the unsharded build), and when segments span lanes it builds a mesh of
//! cross-lane links whose delay is the switch's store-and-forward latency
//! ([`NetConfig::switch_latency`]) — that latency is exactly the conservative
//! lookahead the windowed driver uses, exposed via
//! [`Network::min_cross_segment_latency`].
//!
//! Forwarding semantics differ in one documented way: the classic switch's
//! port daemon *sleeps* for the hop latency (frames behind it on the same
//! port queue up), while a cross-lane hop is *pipelined* — each frame arrives
//! `switch_latency` after capture, but the port does not block. Arrival
//! times for an isolated frame are identical.
//!
//! ## Fault injection under sharding
//!
//! Each segment daemon draws fault coin flips from its own lane's RNG, so
//! probability knobs ([`FaultState::wire_loss_prob`] etc.) and static
//! topology faults ([`FaultState::crash`], [`FaultState::partition`]) remain
//! bit-identical across shard counts. Two knobs mutate shared state per
//! carried frame and are therefore restricted to single-lane topologies:
//! [`FaultState::gilbert`] and [`FaultState::force_drop_next`]. The
//! restriction is enforced: a segment daemon that sees either knob active
//! on a network whose segments span lanes panics with a diagnostic. With
//! multiple lanes, set fault knobs before the run starts (or from a thread
//! on the same lane as the affected segment); mid-run mutation from another
//! lane races with that lane's window execution.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use desim::trace::{Layer, Phase};
use desim::{Ctx, LaneId, PendingWake, ProcId, SimChannel, SimDuration, Simulation, XSender};
use parking_lot::Mutex;

use crate::frame::{Dest, Frame, MacAddr, McastAddr};

/// Identifies a segment within one [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(usize);

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// Static configuration of a [`Network`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Raw bandwidth of every segment, in bits per second.
    pub bandwidth_bps: u64,
    /// Fixed store-and-forward latency added by the switch per hop.
    pub switch_latency: SimDuration,
}

impl Default for NetConfig {
    /// The paper's network: 10 Mbit/s Ethernet, a small switch latency.
    fn default() -> Self {
        NetConfig {
            bandwidth_bps: 10_000_000,
            switch_latency: SimDuration::from_micros(30),
        }
    }
}

/// A two-state Gilbert–Elliott burst-loss model: the wire alternates between
/// a *good* and a *bad* state with per-frame transition probabilities, and
/// each state has its own loss rate. Captures correlated loss bursts that
/// independent per-frame coin flips cannot produce.
///
/// The state advances once per frame transmitted on the medium; the effective
/// wire-loss probability of a frame is the maximum of the current state's
/// loss rate and [`FaultState::wire_loss_prob`].
#[derive(Debug, Clone, PartialEq)]
pub struct GilbertElliott {
    /// Per-frame probability of transitioning good → bad.
    pub p_enter_bad: f64,
    /// Per-frame probability of transitioning bad → good.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state (usually 0 or small).
    pub loss_good: f64,
    /// Loss probability while in the bad state (usually large).
    pub loss_bad: f64,
    /// Current channel state (`true` = bad). Starts good.
    pub bad: bool,
}

impl GilbertElliott {
    /// A model starting in the good state.
    pub fn new(p_enter_bad: f64, p_exit_bad: f64, loss_good: f64, loss_bad: f64) -> Self {
        GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good,
            loss_bad,
            bad: false,
        }
    }
}

/// Runtime-adjustable fault injection knobs (see [`Network::faults`]).
///
/// Every knob defaults to "off", and fault code draws from the simulation
/// RNG only when the corresponding knob is active — so a default
/// `FaultState` leaves the schedule bit-identical to a build without fault
/// injection (the zero-cost discipline the golden-trace tests pin).
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    /// Probability that a frame is lost on the wire (all receivers miss it).
    pub wire_loss_prob: f64,
    /// Probability that an individual receiver drops an arriving frame.
    pub rx_loss_prob: f64,
    /// Unconditionally drop this many upcoming frames (wire-level), then
    /// resume normal behaviour. Useful for targeted recovery tests.
    ///
    /// **Single-lane only.** The countdown is shared mutable state
    /// decremented per carried frame; on a network whose segments span
    /// scheduler lanes the decrements race between lanes, so using the knob
    /// there panics at the first carried frame (see the module docs).
    pub force_drop_next: u64,
    /// Probability that a delivered frame is delivered *twice* to the same
    /// receiver (duplicate generation, e.g. a confused repeater).
    pub dup_prob: f64,
    /// Probability that an individual delivery is held back and released
    /// only after later frames have been carried (reordering/jitter).
    pub reorder_prob: f64,
    /// Maximum number of subsequent carried frames a held delivery waits
    /// behind (the actual hold is uniform in `1..=reorder_span`); `0` is
    /// treated as `1`.
    pub reorder_span: u64,
    /// Optional burst-loss channel model layered over `wire_loss_prob`.
    ///
    /// **Single-lane only.** The Gilbert–Elliott channel state advances per
    /// carried frame in shared mutable state; on a multi-lane network the
    /// transitions race between lanes, so activating the model there panics
    /// at the first carried frame (see the module docs).
    pub gilbert: Option<GilbertElliott>,
    /// Severed links: frames between a partitioned pair are dropped at the
    /// receiver side, in both directions. Keyed by normalized MAC pairs.
    partitions: HashSet<(MacAddr, MacAddr)>,
    /// Crashed machines: their NIC neither transmits nor receives. Protocol
    /// state above the NIC survives (fail-recover), so a reboot forces the
    /// stacks through their retransmission / gap-repair / resync paths.
    down: HashSet<MacAddr>,
}

fn pair_key(a: MacAddr, b: MacAddr) -> (MacAddr, MacAddr) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl FaultState {
    /// Severs the link between `a` and `b` (both directions).
    pub fn partition(&mut self, a: MacAddr, b: MacAddr) {
        self.partitions.insert(pair_key(a, b));
    }

    /// Restores the link between `a` and `b`.
    pub fn heal(&mut self, a: MacAddr, b: MacAddr) {
        self.partitions.remove(&pair_key(a, b));
    }

    /// Restores all severed links.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// True if the link between `a` and `b` is currently severed.
    pub fn is_partitioned(&self, a: MacAddr, b: MacAddr) -> bool {
        self.partitions.contains(&pair_key(a, b))
    }

    /// Takes `mac`'s NIC off the network: nothing it sends reaches the wire
    /// and nothing addressed to it is delivered, until [`FaultState::reboot`].
    pub fn crash(&mut self, mac: MacAddr) {
        self.down.insert(mac);
    }

    /// Brings a crashed machine's NIC back onto the network.
    pub fn reboot(&mut self, mac: MacAddr) {
        self.down.remove(&mac);
    }

    /// True if `mac`'s NIC is currently off the network.
    pub fn is_down(&self, mac: MacAddr) -> bool {
        self.down.contains(&mac)
    }

    /// Number of currently severed links.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Number of currently crashed machines.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// True if any fault knob is active (used by tests asserting a plan
    /// really was cleaned up before the end of a run).
    pub fn any_active(&self) -> bool {
        self.wire_loss_prob > 0.0
            || self.rx_loss_prob > 0.0
            || self.force_drop_next > 0
            || self.dup_prob > 0.0
            || self.reorder_prob > 0.0
            || self.gilbert.is_some()
            || !self.partitions.is_empty()
            || !self.down.is_empty()
    }
}

/// Cumulative per-segment counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Frames successfully carried.
    pub frames: u64,
    /// Wire bytes successfully carried (including framing overhead).
    pub wire_bytes: u64,
    /// Total time the medium was busy.
    pub busy: SimDuration,
    /// Frames lost on the wire (fault injection).
    pub wire_drops: u64,
    /// Per-receiver deliveries dropped (fault injection).
    pub rx_drops: u64,
    /// Frames a crashed sender's NIC never put on the wire.
    pub down_tx_drops: u64,
    /// Per-receiver deliveries suppressed because the link was partitioned
    /// or the destination machine was down.
    pub link_drops: u64,
    /// Extra deliveries generated by frame duplication.
    pub dup_deliveries: u64,
    /// Deliveries held back for reordering (each later released or, if the
    /// receiver became unreachable meanwhile, counted into `link_drops`).
    pub held_deliveries: u64,
}

impl SegmentStats {
    /// Fraction of `elapsed` during which the medium was busy.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

struct Attachment {
    mac: Option<MacAddr>,
    promiscuous: bool,
    groups: HashSet<McastAddr>,
    rx: SimChannel<Frame>,
}

/// A delivery held back by reorder injection: released onto its receiver's
/// queue after `remaining` more frames have crossed the medium.
struct HeldDelivery {
    remaining: u64,
    rx: SimChannel<Frame>,
    dst_mac: Option<MacAddr>,
    frame: Frame,
}

struct SegmentInner {
    #[allow(dead_code)]
    name: String,
    tx: SimChannel<Frame>,
    attachments: Vec<Attachment>,
    stats: SegmentStats,
    held: Vec<HeldDelivery>,
    /// Scheduler lane this segment's daemon runs on.
    lane: LaneId,
    /// The segment daemon's processor (the cross-lane links' destination
    /// placement; delivery itself is injected into the lane's event queue
    /// at window-flush time, no daemon involved).
    proc: ProcId,
    /// Serialization rate of this medium (per-segment: a backbone segment
    /// may be faster than the default leaf bandwidth).
    ns_per_byte: u64,
    /// Multicast membership count per group on this segment (kept by
    /// join/leave so switch trees can prune floods to memberless subtrees).
    mcast_members: HashMap<McastAddr, u32>,
}

struct NetInner {
    segments: Vec<SegmentInner>,
    /// Static station directory: `mac -> segment` (index by `MacAddr.0`).
    mac_home: Vec<Option<SegmentId>>,
    /// Minimum delay over all cross-lane switch hops built so far (the
    /// conservative lookahead this network contributes to the simulation).
    min_cross_latency: Option<SimDuration>,
    /// Network-wide multicast membership counts (for switch-tree pruning).
    mcast_total: HashMap<McastAddr, u32>,
    /// True once segments span more than one scheduler lane; gates the
    /// fault knobs that mutate shared state per carried frame.
    multi_lane: bool,
}

impl NetInner {
    fn home_of(&self, mac: MacAddr) -> Option<SegmentId> {
        self.mac_home.get(mac.0 as usize).copied().flatten()
    }
}

/// A simulated multi-segment Ethernet.
///
/// # Examples
///
/// ```
/// use desim::Simulation;
/// use ethernet::{Dest, MacAddr, NetConfig, Network};
/// use bytes::Bytes;
///
/// let mut sim = Simulation::new(1);
/// let mut net = Network::new(NetConfig::default());
/// let seg = net.add_segment(&mut sim, "seg0");
/// let a = net.attach(MacAddr(0), seg);
/// let b = net.attach(MacAddr(1), seg);
///
/// let m0 = sim.add_processor("m0");
/// let m1 = sim.add_processor("m1");
/// sim.spawn(m0, "sender", {
///     let a = a.clone();
///     move |ctx| a.send(ctx, Dest::Unicast(MacAddr(1)), Bytes::from_static(b"hello"))
/// });
/// let rxed = sim.spawn(m1, "receiver", move |ctx| {
///     let f = b.rx().recv(ctx).expect("frame");
///     assert_eq!(&f.payload[..], b"hello");
/// });
/// sim.run_until_finished(&rxed).expect("run");
/// ```
#[derive(Clone)]
pub struct Network {
    cfg: NetConfig,
    inner: Arc<Mutex<NetInner>>,
    faults: Arc<Mutex<FaultState>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("segments", &inner.segments.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl Network {
    /// Creates an empty network with the given configuration.
    pub fn new(cfg: NetConfig) -> Self {
        Network {
            cfg,
            inner: Arc::new(Mutex::new(NetInner {
                segments: Vec::new(),
                mac_home: Vec::new(),
                min_cross_latency: None,
                mcast_total: HashMap::new(),
                multi_lane: false,
            })),
            faults: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    /// Nanoseconds to put one byte on the wire.
    fn ns_per_byte(&self) -> u64 {
        8_000_000_000 / self.cfg.bandwidth_bps
    }

    /// Time a frame occupies the medium.
    pub fn wire_time(&self, frame: &Frame) -> SimDuration {
        SimDuration::from_nanos(frame.wire_bytes() as u64 * self.ns_per_byte())
    }

    /// Returns the shared fault-injection state for runtime adjustment.
    pub fn faults(&self) -> Arc<Mutex<FaultState>> {
        Arc::clone(&self.faults)
    }

    /// Adds a shared-medium segment and spawns its transmission daemon on
    /// the root lane. Equivalent to `add_segment_on(sim, name, LaneId::ZERO)`.
    pub fn add_segment(&mut self, sim: &mut Simulation, name: &str) -> SegmentId {
        self.add_segment_on(sim, name, LaneId::ZERO)
    }

    /// Adds a shared-medium segment whose transmission daemon runs on the
    /// given scheduler lane. Segments on different lanes advance in parallel
    /// under the windowed driver; connect them with [`Network::add_switch`],
    /// which builds cross-lane links automatically.
    pub fn add_segment_on(&mut self, sim: &mut Simulation, name: &str, lane: LaneId) -> SegmentId {
        self.add_segment_on_with_bandwidth(sim, name, lane, self.cfg.bandwidth_bps)
    }

    /// Adds a segment with an explicit bandwidth overriding
    /// [`NetConfig::bandwidth_bps`] — e.g. a fast backbone segment behind
    /// which slow leaf segments aggregate in a switch tree.
    pub fn add_segment_on_with_bandwidth(
        &mut self,
        sim: &mut Simulation,
        name: &str,
        lane: LaneId,
        bandwidth_bps: u64,
    ) -> SegmentId {
        let tx = SimChannel::new();
        let proc = sim.add_processor_on(lane, &format!("net-{name}"));
        let id = {
            let mut inner = self.inner.lock();
            let id = SegmentId(inner.segments.len());
            if let Some(first) = inner.segments.first() {
                if first.lane != lane {
                    inner.multi_lane = true;
                }
            }
            inner.segments.push(SegmentInner {
                name: name.to_owned(),
                tx: tx.clone(),
                attachments: Vec::new(),
                stats: SegmentStats::default(),
                held: Vec::new(),
                lane,
                proc,
                ns_per_byte: 8_000_000_000 / bandwidth_bps,
                mcast_members: HashMap::new(),
            });
            id
        };
        let net = self.clone();
        sim.spawn_daemon_on_lane(lane, proc, &format!("eth-{name}"), move |ctx| {
            net.segment_daemon(ctx, id);
        });
        id
    }

    /// The scheduler lane a segment's daemon runs on.
    pub fn segment_lane(&self, segment: SegmentId) -> LaneId {
        self.inner.lock().segments[segment.0].lane
    }

    /// Minimum store-and-forward latency over the cross-lane switch hops
    /// built so far — the conservative lookahead this network contributes
    /// (`None` until a cross-lane switch exists; the simulation computes the
    /// same bound itself from its registered links).
    pub fn min_cross_segment_latency(&self) -> Option<SimDuration> {
        self.inner.lock().min_cross_latency
    }

    /// Attaches a station to `segment` and returns its NIC.
    ///
    /// # Panics
    ///
    /// Panics if the MAC is already attached or the segment is unknown.
    pub fn attach(&mut self, mac: MacAddr, segment: SegmentId) -> Nic {
        let mut inner = self.inner.lock();
        assert!(segment.0 < inner.segments.len(), "unknown {segment}");
        let idx = mac.0 as usize;
        if inner.mac_home.len() <= idx {
            inner.mac_home.resize(idx + 1, None);
        }
        assert!(inner.mac_home[idx].is_none(), "{mac} attached twice");
        inner.mac_home[idx] = Some(segment);
        let rx = SimChannel::new();
        let tx = inner.segments[segment.0].tx.clone();
        inner.segments[segment.0].attachments.push(Attachment {
            mac: Some(mac),
            promiscuous: false,
            groups: HashSet::new(),
            rx: rx.clone(),
        });
        Nic {
            mac,
            segment,
            tx,
            rx,
            net: Arc::clone(&self.inner),
        }
    }

    /// Connects `segments` with a store-and-forward switch.
    ///
    /// Unicast frames are forwarded to the destination's home segment;
    /// multicast and broadcast frames are flooded to all other segments.
    /// A single switch per network is supported (no loop protection).
    ///
    /// Placement is detected automatically: if every segment lives on one
    /// scheduler lane the classic in-lane port daemons are spawned
    /// (bit-identical to the unsharded build); if segments span lanes, each
    /// segment gets its own port daemon on its own lane and hops between
    /// lanes ride cross-lane links of delay [`NetConfig::switch_latency`]
    /// (pipelined: the port does not block for the hop; see module docs).
    pub fn add_switch(&mut self, sim: &mut Simulation, segments: &[SegmentId], name: &str) {
        let lanes: Vec<LaneId> = segments.iter().map(|&s| self.segment_lane(s)).collect();
        if lanes.iter().all(|&l| l == lanes[0]) {
            let proc = sim.add_processor_on(lanes[0], &format!("switch-{name}"));
            for &seg in segments {
                let port_rx = self.add_switch_port(seg);
                let net = self.clone();
                let all: Vec<SegmentId> = segments.to_vec();
                sim.spawn_daemon_on_lane(lanes[0], proc, &format!("sw-{name}-{seg}"), move |ctx| {
                    net.switch_port_daemon(ctx, seg, &all, port_rx);
                });
            }
            return;
        }
        // Cross-lane switch: one port daemon per segment, on that segment's
        // lane, plus a link (cross-lane or local channel) to every other
        // connected segment.
        assert!(
            !self.cfg.switch_latency.is_zero(),
            "a cross-lane switch needs a positive switch_latency (it is the lookahead)"
        );
        for (i, &seg) in segments.iter().enumerate() {
            let port_rx = self.add_switch_port(seg);
            let (my_lane, my_proc) = {
                let inner = self.inner.lock();
                (inner.segments[seg.0].lane, inner.segments[seg.0].proc)
            };
            let mut links: Vec<(SegmentId, PortLink)> = Vec::new();
            for (j, &dst) in segments.iter().enumerate() {
                if j == i {
                    continue;
                }
                let (dst_lane, dst_proc, dst_tx) = {
                    let inner = self.inner.lock();
                    let s = &inner.segments[dst.0];
                    (s.lane, s.proc, s.tx.clone())
                };
                let link = if dst_lane == my_lane {
                    PortLink::Local(dst_tx)
                } else {
                    PortLink::Cross(sim.cross_link(
                        &format!("sw-{name}-{seg}-{dst}"),
                        self.cfg.switch_latency,
                        my_lane,
                        dst_lane,
                        dst_proc,
                        dst_tx,
                    ))
                };
                links.push((dst, link));
            }
            {
                let mut inner = self.inner.lock();
                inner.min_cross_latency = Some(match inner.min_cross_latency {
                    Some(cur) => cur.min(self.cfg.switch_latency),
                    None => self.cfg.switch_latency,
                });
            }
            let net = self.clone();
            sim.spawn_daemon_on_lane(my_lane, my_proc, &format!("sw-{name}-{seg}"), move |ctx| {
                net.sharded_switch_port_daemon(ctx, seg, &links, port_rx);
            });
        }
    }

    /// Connects `leaves` to a shared `uplink` segment with an edge switch —
    /// the building block of a two-level switch tree: many leaf segments
    /// aggregate behind one (usually faster) backbone segment, and several
    /// edge switches may share that backbone. Unlike [`Network::add_switch`],
    /// any number of edge switches can coexist on one network.
    ///
    /// Forwarding is routed, not flooded: a unicast frame from a leaf goes
    /// to the sibling leaf that is home to its destination, or up to the
    /// backbone otherwise; a frame arriving on the backbone is forwarded
    /// down only if its destination lives behind one of this switch's
    /// leaves. Multicast floods are pruned: a leaf receives a group frame
    /// only if a member is attached there, and the backbone only if members
    /// exist beyond this switch's leaves (broadcast is never pruned).
    ///
    /// Stations must attach either to a leaf or to the backbone itself —
    /// the tree is two-level (edge switches never cascade). Every port runs
    /// on its segment's lane; hops onto another lane ride cross-lane links
    /// of delay [`NetConfig::switch_latency`], which therefore must be
    /// positive.
    pub fn add_switch_with_uplink(
        &mut self,
        sim: &mut Simulation,
        leaves: &[SegmentId],
        uplink: SegmentId,
        name: &str,
    ) {
        assert!(
            !self.cfg.switch_latency.is_zero(),
            "an edge switch needs a positive switch_latency (it is the lookahead)"
        );
        assert!(
            !leaves.contains(&uplink),
            "the uplink segment cannot also be a leaf of the same switch"
        );
        let mut ports: Vec<SegmentId> = leaves.to_vec();
        ports.push(uplink);
        let mut any_cross = false;
        for (i, &seg) in ports.iter().enumerate() {
            let port_rx = self.add_switch_port(seg);
            let (my_lane, my_proc) = {
                let inner = self.inner.lock();
                (inner.segments[seg.0].lane, inner.segments[seg.0].proc)
            };
            let mut links: Vec<(SegmentId, PortLink)> = Vec::new();
            for (j, &dst) in ports.iter().enumerate() {
                if j == i {
                    continue;
                }
                let (dst_lane, dst_proc, dst_tx) = {
                    let inner = self.inner.lock();
                    let s = &inner.segments[dst.0];
                    (s.lane, s.proc, s.tx.clone())
                };
                let link = if dst_lane == my_lane {
                    PortLink::Local(dst_tx)
                } else {
                    any_cross = true;
                    PortLink::Cross(sim.cross_link(
                        &format!("sw-{name}-{seg}-{dst}"),
                        self.cfg.switch_latency,
                        my_lane,
                        dst_lane,
                        dst_proc,
                        dst_tx,
                    ))
                };
                links.push((dst, link));
            }
            let is_uplink_port = seg == uplink;
            let my_leaves: Vec<SegmentId> = leaves.to_vec();
            let net = self.clone();
            sim.spawn_daemon_on_lane(my_lane, my_proc, &format!("sw-{name}-{seg}"), move |ctx| {
                net.tree_switch_port_daemon(
                    ctx,
                    seg,
                    is_uplink_port,
                    &my_leaves,
                    &links,
                    uplink,
                    port_rx,
                );
            });
        }
        if any_cross {
            let mut inner = self.inner.lock();
            inner.min_cross_latency = Some(match inner.min_cross_latency {
                Some(cur) => cur.min(self.cfg.switch_latency),
                None => self.cfg.switch_latency,
            });
        }
    }

    /// Attaches a promiscuous capture port for a switch to `seg` and returns
    /// its receive queue.
    fn add_switch_port(&mut self, seg: SegmentId) -> SimChannel<Frame> {
        let port_rx = SimChannel::new();
        let mut inner = self.inner.lock();
        inner.segments[seg.0].attachments.push(Attachment {
            mac: None,
            promiscuous: true,
            groups: HashSet::new(),
            rx: port_rx.clone(),
        });
        port_rx
    }

    /// Snapshot of a segment's counters.
    pub fn segment_stats(&self, segment: SegmentId) -> SegmentStats {
        self.inner.lock().segments[segment.0].stats.clone()
    }

    /// Sum of all segment counters.
    pub fn total_stats(&self) -> SegmentStats {
        let inner = self.inner.lock();
        let mut total = SegmentStats::default();
        for s in &inner.segments {
            total.frames += s.stats.frames;
            total.wire_bytes += s.stats.wire_bytes;
            total.busy += s.stats.busy;
            total.wire_drops += s.stats.wire_drops;
            total.rx_drops += s.stats.rx_drops;
            total.down_tx_drops += s.stats.down_tx_drops;
            total.link_drops += s.stats.link_drops;
            total.dup_deliveries += s.stats.dup_deliveries;
            total.held_deliveries += s.stats.held_deliveries;
        }
        total
    }

    /// Deliveries currently held back by reorder injection, across all
    /// segments (in-flight from the conservation invariant's point of view).
    pub fn held_pending(&self) -> u64 {
        let inner = self.inner.lock();
        inner.segments.iter().map(|s| s.held.len() as u64).sum()
    }

    fn segment_daemon(&self, ctx: &Ctx, id: SegmentId) {
        // Topology is static once the run starts, so the medium rate and the
        // lane span can be cached across the daemon's lifetime.
        let (tx, ns_per_byte, multi_lane) = {
            let inner = self.inner.lock();
            let seg = &inner.segments[id.0];
            (seg.tx.clone(), seg.ns_per_byte, inner.multi_lane)
        };
        while let Some(frame) = tx.recv(ctx) {
            // A crashed sender's NIC transmits nothing: the frame vanishes
            // before it touches the medium (no busy time, no wire drop).
            if self.faults.lock().is_down(frame.src) {
                self.inner.lock().segments[id.0].stats.down_tx_drops += 1;
                ctx.trace_instant(Layer::Net, "down_drop", &[("src", u64::from(frame.src.0))]);
                continue;
            }
            let wire = SimDuration::from_nanos(frame.wire_bytes() as u64 * ns_per_byte);
            ctx.trace_emit(
                Layer::Net,
                Phase::Begin,
                "wire",
                &[
                    ("bytes", frame.wire_bytes() as u64),
                    ("src", u64::from(frame.src.0)),
                ],
            );
            ctx.sleep(wire); // the medium is busy; later frames queue behind
            ctx.trace_emit(Layer::Net, Phase::End, "wire", &[("ns", wire.as_nanos())]);
            let dropped = {
                let mut faults = self.faults.lock();
                if faults.force_drop_next > 0 {
                    assert!(
                        !multi_lane,
                        "FaultState::force_drop_next is restricted to single-lane networks: \
                         it decrements shared fault state per carried frame, which races \
                         between lanes under the windowed driver; keep every segment on one \
                         lane (LaneId::ZERO) to use it"
                    );
                    faults.force_drop_next -= 1;
                    true
                } else {
                    let mut p = faults.wire_loss_prob;
                    if let Some(ge) = faults.gilbert.as_mut() {
                        assert!(
                            !multi_lane,
                            "FaultState::gilbert (Gilbert–Elliott burst loss) is restricted \
                             to single-lane networks: the channel state advances per carried \
                             frame in shared fault state, which races between lanes under the \
                             windowed driver; keep every segment on one lane (LaneId::ZERO) \
                             to use it"
                        );
                        // The channel state advances once per frame carried
                        // on the medium.
                        let flip = if ge.bad {
                            ge.p_exit_bad
                        } else {
                            ge.p_enter_bad
                        };
                        if flip > 0.0 && ctx.rand_bool(flip) {
                            ge.bad = !ge.bad;
                        }
                        let burst = if ge.bad { ge.loss_bad } else { ge.loss_good };
                        p = p.max(burst);
                    }
                    drop(faults);
                    p > 0.0 && ctx.rand_bool(p)
                }
            };
            {
                let mut inner = self.inner.lock();
                let seg = &mut inner.segments[id.0];
                seg.stats.busy += wire;
                if dropped {
                    seg.stats.wire_drops += 1;
                } else {
                    seg.stats.frames += 1;
                    seg.stats.wire_bytes += frame.wire_bytes() as u64;
                }
            }
            if dropped {
                ctx.trace_instant(
                    Layer::Net,
                    "wire_drop",
                    &[("bytes", frame.wire_bytes() as u64)],
                );
                self.release_held(ctx, id);
                continue;
            }
            ctx.trace_instant(
                Layer::Net,
                "frame",
                &[
                    ("bytes", frame.wire_bytes() as u64),
                    ("src", u64::from(frame.src.0)),
                ],
            );
            let targets: Vec<(Option<MacAddr>, SimChannel<Frame>)> = {
                let inner = self.inner.lock();
                inner.segments[id.0]
                    .attachments
                    .iter()
                    .filter(|a| {
                        a.promiscuous
                            || match frame.dst {
                                Dest::Unicast(m) => a.mac == Some(m),
                                Dest::Multicast(g) => a.groups.contains(&g),
                                Dest::Broadcast => true,
                            }
                    })
                    .filter(|a| a.mac != Some(frame.src)) // no self-delivery
                    .map(|a| (a.mac, a.rx.clone()))
                    .collect()
            };
            let f = self.faults.lock().clone();
            // One fan-out: enqueue the frame on every reachable attachment
            // first, then commit all receiver wakes in one batch below.
            // Capture order == the old per-target send order, and only this
            // daemon runs in between, so seq assignment, perturbation tie
            // draws, and per-receiver pick order are bit-identical to
            // unbatched delivery. Fault draws stay per delivery, in the
            // same RNG order (reachability, rx-loss, reorder, dup).
            let mut wakes: Vec<PendingWake> = Vec::new();
            for (mac, target) in targets {
                // Reachability first — purely deterministic, no RNG draws.
                if let Some(m) = mac {
                    if f.is_down(m) || f.is_partitioned(frame.src, m) {
                        self.inner.lock().segments[id.0].stats.link_drops += 1;
                        ctx.trace_instant(
                            Layer::Net,
                            "link_drop",
                            &[("src", u64::from(frame.src.0)), ("dst", u64::from(m.0))],
                        );
                        continue;
                    }
                }
                if f.rx_loss_prob > 0.0 && ctx.rand_bool(f.rx_loss_prob) {
                    self.inner.lock().segments[id.0].stats.rx_drops += 1;
                    ctx.trace_instant(Layer::Net, "rx_drop", &[("src", u64::from(frame.src.0))]);
                    continue;
                }
                if f.reorder_prob > 0.0 && ctx.rand_bool(f.reorder_prob) {
                    let span = f.reorder_span.max(1);
                    let remaining = 1 + ctx.rand_range(span);
                    let mut inner = self.inner.lock();
                    let seg = &mut inner.segments[id.0];
                    seg.stats.held_deliveries += 1;
                    seg.held.push(HeldDelivery {
                        remaining,
                        rx: target,
                        dst_mac: mac,
                        frame: frame.clone(),
                    });
                    ctx.trace_instant(
                        Layer::Net,
                        "rx_held",
                        &[("src", u64::from(frame.src.0)), ("frames", remaining)],
                    );
                    continue;
                }
                ctx.trace_instant(Layer::Net, "rx", &[("src", u64::from(frame.src.0))]);
                if let Ok(Some(w)) = target.send_deferred(frame.clone()) {
                    wakes.push(w);
                }
                if f.dup_prob > 0.0 && ctx.rand_bool(f.dup_prob) {
                    self.inner.lock().segments[id.0].stats.dup_deliveries += 1;
                    ctx.trace_instant(Layer::Net, "rx_dup", &[("src", u64::from(frame.src.0))]);
                    if let Ok(Some(w)) = target.send_deferred(frame.clone()) {
                        wakes.push(w);
                    }
                }
            }
            if !wakes.is_empty() {
                ctx.commit_wakes(wakes);
            }
            self.release_held(ctx, id);
        }
    }

    /// Advances reorder hold-backs by one carried-or-dropped frame and
    /// releases the deliveries whose countdown expired (in hold order). A
    /// release re-checks reachability: a receiver that crashed or was
    /// partitioned away while the frame was held loses it.
    fn release_held(&self, ctx: &Ctx, id: SegmentId) {
        let due: Vec<HeldDelivery> = {
            let mut inner = self.inner.lock();
            let seg = &mut inner.segments[id.0];
            if seg.held.is_empty() {
                return;
            }
            for h in &mut seg.held {
                h.remaining -= 1;
            }
            let mut due = Vec::new();
            seg.held.retain_mut(|h| {
                if h.remaining == 0 {
                    due.push(HeldDelivery {
                        remaining: 0,
                        rx: h.rx.clone(),
                        dst_mac: h.dst_mac,
                        frame: h.frame.clone(),
                    });
                    false
                } else {
                    true
                }
            });
            due
        };
        let mut wakes: Vec<PendingWake> = Vec::new();
        for h in due {
            let unreachable = match h.dst_mac {
                Some(m) => {
                    let f = self.faults.lock();
                    f.is_down(m) || f.is_partitioned(h.frame.src, m)
                }
                None => false,
            };
            if unreachable {
                self.inner.lock().segments[id.0].stats.link_drops += 1;
                ctx.trace_instant(
                    Layer::Net,
                    "link_drop",
                    &[("src", u64::from(h.frame.src.0))],
                );
                continue;
            }
            ctx.trace_instant(
                Layer::Net,
                "rx_release",
                &[("src", u64::from(h.frame.src.0))],
            );
            if let Ok(Some(w)) = h.rx.send_deferred(h.frame) {
                wakes.push(w);
            }
        }
        if !wakes.is_empty() {
            ctx.commit_wakes(wakes);
        }
    }

    fn switch_port_daemon(
        &self,
        ctx: &Ctx,
        my_segment: SegmentId,
        all_segments: &[SegmentId],
        port_rx: SimChannel<Frame>,
    ) {
        while let Some(frame) = port_rx.recv(ctx) {
            let src_home = self.inner.lock().home_of(frame.src);
            // Only forward frames that originated on this port's segment;
            // anything else was injected by the switch itself.
            if src_home != Some(my_segment) {
                continue;
            }
            match frame.dst {
                Dest::Unicast(mac) => {
                    let dst_home = self.inner.lock().home_of(mac);
                    match dst_home {
                        Some(seg) if seg != my_segment => {
                            ctx.trace_cost(Layer::Net, "switch_hop", self.cfg.switch_latency);
                            ctx.sleep(self.cfg.switch_latency);
                            let tx = self.inner.lock().segments[seg.0].tx.clone();
                            let _ = tx.send(ctx, frame);
                        }
                        _ => {} // local traffic or unknown station: no forward
                    }
                }
                Dest::Multicast(_) | Dest::Broadcast => {
                    ctx.trace_cost(Layer::Net, "switch_hop", self.cfg.switch_latency);
                    ctx.sleep(self.cfg.switch_latency);
                    let txs: Vec<_> = {
                        let inner = self.inner.lock();
                        all_segments
                            .iter()
                            .filter(|s| **s != my_segment)
                            .map(|s| inner.segments[s.0].tx.clone())
                            .collect()
                    };
                    // Flood is a fan-out too: enqueue on every other
                    // segment, then wake their daemons in one batch.
                    let mut wakes: Vec<PendingWake> = Vec::new();
                    for tx in txs {
                        if let Ok(Some(w)) = tx.send_deferred(frame.clone()) {
                            wakes.push(w);
                        }
                    }
                    if !wakes.is_empty() {
                        ctx.commit_wakes(wakes);
                    }
                }
            }
        }
    }

    /// Port daemon for a cross-lane switch. Runs on the port segment's own
    /// lane; hops to same-lane segments behave like the classic switch
    /// (sleep, then enqueue), hops to other lanes ride a cross-lane link
    /// that adds the same latency without blocking this port.
    ///
    /// For floods, cross-lane sends happen first (the link stamps arrival
    /// `switch_latency` from now), then the daemon sleeps the hop latency
    /// and enqueues on same-lane segments — so every destination sees the
    /// frame at the same virtual instant the classic switch would deliver it.
    fn sharded_switch_port_daemon(
        &self,
        ctx: &Ctx,
        my_segment: SegmentId,
        links: &[(SegmentId, PortLink)],
        port_rx: SimChannel<Frame>,
    ) {
        while let Some(frame) = port_rx.recv(ctx) {
            let src_home = self.inner.lock().home_of(frame.src);
            // Only forward frames that originated on this port's segment;
            // anything else was injected by the switch itself.
            if src_home != Some(my_segment) {
                continue;
            }
            match frame.dst {
                Dest::Unicast(mac) => {
                    let dst_home = self.inner.lock().home_of(mac);
                    let Some(seg) = dst_home else { continue };
                    if seg == my_segment {
                        continue; // local traffic: no forward
                    }
                    let Some((_, link)) = links.iter().find(|(s, _)| *s == seg) else {
                        continue; // destination not behind this switch
                    };
                    ctx.trace_cost(Layer::Net, "switch_hop", self.cfg.switch_latency);
                    match link {
                        PortLink::Local(tx) => {
                            ctx.sleep(self.cfg.switch_latency);
                            let _ = tx.send(ctx, frame);
                        }
                        PortLink::Cross(x) => x.send(ctx, frame),
                    }
                }
                Dest::Multicast(_) | Dest::Broadcast => {
                    ctx.trace_cost(Layer::Net, "switch_hop", self.cfg.switch_latency);
                    let mut any_local = false;
                    for (_, link) in links {
                        if let PortLink::Cross(x) = link {
                            x.send(ctx, frame.clone());
                        } else {
                            any_local = true;
                        }
                    }
                    if any_local {
                        ctx.sleep(self.cfg.switch_latency);
                        let mut wakes: Vec<PendingWake> = Vec::new();
                        for (_, link) in links {
                            if let PortLink::Local(tx) = link {
                                if let Ok(Some(w)) = tx.send_deferred(frame.clone()) {
                                    wakes.push(w);
                                }
                            }
                        }
                        if !wakes.is_empty() {
                            ctx.commit_wakes(wakes);
                        }
                    }
                }
            }
        }
    }
    /// Port daemon of an edge switch (see [`Network::add_switch_with_uplink`]).
    /// Runs on its segment's lane; same-lane hops sleep then enqueue
    /// (classic store-and-forward), cross-lane hops ride a link that adds
    /// the same latency without blocking the port.
    #[allow(clippy::too_many_arguments)]
    fn tree_switch_port_daemon(
        &self,
        ctx: &Ctx,
        my_segment: SegmentId,
        is_uplink_port: bool,
        leaves: &[SegmentId],
        links: &[(SegmentId, PortLink)],
        uplink: SegmentId,
        port_rx: SimChannel<Frame>,
    ) {
        while let Some(frame) = port_rx.recv(ctx) {
            let Some(src) = self.inner.lock().home_of(frame.src) else {
                continue;
            };
            // Inbound gate: forward only frames whose source lives on this
            // port's side of the switch — everything else is a copy this
            // switch (or a sibling on the backbone) injected itself.
            let inbound = if is_uplink_port {
                !leaves.contains(&src)
            } else {
                src == my_segment
            };
            if !inbound {
                continue;
            }
            match frame.dst {
                Dest::Unicast(mac) => {
                    let Some(dst) = self.inner.lock().home_of(mac) else {
                        continue;
                    };
                    if dst == my_segment {
                        continue; // local traffic: no forward
                    }
                    let out = if leaves.contains(&dst) {
                        links.iter().find(|(s, _)| *s == dst)
                    } else if !is_uplink_port {
                        // Not behind this switch: route toward the backbone.
                        links.iter().find(|(s, _)| *s == uplink)
                    } else {
                        None // backbone-side destination already saw it there
                    };
                    let Some((_, link)) = out else { continue };
                    ctx.trace_cost(Layer::Net, "switch_hop", self.cfg.switch_latency);
                    match link {
                        PortLink::Local(tx) => {
                            ctx.sleep(self.cfg.switch_latency);
                            let _ = tx.send(ctx, frame);
                        }
                        PortLink::Cross(x) => x.send(ctx, frame.clone()),
                    }
                }
                Dest::Multicast(g) => {
                    self.tree_flood(ctx, &frame, links, leaves, uplink, is_uplink_port, Some(g));
                }
                Dest::Broadcast => {
                    self.tree_flood(ctx, &frame, links, leaves, uplink, is_uplink_port, None);
                }
            }
        }
    }

    /// Floods a frame out of an edge-switch port, pruning multicast to the
    /// ports that actually lead to members. Cross-lane sends go first (the
    /// link stamps arrival `switch_latency` from now), then the port sleeps
    /// the hop latency and enqueues on same-lane segments in one batch.
    #[allow(clippy::too_many_arguments)]
    fn tree_flood(
        &self,
        ctx: &Ctx,
        frame: &Frame,
        links: &[(SegmentId, PortLink)],
        leaves: &[SegmentId],
        uplink: SegmentId,
        is_uplink_port: bool,
        group: Option<McastAddr>,
    ) {
        let targets: Vec<&PortLink> = {
            let inner = self.inner.lock();
            links
                .iter()
                .filter(|(s, _)| match group {
                    None => true,
                    Some(g) if *s == uplink && !is_uplink_port => {
                        // Up the tree only if members exist beyond our leaves.
                        let under: u32 = leaves
                            .iter()
                            .map(|l| {
                                inner.segments[l.0]
                                    .mcast_members
                                    .get(&g)
                                    .copied()
                                    .unwrap_or(0)
                            })
                            .sum();
                        inner.mcast_total.get(&g).copied().unwrap_or(0) > under
                    }
                    Some(g) => {
                        inner.segments[s.0]
                            .mcast_members
                            .get(&g)
                            .copied()
                            .unwrap_or(0)
                            > 0
                    }
                })
                .map(|(_, l)| l)
                .collect()
        };
        if targets.is_empty() {
            return;
        }
        ctx.trace_cost(Layer::Net, "switch_hop", self.cfg.switch_latency);
        let mut any_local = false;
        for link in &targets {
            if let PortLink::Cross(x) = link {
                x.send(ctx, frame.clone());
            } else {
                any_local = true;
            }
        }
        if any_local {
            ctx.sleep(self.cfg.switch_latency);
            let mut wakes: Vec<PendingWake> = Vec::new();
            for link in &targets {
                if let PortLink::Local(tx) = link {
                    if let Ok(Some(w)) = tx.send_deferred(frame.clone()) {
                        wakes.push(w);
                    }
                }
            }
            if !wakes.is_empty() {
                ctx.commit_wakes(wakes);
            }
        }
    }
}

/// One forwarding edge of a cross-lane switch port.
enum PortLink {
    /// Destination segment lives on the same lane: enqueue directly on its
    /// medium after sleeping the hop latency (classic semantics).
    Local(SimChannel<Frame>),
    /// Destination segment lives on another lane: a cross-lane link carries
    /// the frame with the hop latency as its delay.
    Cross(XSender<Frame>),
}

/// A station's network interface.
///
/// Cloning yields another handle to the same NIC (same receive queue).
#[derive(Clone)]
pub struct Nic {
    mac: MacAddr,
    segment: SegmentId,
    tx: SimChannel<Frame>,
    rx: SimChannel<Frame>,
    net: Arc<Mutex<NetInner>>,
}

impl fmt::Debug for Nic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Nic")
            .field("mac", &self.mac)
            .field("segment", &self.segment)
            .finish()
    }
}

impl Nic {
    /// This station's address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The segment this NIC is attached to.
    pub fn segment(&self) -> SegmentId {
        self.segment
    }

    /// Queues a payload for transmission. Returns once the frame is handed
    /// to the NIC (transmission proceeds asynchronously on the medium).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the MTU (see [`Frame::new`]).
    pub fn send(&self, ctx: &Ctx, dst: Dest, payload: Bytes) {
        let frame = Frame::new(self.mac, dst, payload);
        ctx.trace_instant(
            Layer::Net,
            "tx",
            &[
                ("bytes", frame.wire_bytes() as u64),
                ("src", u64::from(self.mac.0)),
            ],
        );
        let _ = self.tx.send(ctx, frame);
    }

    /// The receive queue: frames addressed to this station, its groups, or
    /// broadcast.
    pub fn rx(&self) -> &SimChannel<Frame> {
        &self.rx
    }

    /// Subscribes this NIC to a hardware multicast group.
    pub fn join_group(&self, group: McastAddr) {
        let mut inner = self.net.lock();
        let mut joined = false;
        {
            let seg = &mut inner.segments[self.segment.0];
            for a in &mut seg.attachments {
                if a.mac == Some(self.mac) {
                    joined |= a.groups.insert(group);
                }
            }
            if joined {
                *seg.mcast_members.entry(group).or_insert(0) += 1;
            }
        }
        if joined {
            *inner.mcast_total.entry(group).or_insert(0) += 1;
        }
    }

    /// Unsubscribes this NIC from a multicast group.
    pub fn leave_group(&self, group: McastAddr) {
        let mut inner = self.net.lock();
        let mut left = false;
        {
            let seg = &mut inner.segments[self.segment.0];
            for a in &mut seg.attachments {
                if a.mac == Some(self.mac) {
                    left |= a.groups.remove(&group);
                }
            }
            if left {
                if let Some(n) = seg.mcast_members.get_mut(&group) {
                    *n = n.saturating_sub(1);
                }
            }
        }
        if left {
            if let Some(n) = inner.mcast_total.get_mut(&group) {
                *n = n.saturating_sub(1);
            }
        }
    }
}
