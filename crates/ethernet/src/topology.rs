//! Deterministic hierarchical topology builder.
//!
//! One [`TopologySpec`] describes a whole pool — how many stations, how many
//! per leaf segment, how leaves aggregate behind edge switches and a
//! backbone, and how many scheduler lanes the segments spread over — and
//! [`TopologySpec::build`] realizes it on a [`Network`]. Placement is a pure
//! function of the spec: machine numbering, segment assignment, and lane
//! assignment never depend on the execution backend or the shard count, so
//! one spec produces bit-identical runs under any runner configuration (the
//! shard count only decides how many OS threads drive the fixed lane set).
//!
//! Three shapes fall out of one spec:
//!
//! - **single segment** (one leaf, no switch) — the classic 32-machine test
//!   world;
//! - **flat switch** (every leaf behind one [`Network::add_switch`]) — the
//!   paper's processor pool;
//! - **two-level tree** (leaves chunked behind edge switches sharing a
//!   backbone segment, see [`Network::add_switch_with_uplink`]) — the
//!   scale-out shape, where the first [`TopologySpec::backbone_stations`]
//!   machines (servers) attach directly to the backbone and the rest
//!   (clients) fill the leaves.
//!
//! The first two shapes are built through exactly the same calls the
//! hand-rolled harnesses used to make, so existing golden traces and result
//! hashes are byte-identical through the builder.

use desim::{LaneId, Simulation};

use crate::network::{Network, SegmentId};

/// Declarative description of a pool topology. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    /// Total stations (MACs `0..machines`).
    pub machines: u32,
    /// Stations per leaf segment (the paper's pool wires 8).
    pub per_segment: u32,
    /// How many of the first machines attach directly to the backbone
    /// segment instead of a leaf (servers on the core switch). Non-zero
    /// forces the tree shape.
    pub backbone_stations: u32,
    /// Leaf segments per edge switch. More leaves than this forces the tree
    /// shape; fewer build the classic flat switch.
    pub segments_per_switch: u32,
    /// Scheduler lanes leaf segments round-robin over (`1` keeps everything
    /// on the root lane; the backbone always lives on the root lane).
    pub lanes: u32,
    /// Bandwidth of the backbone segment, when the tree shape applies
    /// (`None` keeps the network's default — rarely wise: every
    /// cross-switch frame crosses the backbone).
    pub backbone_bandwidth_bps: Option<u64>,
}

impl TopologySpec {
    /// The flat pool the paper-scale harnesses build: leaves of
    /// `per_segment` stations behind (at most) one switch, single lane.
    pub fn flat(machines: u32, per_segment: u32) -> Self {
        TopologySpec {
            machines,
            per_segment,
            backbone_stations: 0,
            segments_per_switch: u32::MAX,
            lanes: 1,
            backbone_bandwidth_bps: None,
        }
    }

    /// Number of leaf segments the spec produces (at least one unless every
    /// station sits on the backbone).
    pub fn n_leaves(&self) -> u32 {
        let leaf_stations = self.machines - self.backbone_stations;
        if leaf_stations == 0 && self.backbone_stations > 0 {
            0
        } else {
            leaf_stations.div_ceil(self.per_segment).max(1)
        }
    }

    /// Whether the spec realizes as a two-level tree (backbone + edge
    /// switches) rather than a flat switch.
    pub fn is_tree(&self) -> bool {
        self.backbone_stations > 0 || self.n_leaves() > self.segments_per_switch
    }

    /// Upper bound on the stations any single scheduler lane hosts: the
    /// busiest lane is the root lane, which carries every backbone station
    /// plus its round-robin share of the leaves. Used as a capacity hint
    /// for per-lane event-queue sizing
    /// ([`Simulation::builder`](desim::Simulation::builder)'s
    /// `expected_threads`); purely a performance hint, never semantic.
    pub fn max_machines_per_lane(&self) -> u32 {
        let leaf_share = self.n_leaves().div_ceil(self.lanes.max(1)) * self.per_segment;
        self.backbone_stations + leaf_share.min(self.machines - self.backbone_stations)
    }

    /// Realizes the spec on `net`: adds lanes, segments, and switches, and
    /// returns the placement map. `name` names the flat switch (the
    /// harnesses' historical `"pool"`) or prefixes the edge switches.
    ///
    /// Stations are *not* attached here — callers boot machines with
    /// [`Topology::segment_of`] / [`Topology::lane_of`] so the network
    /// crate stays protocol-agnostic.
    pub fn build(&self, sim: &mut Simulation, net: &mut Network, name: &str) -> Topology {
        assert!(self.per_segment > 0, "per_segment must be positive");
        assert!(self.lanes >= 1, "at least one lane");
        assert!(
            self.segments_per_switch > 0,
            "segments_per_switch must be positive"
        );
        assert!(
            self.backbone_stations <= self.machines,
            "more backbone stations than machines"
        );
        let mut lanes = vec![LaneId::ZERO];
        for _ in 1..self.lanes {
            lanes.push(sim.add_lane());
        }
        let n_leaves = self.n_leaves();
        let leaf_segments: Vec<SegmentId> = (0..n_leaves)
            .map(|s| net.add_segment_on(sim, &format!("seg{s}"), lanes[(s as usize) % lanes.len()]))
            .collect();
        let backbone = if self.is_tree() {
            Some(match self.backbone_bandwidth_bps {
                Some(bw) => net.add_segment_on_with_bandwidth(sim, "backbone", LaneId::ZERO, bw),
                None => net.add_segment_on(sim, "backbone", LaneId::ZERO),
            })
        } else {
            None
        };
        if let Some(bb) = backbone {
            for (e, chunk) in leaf_segments
                .chunks(self.segments_per_switch as usize)
                .enumerate()
            {
                net.add_switch_with_uplink(sim, chunk, bb, &format!("{name}{e}"));
            }
        } else if leaf_segments.len() > 1 {
            net.add_switch(sim, &leaf_segments, name);
        }
        Topology {
            lanes,
            leaf_segments,
            backbone,
            spec: self.clone(),
        }
    }
}

/// A realized [`TopologySpec`]: the lanes and segments it created, plus the
/// machine→segment→lane placement map.
#[derive(Debug, Clone)]
pub struct Topology {
    lanes: Vec<LaneId>,
    leaf_segments: Vec<SegmentId>,
    backbone: Option<SegmentId>,
    spec: TopologySpec,
}

impl Topology {
    /// The spec this topology was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// The scheduler lanes, root lane first (`lanes[i]` hosts the leaf
    /// segments with index ≡ i mod lanes).
    pub fn lanes(&self) -> &[LaneId] {
        &self.lanes
    }

    /// The leaf segments in index order.
    pub fn leaf_segments(&self) -> &[SegmentId] {
        &self.leaf_segments
    }

    /// The backbone segment (tree shape only).
    pub fn backbone(&self) -> Option<SegmentId> {
        self.backbone
    }

    /// The leaf index machine `m` lives on (`None` for backbone stations).
    fn leaf_index_of(&self, machine: u32) -> Option<usize> {
        if machine < self.spec.backbone_stations {
            None
        } else {
            Some(((machine - self.spec.backbone_stations) / self.spec.per_segment) as usize)
        }
    }

    /// Home segment of machine `m`: the backbone for the first
    /// `backbone_stations` machines, then leaves filled `per_segment` at a
    /// time in machine order.
    pub fn segment_of(&self, machine: u32) -> SegmentId {
        assert!(
            machine < self.spec.machines,
            "machine {machine} out of range"
        );
        match self.leaf_index_of(machine) {
            None => self.backbone.expect("backbone stations imply a backbone"),
            Some(leaf) => self.leaf_segments[leaf],
        }
    }

    /// Scheduler lane of machine `m`'s home segment (machines must run on
    /// their segment's lane).
    pub fn lane_of(&self, machine: u32) -> LaneId {
        assert!(
            machine < self.spec.machines,
            "machine {machine} out of range"
        );
        match self.leaf_index_of(machine) {
            None => LaneId::ZERO,
            Some(leaf) => self.lanes[leaf % self.lanes.len()],
        }
    }
}
