//! # ethernet — simulated shared-medium Ethernet
//!
//! Models the network of the paper's processor pool: 10 Mbit/s half-duplex
//! Ethernet segments with hardware multicast, eight stations per segment,
//! joined by a store-and-forward [`Network::add_switch`]. Transmissions on a
//! segment are serialized at wire speed, so saturation behaviour (the flat
//! speedup curves of Table 3 at ≥16 processors) emerges naturally.
//!
//! Fault injection ([`Network::faults`]) can drop frames on the wire or at
//! individual receivers, which the FLIP/Panda layers above must recover from.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod frame;
mod network;
mod topology;

pub use frame::{
    Dest, Frame, MacAddr, McastAddr, FRAME_OVERHEAD_BYTES, MAX_PAYLOAD_BYTES, MIN_PAYLOAD_BYTES,
};
pub use network::{FaultState, GilbertElliott, NetConfig, Network, Nic, SegmentId, SegmentStats};
pub use topology::{Topology, TopologySpec};
