//! Ethernet frames and addressing.

use std::fmt;

use bytes::Bytes;

/// A station (NIC) address on the simulated Ethernet.
///
/// Stations are numbered densely from zero; the value doubles as an index
/// into address tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub u32);

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mac:{:02x}", self.0)
    }
}

/// A hardware multicast group address.
///
/// The 10 Mbit/s Ethernet of the paper's processor pool provides multicast in
/// hardware, which is why the paper's multicast latencies are nearly equal to
/// unicast (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct McastAddr(pub u32);

impl fmt::Display for McastAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mcast:{:02x}", self.0)
    }
}

/// The destination of an Ethernet frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// A single station.
    Unicast(MacAddr),
    /// All stations subscribed to the group.
    Multicast(McastAddr),
    /// Every station.
    Broadcast,
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dest::Unicast(m) => write!(f, "{m}"),
            Dest::Multicast(g) => write!(f, "{g}"),
            Dest::Broadcast => write!(f, "broadcast"),
        }
    }
}

/// Fixed per-frame wire overhead in bytes: preamble + SFD (8), MAC header
/// (14), frame check sequence (4), and inter-frame gap (12).
pub const FRAME_OVERHEAD_BYTES: usize = 38;

/// Maximum Ethernet payload (the MTU the paper's FLIP fragments to).
pub const MAX_PAYLOAD_BYTES: usize = 1500;

/// Minimum Ethernet payload; shorter payloads are padded on the wire.
pub const MIN_PAYLOAD_BYTES: usize = 46;

/// An Ethernet frame in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending station.
    pub src: MacAddr,
    /// Destination station, group, or broadcast.
    pub dst: Dest,
    /// Payload carried by the frame (at most [`MAX_PAYLOAD_BYTES`]).
    pub payload: Bytes,
}

impl Frame {
    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD_BYTES`].
    pub fn new(src: MacAddr, dst: Dest, payload: Bytes) -> Self {
        assert!(
            payload.len() <= MAX_PAYLOAD_BYTES,
            "frame payload {} exceeds the {MAX_PAYLOAD_BYTES}-byte MTU",
            payload.len()
        );
        Frame { src, dst, payload }
    }

    /// Bytes this frame occupies on the wire, including framing overhead and
    /// minimum-payload padding.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len().max(MIN_PAYLOAD_BYTES) + FRAME_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_pads_short_frames() {
        let f = Frame::new(MacAddr(0), Dest::Broadcast, Bytes::from_static(b"hi"));
        assert_eq!(f.wire_bytes(), MIN_PAYLOAD_BYTES + FRAME_OVERHEAD_BYTES);
    }

    #[test]
    fn wire_bytes_counts_payload_and_overhead() {
        let f = Frame::new(
            MacAddr(1),
            Dest::Unicast(MacAddr(2)),
            Bytes::from(vec![0u8; 1000]),
        );
        assert_eq!(f.wire_bytes(), 1000 + FRAME_OVERHEAD_BYTES);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_rejected() {
        let _ = Frame::new(
            MacAddr(0),
            Dest::Broadcast,
            Bytes::from(vec![0u8; MAX_PAYLOAD_BYTES + 1]),
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", MacAddr(3)), "mac:03");
        assert_eq!(format!("{}", Dest::Multicast(McastAddr(7))), "mcast:07");
        assert_eq!(format!("{}", Dest::Broadcast), "broadcast");
    }
}
