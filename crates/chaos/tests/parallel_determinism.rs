//! The parallel sweep contract: any `--jobs` value produces bit-identical
//! results. A sweep on 8 workers must return the same [`ExploreSummary`] —
//! pass counts, failures, minimized plans, and every per-seed trace hash —
//! as the serial sweep, even on a single-core host (where the pool still
//! runs 8 OS threads and real interleavings).

use chaos::explore::{explore, minimize_jobs, ExploreOptions};
use chaos::{ChaosConfig, Stack};
use desim::SimDuration;

fn small_sweep(jobs: usize) -> chaos::explore::ExploreSummary {
    let opts = ExploreOptions {
        stacks: vec![Stack::Kernel, Stack::User],
        seeds: 12,
        seed_start: 0,
        rpcs: 6,
        broadcasts: 4,
        max_virtual: SimDuration::from_millis(500),
        verify_every: 4,
        minimize: true,
        verbose: false,
        jobs,
    };
    explore(&opts)
}

#[test]
fn jobs8_sweep_is_bit_identical_to_serial() {
    let serial = small_sweep(1);
    let parallel = small_sweep(8);
    assert_eq!(serial.runs, 24);
    assert_eq!(
        serial.seed_hashes.len(),
        24,
        "every run records a trace hash"
    );
    assert_eq!(serial, parallel);
}

#[test]
fn auto_jobs_sweep_is_bit_identical_to_serial() {
    let serial = small_sweep(1);
    let auto = small_sweep(0);
    assert_eq!(serial, auto);
}

#[test]
fn broadcast_heavy_sweep_is_bit_identical_across_jobs() {
    // Broadcast-dominated traffic drives the batched fan-out delivery path
    // (one enqueue pass over every group member, deferred wake commit) far
    // harder than the standard sweep mix — re-pins the jobs-independence
    // contract specifically against the batching rewrite.
    let sweep = |jobs: usize| {
        let opts = ExploreOptions {
            stacks: vec![Stack::Kernel, Stack::User],
            seeds: 6,
            seed_start: 100,
            rpcs: 2,
            broadcasts: 12,
            max_virtual: SimDuration::from_millis(500),
            verify_every: 3,
            minimize: true,
            verbose: false,
            jobs,
        };
        explore(&opts)
    };
    let serial = sweep(1);
    let parallel = sweep(8);
    assert_eq!(serial.runs, 12);
    assert_eq!(serial, parallel);
}

#[test]
fn parallel_minimizer_matches_serial() {
    // Minimization only runs on failing seeds, which a healthy tree does
    // not have — so exercise the minimizer directly on generated plans and
    // assert the parallel candidate evaluation adopts the same plan as the
    // serial early-exit loop. (On a passing config both immediately return
    // the original plan, which still pins the jobs-independence contract.)
    for seed in [3u64, 11, 42] {
        let cfg = ChaosConfig::for_seed(Stack::User, seed, 4, 3, SimDuration::from_millis(500));
        assert_eq!(
            minimize_jobs(&cfg, 1),
            minimize_jobs(&cfg, 8),
            "seed {seed}: minimizer result must not depend on jobs"
        );
    }
}
