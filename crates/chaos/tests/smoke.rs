//! Engine smoke tests: a null plan must pass all invariants on both stacks,
//! and single-ingredient plans must complete.

use chaos::{run_chaos, ChaosConfig, FaultPlan, Stack};
use desim::SimDuration;

fn base(stack: Stack, plan: FaultPlan) -> ChaosConfig {
    ChaosConfig {
        stack,
        seed: 7,
        rpcs: 10,
        broadcasts: 8,
        max_virtual: SimDuration::from_millis(500),
        plan,
    }
}

#[test]
fn null_plan_passes_kernel() {
    let out = run_chaos(&base(Stack::Kernel, FaultPlan::default()));
    assert_eq!(out.violations, Vec::<String>::new());
    assert_eq!(out.rpc_ok, 10);
}

#[test]
fn null_plan_passes_user() {
    let out = run_chaos(&base(Stack::User, FaultPlan::default()));
    assert_eq!(out.violations, Vec::<String>::new());
    assert_eq!(out.rpc_ok, 10);
}

#[test]
fn loss_only_plan_completes_user() {
    let plan = FaultPlan {
        rx_loss_prob: 0.08,
        ..FaultPlan::default()
    };
    let out = run_chaos(&base(Stack::User, plan));
    assert_eq!(out.violations, Vec::<String>::new());
}

#[test]
fn perturb_only_plan_completes_user() {
    let plan = FaultPlan {
        sched_perturb: Some(42),
        ..FaultPlan::default()
    };
    let out = run_chaos(&base(Stack::User, plan));
    assert_eq!(out.violations, Vec::<String>::new());
}
