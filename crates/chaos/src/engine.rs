//! One chaos run: boot a stack, drive a mixed RPC/broadcast workload under
//! a fault plan, collect artifacts, check invariants, hash the trace.
//!
//! The workload is fixed and deterministic: node 0 runs an RPC client
//! against an echo server on node 1 and interleaves group broadcasts; node 2
//! broadcasts concurrently (two concurrent senders make the total-order
//! check meaningful). Group payloads carry a `sender << 32 | index` tag so
//! every member's delivery sequence can be compared exactly; RPC payloads
//! carry the call id so executions can be tallied per call.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use bytes::Bytes;
use desim::trace::Layer;
use desim::{SimDuration, Simulation};
use panda::PandaConfig;

use crate::invariants::{self, RpcOutcome, RunArtifacts};
use crate::plan::{FaultPlan, TimedKind};
use crate::testutil::{self, Stack};

/// Number of app nodes in every chaos world.
pub const N_NODES: u32 = 3;

/// Everything that defines one chaos run. Same config → same outcome,
/// bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Which stack to run.
    pub stack: Stack,
    /// Simulation seed (also the default fault-plan seed).
    pub seed: u64,
    /// RPCs issued by node 0 against node 1.
    pub rpcs: u64,
    /// Broadcasts issued by node 2 (node 0 adds one per 4 RPCs).
    pub broadcasts: u64,
    /// Virtual-time budget; exceeding it is an invariant violation (a
    /// recovery mechanism failed to converge).
    pub max_virtual: SimDuration,
    /// The fault plan to run under.
    pub plan: FaultPlan,
}

impl ChaosConfig {
    /// The standard sweep configuration: the plan is generated from `seed`,
    /// with every fault — timed windows and probabilistic knobs alike —
    /// confined to the first 40% of `max_virtual` (the fault horizon); the
    /// remaining 60% is clean network time in which recovery must converge.
    pub fn for_seed(
        stack: Stack,
        seed: u64,
        rpcs: u64,
        broadcasts: u64,
        max_virtual: SimDuration,
    ) -> Self {
        let horizon = SimDuration::from_nanos(max_virtual.as_nanos() * 2 / 5);
        let n_machines = stack.n_machines(N_NODES);
        ChaosConfig {
            stack,
            seed,
            rpcs,
            broadcasts,
            max_virtual,
            plan: FaultPlan::generate(seed, n_machines, horizon),
        }
    }

    /// Broadcasts node 0 interleaves into its RPC loop.
    pub fn node0_broadcasts(&self) -> u64 {
        self.rpcs / 4
    }

    /// The Panda tuning used for chaos runs: timeouts tightened so recovery
    /// converges well inside the virtual-time budget, retry budgets widened
    /// so no send gives up while a fault window (≤ 40% of the budget) heals.
    pub fn panda_config(&self) -> PandaConfig {
        PandaConfig {
            rpc_timeout: SimDuration::from_millis(5),
            rpc_retries: 24,
            group_send_timeout: SimDuration::from_millis(10),
            group_send_retries: 24,
            ack_delay: SimDuration::from_millis(2),
            group_resync_interval: SimDuration::from_millis(40),
            group_status_interval: 8,
            kernel_group_resync_interval: SimDuration::from_millis(40),
            ..PandaConfig::default()
        }
    }
}

/// The result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// FNV-1a hash over the run's deterministic aggregates (sorted trace
    /// counters, final virtual time, event count, per-member deliveries,
    /// RPC outcomes, network stats). Same seed → same hash.
    pub trace_hash: u64,
    /// Invariant violations; empty means the run passed.
    pub violations: Vec<String>,
    /// Final virtual time, nanoseconds.
    pub final_time_ns: u64,
    /// Scheduler wake events processed.
    pub events: u64,
    /// RPC calls that returned a correct echo.
    pub rpc_ok: u64,
    /// RPC calls that returned an error or a corrupt reply.
    pub rpc_bad: u64,
    /// Successful group sends (both senders).
    pub bcast_ok: u64,
    /// Failed group sends.
    pub bcast_bad: u64,
    /// Total recovery traffic (retransmissions, retransmission requests,
    /// duplicate suppressions) observed in the trace counters.
    pub recovery_traffic: u64,
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
    fn str(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
        self.u64(s.len() as u64);
    }
}

/// Runs one chaos configuration to completion and checks every invariant.
/// Panics inside the simulation (a protocol assertion tripping under
/// faults) are caught and reported as violations, so a sweep survives them.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    match catch_unwind(AssertUnwindSafe(|| run_chaos_inner(cfg))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic".to_owned()
            };
            ChaosOutcome {
                trace_hash: 0,
                violations: vec![format!("panic during run: {msg}")],
                final_time_ns: 0,
                events: 0,
                rpc_ok: 0,
                rpc_bad: 0,
                bcast_ok: 0,
                bcast_bad: 0,
                recovery_traffic: 0,
            }
        }
    }
}

fn run_chaos_inner(cfg: &ChaosConfig) -> ChaosOutcome {
    let mut sim = Simulation::new(cfg.seed);
    if let Some(ps) = cfg.plan.sched_perturb {
        sim.set_schedule_perturbation(ps);
    }
    sim.enable_tracing_with_capacity(1 << 15);
    sim.set_max_events(5_000_000);

    let world = testutil::boot_machines(&mut sim, cfg.stack.n_machines(N_NODES));
    let net = world.net.clone();
    cfg.plan.apply_static(&mut net.faults().lock());
    let nodes = testutil::build_stack(&mut sim, &world.machines, cfg.stack, &cfg.panda_config());

    // --- timed fault driver -------------------------------------------------
    enum Action {
        Apply(TimedKind),
        Undo(TimedKind),
        /// Horizon end: zero the probabilistic knobs so the rest of the
        /// budget is clean convergence time.
        ClearAmbient,
    }
    let mut actions: Vec<(SimDuration, Action)> = Vec::new();
    for t in &cfg.plan.timed {
        actions.push((t.at, Action::Apply(t.kind)));
        actions.push((t.until, Action::Undo(t.kind)));
    }
    if cfg.plan.has_ambient() {
        let horizon = SimDuration::from_nanos(cfg.max_virtual.as_nanos() * 2 / 5);
        actions.push((horizon, Action::ClearAmbient));
    }
    actions.sort_by_key(|(at, _)| *at);
    if !actions.is_empty() {
        let proc = sim.add_processor("chaos-driver");
        let net2 = net.clone();
        sim.spawn(proc, "chaos-driver", move |ctx| {
            let mut elapsed = SimDuration::ZERO;
            for (at, action) in actions {
                ctx.sleep(at.saturating_sub(elapsed));
                elapsed = at.max(elapsed);
                let faults = net2.faults();
                let mut f = faults.lock();
                match action {
                    Action::Apply(TimedKind::Partition(a, b)) => f.partition(a, b),
                    Action::Undo(TimedKind::Partition(a, b)) => f.heal(a, b),
                    Action::Apply(TimedKind::Crash(m)) => f.crash(m),
                    Action::Undo(TimedKind::Crash(m)) => f.reboot(m),
                    Action::ClearAmbient => FaultPlan::clear_ambient(&mut f),
                }
            }
        });
    }

    // --- instrumentation ----------------------------------------------------
    let executions: Arc<StdMutex<HashMap<u64, u64>>> = Arc::new(StdMutex::new(HashMap::new()));
    let exec2 = Arc::clone(&executions);
    let replier = Arc::clone(&nodes[1]);
    nodes[1].set_rpc_handler(Arc::new(move |ctx, _from, req, ticket| {
        let id = u64::from_be_bytes(req[..8].try_into().expect("tagged request"));
        *exec2.lock().unwrap().entry(id).or_insert(0) += 1;
        replier.reply(ctx, ticket, req);
    }));
    let deliveries: Arc<Vec<StdMutex<Vec<u64>>>> = Arc::new(
        (0..nodes.len())
            .map(|_| StdMutex::new(Vec::new()))
            .collect(),
    );
    for (i, n) in nodes.iter().enumerate() {
        let deliveries = Arc::clone(&deliveries);
        n.set_group_handler(Arc::new(move |_ctx, d| {
            let tag = u64::from_be_bytes(d.payload[..8].try_into().expect("tagged payload"));
            deliveries[i].lock().unwrap().push(tag);
        }));
        if i != 1 {
            n.set_rpc_handler(Arc::new(|_, _, _, _| {}));
        }
    }

    // --- workload -----------------------------------------------------------
    let rpc_outcomes: Arc<StdMutex<Vec<RpcOutcome>>> = Arc::new(StdMutex::new(Vec::new()));
    let send_failures: Arc<StdMutex<Vec<String>>> = Arc::new(StdMutex::new(Vec::new()));
    let bcast_ok = Arc::new(StdMutex::new(0u64));

    let client = Arc::clone(&nodes[0]);
    let outcomes2 = Arc::clone(&rpc_outcomes);
    let failures2 = Arc::clone(&send_failures);
    let bcast_ok2 = Arc::clone(&bcast_ok);
    let rpcs = cfg.rpcs;
    sim.spawn(world.machines[0].proc(), "chaos-client", move |ctx| {
        let mut b0 = 0u64;
        for i in 0..rpcs {
            // Vary the payload size deterministically so fragmentation and
            // piggybacking paths both run.
            let len = 8 + (i as usize * 37) % 192;
            let mut body = vec![0x5au8; len];
            body[..8].copy_from_slice(&i.to_be_bytes());
            let body = Bytes::from(body);
            let outcome = match client.rpc(ctx, 1, body.clone()) {
                Ok(reply) if reply == body => RpcOutcome::Ok,
                Ok(_) => RpcOutcome::CorruptReply,
                Err(e) => {
                    failures2.lock().unwrap().push(format!("rpc {i}: {e:?}"));
                    RpcOutcome::Failed
                }
            };
            outcomes2.lock().unwrap().push(outcome);
            if i % 4 == 3 {
                let mut payload = vec![0x0au8; 120];
                payload[..8].copy_from_slice(&b0.to_be_bytes());
                b0 += 1;
                match client.group_send(ctx, Bytes::from(payload)) {
                    Ok(()) => *bcast_ok2.lock().unwrap() += 1,
                    Err(e) => failures2
                        .lock()
                        .unwrap()
                        .push(format!("node0 broadcast {}: {e:?}", b0 - 1)),
                }
            }
        }
    });
    let caster = Arc::clone(&nodes[2]);
    let failures3 = Arc::clone(&send_failures);
    let bcast_ok3 = Arc::clone(&bcast_ok);
    let broadcasts = cfg.broadcasts;
    sim.spawn(world.machines[2].proc(), "chaos-caster", move |ctx| {
        for j in 0..broadcasts {
            // Sender 2's tags live in the upper half of the tag space.
            let tag = (2u64 << 32) | j;
            let len = 64 + (j as usize * 53) % 700;
            let mut payload = vec![0xa5u8; len];
            payload[..8].copy_from_slice(&tag.to_be_bytes());
            match caster.group_send(ctx, Bytes::from(payload)) {
                Ok(()) => *bcast_ok3.lock().unwrap() += 1,
                Err(e) => failures3
                    .lock()
                    .unwrap()
                    .push(format!("node2 broadcast {j}: {e:?}")),
            }
        }
    });

    let sim_result = sim.run();

    // --- artifacts ----------------------------------------------------------
    // Take the faults lock once up front: two `.lock()` temporaries as
    // sibling struct-literal fields would both live to the end of the
    // literal and self-deadlock.
    let (partitions_left, downs_left) = {
        let faults = net.faults();
        let f = faults.lock();
        (f.partition_count(), f.down_count())
    };
    let art = RunArtifacts {
        executions: executions.lock().unwrap().clone(),
        rpc_outcomes: rpc_outcomes.lock().unwrap().clone(),
        send_failures: send_failures.lock().unwrap().clone(),
        deliveries: deliveries
            .iter()
            .map(|m| m.lock().unwrap().clone())
            .collect(),
        counters: sim.trace_counters(),
        events: sim.trace_events(),
        stats: net.total_stats(),
        held_pending: net.held_pending(),
        partitions_left,
        downs_left,
        expected_rpcs: cfg.rpcs,
        expected_sender0: cfg.node0_broadcasts(),
        expected_sender2: cfg.broadcasts,
        plan_is_null: cfg.plan.is_null(),
        max_virtual: cfg.max_virtual,
        sim_result: sim_result.clone(),
    };
    let violations = invariants::check(&art);

    // Debugging aid: CHAOS_DUMP=<layer|all> prints the run's trace events.
    if let Ok(filter) = std::env::var("CHAOS_DUMP") {
        for e in &art.events {
            let layer = e.layer.to_string();
            if filter == "all" || layer.eq_ignore_ascii_case(&filter) {
                println!(
                    "{:>12} ns  {:<10} {:<6} {:<16} {:?}",
                    e.time.duration_since(desim::SimTime::ZERO).as_nanos(),
                    e.proc.to_string(),
                    layer,
                    e.name,
                    e.args
                );
            }
        }
    }

    // --- trace hash ---------------------------------------------------------
    let mut h = Fnv::new();
    for c in &art.counters {
        h.str(&c.proc.to_string());
        h.str(&c.layer.to_string());
        h.str(c.name);
        h.u64(c.count);
        h.u64(c.total);
    }
    let report = sim.report();
    h.u64(
        report
            .final_time
            .duration_since(desim::SimTime::ZERO)
            .as_nanos(),
    );
    h.u64(report.events);
    for d in &art.deliveries {
        h.u64(d.len() as u64);
        for tag in d {
            h.u64(*tag);
        }
    }
    for o in &art.rpc_outcomes {
        h.u64(*o as u64);
    }
    h.u64(art.stats.frames);
    h.u64(art.stats.wire_bytes);
    h.u64(art.stats.wire_drops);
    h.u64(art.stats.rx_drops);
    h.u64(art.stats.down_tx_drops);
    h.u64(art.stats.link_drops);
    h.u64(art.stats.dup_deliveries);
    h.u64(art.stats.held_deliveries);

    let counter = |layer: Layer, name: &str| -> u64 {
        art.counters
            .iter()
            .filter(|c| c.layer == layer && c.name == name)
            .map(|c| c.count)
            .sum()
    };
    let rpc_ok = art
        .rpc_outcomes
        .iter()
        .filter(|o| **o == RpcOutcome::Ok)
        .count() as u64;
    let bcasts_ok = *bcast_ok.lock().unwrap();
    ChaosOutcome {
        trace_hash: h.0,
        violations,
        final_time_ns: report
            .final_time
            .duration_since(desim::SimTime::ZERO)
            .as_nanos(),
        events: report.events,
        rpc_ok,
        rpc_bad: art.rpc_outcomes.len() as u64 - rpc_ok,
        bcast_ok: bcasts_ok,
        bcast_bad: (cfg.node0_broadcasts() + cfg.broadcasts).saturating_sub(bcasts_ok),
        recovery_traffic: counter(Layer::Rpc, "retransmit")
            + counter(Layer::Rpc, "dup_suppressed")
            + counter(Layer::Group, "retransmit")
            + counter(Layer::Group, "retrans_req_tx")
            + counter(Layer::Group, "retrans_req_rx"),
    }
}
