//! `chaos-explore` — the seed-sweeping chaos explorer.
//!
//! Sweep mode (default): run randomized fault plans for many seeds on both
//! Panda stacks, checking protocol invariants after every run. Exit code 1
//! if any seed fails or any determinism spot-check diverges.
//!
//! Single-seed mode (`--seed N`): run one seed twice, print the fault plan,
//! outcome, violations, and both trace hashes.
//!
//! ```text
//! chaos-explore [--seeds N] [--seed-start N] [--seed N] [--jobs N]
//!               [--stack kernel|user|user-dedicated|both] [--shards N|auto]
//!               [--rpcs N] [--broadcasts N] [--max-virtual-ms N]
//!               [--verify-every N] [--no-minimize] [--verbose]
//! ```
//!
//! `--jobs N` runs the sweep on N worker threads (`0` = one per core);
//! results are reduced in seed order, so output, exit code, and every trace
//! hash are identical for any job count.
//!
//! `--shards N` sets the windowed-driver runner-thread count every
//! simulation in the sweep uses (`auto` or `0` = one per core). Chaos
//! topologies are single-lane today, so any shard count executes the same
//! schedule — the flag exists to prove exactly that: trace hashes are
//! shard-count independent.

use std::process::ExitCode;

use chaos::explore::{explore, repro_command, ExploreOptions};
use chaos::{run_chaos, ChaosConfig, Stack};
use desim::SimDuration;

fn usage() -> ! {
    eprintln!(
        "usage: chaos-explore [--seeds N] [--seed-start N] [--seed N] [--jobs N]\n\
         \u{20}                    [--stack kernel|user|user-dedicated|both] [--shards N|auto]\n\
         \u{20}                    [--rpcs N] [--broadcasts N] [--max-virtual-ms N]\n\
         \u{20}                    [--verify-every N] [--no-minimize] [--verbose]"
    );
    std::process::exit(2);
}

fn parse_u64(v: Option<String>) -> u64 {
    match v.and_then(|s| s.parse().ok()) {
        Some(n) => n,
        None => usage(),
    }
}

fn main() -> ExitCode {
    let mut opts = ExploreOptions::default();
    let mut single_seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => opts.seeds = parse_u64(args.next()),
            "--seed-start" => opts.seed_start = parse_u64(args.next()),
            "--seed" => single_seed = Some(parse_u64(args.next())),
            "--stack" => {
                opts.stacks = match args.next().as_deref() {
                    Some("kernel") => vec![Stack::Kernel],
                    Some("user") => vec![Stack::User],
                    Some("user-dedicated") => vec![Stack::UserDedicated],
                    Some("both") => vec![Stack::Kernel, Stack::User],
                    _ => usage(),
                }
            }
            "--rpcs" => opts.rpcs = parse_u64(args.next()),
            "--broadcasts" => opts.broadcasts = parse_u64(args.next()),
            "--max-virtual-ms" => {
                opts.max_virtual = SimDuration::from_millis(parse_u64(args.next()))
            }
            "--jobs" => opts.jobs = parse_u64(args.next()) as usize,
            "--shards" => match args.next().as_deref() {
                Some("auto") => desim::set_shards_override(Some(0)),
                Some(s) => match s.parse::<usize>() {
                    Ok(n) => desim::set_shards_override(Some(n)),
                    Err(_) => usage(),
                },
                None => usage(),
            },
            "--verify-every" => opts.verify_every = parse_u64(args.next()),
            "--no-minimize" => opts.minimize = false,
            "--verbose" => opts.verbose = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if let Some(seed) = single_seed {
        let mut failed = false;
        for &stack in &opts.stacks {
            let cfg =
                ChaosConfig::for_seed(stack, seed, opts.rpcs, opts.broadcasts, opts.max_virtual);
            println!("stack {}, seed {seed}, fault plan:", stack.name());
            print!("{}", cfg.plan);
            let a = run_chaos(&cfg);
            let b = run_chaos(&cfg);
            println!(
                "  outcome: {:.2} ms, {} events, rpc {}/{} ok, broadcasts {} ok, \
                 recovery traffic {}",
                a.final_time_ns as f64 / 1e6,
                a.events,
                a.rpc_ok,
                cfg.rpcs,
                a.bcast_ok,
                a.recovery_traffic
            );
            println!(
                "  trace hash: {:016x} (re-run: {:016x})",
                a.trace_hash, b.trace_hash
            );
            if a.trace_hash != b.trace_hash {
                println!("  NONDETERMINISTIC");
                failed = true;
            }
            if a.violations.is_empty() {
                println!("  invariants: all hold");
            } else {
                failed = true;
                println!("  violations:");
                for v in &a.violations {
                    println!("    - {v}");
                }
                println!("  repro: {}", repro_command(&cfg));
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let wall_start = std::time::Instant::now();
    let summary = explore(&opts);
    let wall = wall_start.elapsed();
    println!(
        "chaos-explore: {} runs, {} failures, {} nondeterministic, \
         {} null plans, recovery traffic {}",
        summary.runs,
        summary.failures.len(),
        summary.nondeterministic.len(),
        summary.null_plans,
        summary.recovery_traffic
    );
    println!(
        "chaos-explore: {} jobs, {:.2}s wall, {:.1} seeds/sec",
        desim::par::effective_jobs(opts.jobs),
        wall.as_secs_f64(),
        summary.runs as f64 / wall.as_secs_f64().max(1e-9)
    );
    if summary.failures.is_empty() && summary.nondeterministic.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
