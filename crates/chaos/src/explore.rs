//! The seed sweep: run many fault plans, report failures with a one-line
//! repro command and a minimized plan, and spot-check determinism by
//! re-running a sample of seeds.
//!
//! Independent seeds are embarrassingly parallel, so the sweep fans runs
//! out over a [`desim::par`] worker pool (`jobs` workers) and then reduces
//! strictly in seed order: the printed report, the pass counts, and every
//! per-seed trace hash are byte-identical to a serial (`jobs = 1`) run —
//! parallelism buys wall-clock time, never different results.

use desim::par::par_map;
use desim::SimDuration;

use crate::engine::{run_chaos, ChaosConfig, ChaosOutcome};
use crate::plan::FaultPlan;
use crate::testutil::Stack;

/// What to sweep.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Stacks to run every seed on.
    pub stacks: Vec<Stack>,
    /// Number of seeds per stack.
    pub seeds: u64,
    /// First seed (sweep covers `seed_start..seed_start + seeds`).
    pub seed_start: u64,
    /// RPCs per run.
    pub rpcs: u64,
    /// Broadcasts per run.
    pub broadcasts: u64,
    /// Virtual-time budget per run.
    pub max_virtual: SimDuration,
    /// Every Nth seed is run twice and the two trace hashes compared
    /// (0 disables the determinism spot-check).
    pub verify_every: u64,
    /// Attempt greedy plan minimization for failing seeds.
    pub minimize: bool,
    /// Print per-run progress lines.
    pub verbose: bool,
    /// Worker threads for the sweep and for minimizer candidate re-runs
    /// (`0` = auto-detect, `1` = serial). Results are reduced in seed order,
    /// so any value produces identical output.
    pub jobs: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            stacks: vec![Stack::Kernel, Stack::User],
            seeds: 1000,
            seed_start: 0,
            rpcs: 10,
            broadcasts: 8,
            max_virtual: SimDuration::from_millis(500),
            verify_every: 50,
            minimize: true,
            verbose: false,
            jobs: 1,
        }
    }
}

/// One failing seed, with everything needed to reproduce and understand it.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// The failing configuration.
    pub config: ChaosConfig,
    /// The violations observed.
    pub violations: Vec<String>,
    /// The minimized plan (equal to the original if minimization is off or
    /// nothing could be removed).
    pub minimized: FaultPlan,
}

/// Sweep totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExploreSummary {
    /// Runs completed (excluding determinism re-runs).
    pub runs: u64,
    /// Sum of recovery-traffic counters across runs (sanity signal that
    /// faults actually bit).
    pub recovery_traffic: u64,
    /// Runs whose plan was null (nothing injected).
    pub null_plans: u64,
    /// Failing seeds.
    pub failures: Vec<FailureReport>,
    /// Seeds whose determinism spot-check found diverging trace hashes.
    pub nondeterministic: Vec<(Stack, u64)>,
    /// Per-run trace hash for every `(stack, seed)` of the sweep, in sweep
    /// order. Lets callers assert that two sweeps (e.g. serial vs parallel)
    /// produced bit-identical runs.
    pub seed_hashes: Vec<(Stack, u64, u64)>,
}

/// The one-line command that reproduces a single run.
pub fn repro_command(cfg: &ChaosConfig) -> String {
    format!(
        "cargo run --release -p chaos --bin chaos-explore -- --stack {} --seed {} \
         --rpcs {} --broadcasts {} --max-virtual-ms {}",
        cfg.stack.name(),
        cfg.seed,
        cfg.rpcs,
        cfg.broadcasts,
        cfg.max_virtual.as_millis_f64().round() as u64
    )
}

/// Greedily minimizes a failing plan serially; see [`minimize_jobs`].
pub fn minimize(cfg: &ChaosConfig) -> FaultPlan {
    minimize_jobs(cfg, 1)
}

/// Greedily minimizes a failing plan: repeatedly adopt the *first*
/// single-step simplification (in [`FaultPlan::simplifications`] order)
/// that still fails, until none does.
///
/// With `jobs > 1` every candidate of a round is re-run in parallel and the
/// first failing one (in candidate order) is adopted — the same plan the
/// serial early-exit loop adopts, so the result is independent of `jobs`.
pub fn minimize_jobs(cfg: &ChaosConfig, jobs: usize) -> FaultPlan {
    let jobs = desim::par::effective_jobs(jobs);
    let mut best = cfg.plan.clone();
    loop {
        let candidates = best.simplifications();
        let adopted = if jobs > 1 {
            let still_fails = par_map(jobs, candidates.len(), |i| {
                let mut c = cfg.clone();
                c.plan = candidates[i].1.clone();
                !run_chaos(&c).violations.is_empty()
            });
            candidates
                .into_iter()
                .zip(still_fails)
                .find(|(_, fails)| *fails)
                .map(|((_desc, plan), _)| plan)
        } else {
            candidates.into_iter().find_map(|(_desc, candidate)| {
                let mut c = cfg.clone();
                c.plan = candidate.clone();
                if !run_chaos(&c).violations.is_empty() {
                    Some(candidate)
                } else {
                    None
                }
            })
        };
        match adopted {
            Some(plan) => best = plan,
            None => return best,
        }
    }
}

fn run_one(opts: &ExploreOptions, stack: Stack, seed: u64) -> (ChaosConfig, ChaosOutcome) {
    let cfg = ChaosConfig::for_seed(stack, seed, opts.rpcs, opts.broadcasts, opts.max_virtual);
    let outcome = run_chaos(&cfg);
    (cfg, outcome)
}

/// Runs the sweep, printing progress and failures to stdout.
///
/// With `opts.jobs > 1` the runs execute on a worker pool; the reduction
/// below is strictly in seed order, so stdout and the returned summary are
/// byte-identical for every job count.
pub fn explore(opts: &ExploreOptions) -> ExploreSummary {
    let mut summary = ExploreSummary::default();
    for &stack in &opts.stacks {
        println!(
            "chaos-explore: stack {}, seeds {}..{}",
            stack.name(),
            opts.seed_start,
            opts.seed_start + opts.seeds
        );
        // Fan out: every seed's run (plus its determinism re-run, when
        // sampled) is independent.
        let results: Vec<(ChaosConfig, ChaosOutcome, Option<ChaosOutcome>)> =
            par_map(opts.jobs, opts.seeds as usize, |i| {
                let seed = opts.seed_start + i as u64;
                let (cfg, outcome) = run_one(opts, stack, seed);
                let recheck =
                    if opts.verify_every > 0 && (i as u64).is_multiple_of(opts.verify_every) {
                        Some(run_one(opts, stack, seed).1)
                    } else {
                        None
                    };
                (cfg, outcome, recheck)
            });
        // Reduce in seed order.
        let mut pass = 0u64;
        for (cfg, outcome, recheck) in results {
            let seed = cfg.seed;
            summary.runs += 1;
            summary.recovery_traffic += outcome.recovery_traffic;
            summary.seed_hashes.push((stack, seed, outcome.trace_hash));
            if cfg.plan.is_null() {
                summary.null_plans += 1;
            }
            if opts.verbose {
                println!(
                    "  seed {seed}: hash {:016x}, {:.2} ms, {} events, \
                     rpc {}/{}, recovery {}",
                    outcome.trace_hash,
                    outcome.final_time_ns as f64 / 1e6,
                    outcome.events,
                    outcome.rpc_ok,
                    cfg.rpcs,
                    outcome.recovery_traffic
                );
            }
            if outcome.violations.is_empty() {
                pass += 1;
            } else {
                println!(
                    "  seed {seed} FAILED ({} violations):",
                    outcome.violations.len()
                );
                for v in &outcome.violations {
                    println!("    - {v}");
                }
                println!("    repro: {}", repro_command(&cfg));
                let minimized = if opts.minimize {
                    let m = minimize_jobs(&cfg, opts.jobs);
                    println!("    minimized fault plan:");
                    print!("{m}");
                    m
                } else {
                    cfg.plan.clone()
                };
                summary.failures.push(FailureReport {
                    config: cfg,
                    violations: outcome.violations.clone(),
                    minimized,
                });
            }
            if let Some(again) = recheck {
                if again.trace_hash != outcome.trace_hash {
                    println!(
                        "  seed {seed} NONDETERMINISTIC: {:016x} vs {:016x}",
                        outcome.trace_hash, again.trace_hash
                    );
                    summary.nondeterministic.push((stack, seed));
                }
            }
        }
        println!(
            "  {} passed / {} seeds ({} failures)",
            pass,
            opts.seeds,
            opts.seeds - pass
        );
    }
    summary
}
