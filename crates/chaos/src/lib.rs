//! Deterministic chaos engine for the Panda protocol stacks.
//!
//! The simulator is deterministic: one seed fixes the entire execution. That
//! turns fault testing into a *search problem* (FoundationDB-style): generate
//! a randomized fault plan from a seed, run a workload on a protocol stack
//! under that plan, and assert the protocol's end-to-end invariants —
//! exactly-once RPC execution, gap-free identical total order at every
//! member, per-machine clock monotonicity, and frame conservation. A failing
//! seed reproduces forever; [`explore`] sweeps thousands of seeds and, on
//! failure, prints a one-line repro command plus a minimized fault plan.
//!
//! Layers:
//! - [`plan`] — seeded [`plan::FaultPlan`] generation (loss, burst loss,
//!   duplication, reordering, partitions, crash/reboot, schedule
//!   perturbation) and greedy plan minimization;
//! - [`testutil`] — the shared 3-machine world scaffold used by the engine
//!   and by integration tests across the workspace;
//! - [`engine`] — one chaos run: boot a stack, drive a mixed RPC/broadcast
//!   workload under the plan, collect artifacts, hash the trace;
//! - [`invariants`] — the checks applied to a run's artifacts;
//! - [`explore`] — the seed sweep behind the `chaos-explore` binary.

#![warn(missing_docs)]

pub mod engine;
pub mod explore;
pub mod invariants;
pub mod plan;
pub mod testutil;

pub use engine::{run_chaos, ChaosConfig, ChaosOutcome};
pub use explore::{explore, minimize, ExploreOptions, ExploreSummary, FailureReport};
pub use plan::{FaultPlan, TimedFault, TimedKind};
pub use testutil::Stack;
