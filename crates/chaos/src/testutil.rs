//! The shared simulation scaffold: one Ethernet segment, `n` booted
//! machines, and a Panda stack on top.
//!
//! Every integration test in the workspace used to copy-paste this block;
//! it now lives here so tests and the chaos engine boot identical worlds.

use std::sync::Arc;

use amoeba::{CostModel, Machine};
use desim::Simulation;
use ethernet::{MacAddr, NetConfig, Network, TopologySpec};
use panda::{KernelSpacePanda, Panda, PandaConfig, UserSpacePanda};

/// Which Panda implementation a world runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stack {
    /// Kernel-space: Amoeba's in-kernel RPC and group protocols.
    Kernel,
    /// User-space: Panda's own protocols over FLIP, sequencer on node 0.
    User,
    /// User-space with the sequencer on a dedicated extra machine.
    UserDedicated,
}

impl Stack {
    /// Short lowercase name, as used on the `chaos-explore` command line.
    pub fn name(self) -> &'static str {
        match self {
            Stack::Kernel => "kernel",
            Stack::User => "user",
            Stack::UserDedicated => "user-dedicated",
        }
    }

    /// Machines a world with `n_nodes` app nodes needs (a dedicated
    /// sequencer occupies one machine beyond the app nodes).
    pub fn n_machines(self, n_nodes: u32) -> u32 {
        match self {
            Stack::UserDedicated => n_nodes + 1,
            _ => n_nodes,
        }
    }
}

/// A booted network plus machines, before any protocol stack.
pub struct World {
    /// The (single-segment) network.
    pub net: Network,
    /// Machines with MACs `0..n`, named `m0..`.
    pub machines: Vec<Machine>,
}

/// Boots `n` machines with MACs `0..n` on one fresh segment, with the
/// default cost model.
pub fn boot_machines(sim: &mut Simulation, n: u32) -> World {
    boot_machines_with(sim, n, CostModel::default())
}

/// Boots `n` machines with an explicit cost model.
pub fn boot_machines_with(sim: &mut Simulation, n: u32, cost: CostModel) -> World {
    let mut net = Network::new(NetConfig::default());
    // One leaf holding every station: the single-segment world, built
    // through the shared topology builder (placement identical to the
    // historical hand-rolled `add_segment("seg0")`).
    let topo = TopologySpec::flat(n, n.max(1)).build(sim, &mut net, "pool");
    let cost = Arc::new(cost);
    let machines = (0..n)
        .map(|i| {
            Machine::boot_on(
                sim,
                &mut net,
                topo.segment_of(i),
                MacAddr(i),
                &format!("m{i}"),
                Arc::clone(&cost),
                topo.lane_of(i),
            )
        })
        .collect();
    World { net, machines }
}

/// Builds the chosen Panda stack over already-booted machines.
///
/// For [`Stack::UserDedicated`], `machines` must include the extra
/// sequencer machine (see [`Stack::n_machines`]); the returned nodes cover
/// all machines, with the dedicated sequencer last.
pub fn build_stack(
    sim: &mut Simulation,
    machines: &[Machine],
    stack: Stack,
    config: &PandaConfig,
) -> Vec<Arc<dyn Panda>> {
    match stack {
        Stack::Kernel => KernelSpacePanda::build(sim, machines, config)
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect(),
        Stack::User => UserSpacePanda::build(sim, machines, config)
            .into_iter()
            .map(|p| p as Arc<dyn Panda>)
            .collect(),
        Stack::UserDedicated => {
            let cfg = PandaConfig {
                dedicated_sequencer: true,
                ..config.clone()
            };
            UserSpacePanda::build(sim, machines, &cfg)
                .into_iter()
                .map(|p| p as Arc<dyn Panda>)
                .collect()
        }
    }
}

/// Boots a world and a stack in one call: `n_nodes` app nodes (plus a
/// dedicated sequencer machine if the stack needs one).
pub fn build_world(
    sim: &mut Simulation,
    n_nodes: u32,
    stack: Stack,
    config: &PandaConfig,
) -> (World, Vec<Arc<dyn Panda>>) {
    let world = boot_machines(sim, stack.n_machines(n_nodes));
    let nodes = build_stack(sim, &world.machines, stack, config);
    (world, nodes)
}
