//! Seeded fault-plan generation and minimization.
//!
//! A [`FaultPlan`] is the complete description of the adversity one chaos
//! run faces: probabilistic frame faults, timed partition/crash windows,
//! and an optional scheduler perturbation seed. The engine confines every
//! fault — probabilistic and timed alike — to the run's *fault horizon*
//! (the first 40% of the virtual-time budget), so the remainder of the
//! budget is clean network time in which recovery must converge.
//! Plans are generated deterministically from a seed with a dedicated RNG
//! (separate from the simulation's protocol-visible RNG), so `seed` →
//! `plan` → `execution` is one reproducible pipeline.

use std::fmt;

use desim::SimDuration;
use ethernet::{FaultState, GilbertElliott, MacAddr};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// What a timed fault does while its window is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedKind {
    /// Sever the link between two machines (both directions).
    Partition(MacAddr, MacAddr),
    /// Take a machine's NIC off the network (crash); the window's end is
    /// the reboot.
    Crash(MacAddr),
}

/// A fault active during `[at, until)` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedFault {
    /// Window start.
    pub at: SimDuration,
    /// Window end (heal / reboot).
    pub until: SimDuration,
    /// What happens during the window.
    pub kind: TimedKind,
}

/// A complete, reproducible description of one run's adversity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-receiver delivery loss probability.
    pub rx_loss_prob: f64,
    /// Wire-level (all receivers) loss probability.
    pub wire_loss_prob: f64,
    /// Per-delivery duplication probability.
    pub dup_prob: f64,
    /// Per-delivery reorder (hold-back) probability.
    pub reorder_prob: f64,
    /// Maximum frames a held delivery waits behind.
    pub reorder_span: u64,
    /// Optional Gilbert–Elliott burst-loss channel.
    pub gilbert: Option<GilbertElliott>,
    /// Timed partition / crash windows.
    pub timed: Vec<TimedFault>,
    /// Seed for same-instant scheduler-pick shuffling, if enabled.
    pub sched_perturb: Option<u64>,
}

impl FaultPlan {
    /// Generates the plan for `seed`, targeting `n_machines` machines with
    /// MACs `0..n_machines`. All timed windows open and close within
    /// `horizon`, so the network is fully healed well before a run's
    /// virtual-time budget expires.
    pub fn generate(seed: u64, n_machines: u32, horizon: SimDuration) -> FaultPlan {
        // Offset the seed so plan randomness never mirrors the simulation's
        // protocol-visible RNG stream (both are SmallRng).
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xc4a0_5eed_0dd5_eed0);
        let mut plan = FaultPlan::default();
        if rng.random::<f64>() < 0.7 {
            plan.rx_loss_prob = rng.random::<f64>() * 0.12;
        }
        if rng.random::<f64>() < 0.4 {
            plan.wire_loss_prob = rng.random::<f64>() * 0.06;
        }
        if rng.random::<f64>() < 0.5 {
            plan.dup_prob = rng.random::<f64>() * 0.15;
        }
        if rng.random::<f64>() < 0.5 {
            plan.reorder_prob = rng.random::<f64>() * 0.20;
            plan.reorder_span = 1 + rng.random_range(0..4);
        }
        if rng.random::<f64>() < 0.3 {
            plan.gilbert = Some(GilbertElliott::new(
                0.02 + rng.random::<f64>() * 0.08,
                0.20 + rng.random::<f64>() * 0.40,
                0.0,
                0.30 + rng.random::<f64>() * 0.50,
            ));
        }

        let h = horizon.as_nanos();
        let ms = 1_000_000u64;
        // At most one partition per pair and one crash per machine keeps
        // the timed schedule free of overlapping apply/undo pairs.
        let mut used_pairs: Vec<(u32, u32)> = Vec::new();
        for _ in 0..2 {
            if n_machines >= 2 && rng.random::<f64>() < 0.35 {
                let a = rng.random_range(0..u64::from(n_machines)) as u32;
                let mut b = rng.random_range(0..u64::from(n_machines) - 1) as u32;
                if b >= a {
                    b += 1;
                }
                let key = (a.min(b), a.max(b));
                if used_pairs.contains(&key) {
                    continue;
                }
                used_pairs.push(key);
                let at = rng.random_range(0..h / 2);
                let dur = 5 * ms + rng.random_range(0..55 * ms);
                plan.timed.push(TimedFault {
                    at: SimDuration::from_nanos(at),
                    until: SimDuration::from_nanos((at + dur).min(h)),
                    kind: TimedKind::Partition(MacAddr(key.0), MacAddr(key.1)),
                });
            }
        }
        let mut used_crash: Vec<u32> = Vec::new();
        for round in 0..2 {
            if rng.random::<f64>() < 0.35 {
                // Bias the first candidate toward machine 0, which hosts the
                // sequencer in both stacks' default configuration: sequencer
                // crash/reboot is the scenario the group protocol fears most.
                let m = if round == 0 && rng.random::<f64>() < 0.5 {
                    0
                } else {
                    rng.random_range(0..u64::from(n_machines)) as u32
                };
                if used_crash.contains(&m) {
                    continue;
                }
                used_crash.push(m);
                let at = rng.random_range(0..h / 2);
                let dur = 10 * ms + rng.random_range(0..70 * ms);
                plan.timed.push(TimedFault {
                    at: SimDuration::from_nanos(at),
                    until: SimDuration::from_nanos((at + dur).min(h)),
                    kind: TimedKind::Crash(MacAddr(m)),
                });
            }
        }
        if rng.random::<f64>() < 0.6 {
            plan.sched_perturb = Some(seed ^ 0x9e37_79b9_7f4a_7c15);
        }
        plan
    }

    /// True if the plan injects nothing at all.
    pub fn is_null(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Applies the probabilistic knobs to a network's [`FaultState`].
    /// Timed faults — and the horizon-end [`clear_ambient`] that confines
    /// these knobs to the fault window — are driven by the engine.
    ///
    /// [`clear_ambient`]: FaultPlan::clear_ambient
    pub fn apply_static(&self, faults: &mut FaultState) {
        faults.rx_loss_prob = self.rx_loss_prob;
        faults.wire_loss_prob = self.wire_loss_prob;
        faults.dup_prob = self.dup_prob;
        faults.reorder_prob = self.reorder_prob;
        faults.reorder_span = self.reorder_span;
        faults.gilbert = self.gilbert.clone();
    }

    /// True if [`apply_static`](FaultPlan::apply_static) injects anything.
    pub fn has_ambient(&self) -> bool {
        self.rx_loss_prob > 0.0
            || self.wire_loss_prob > 0.0
            || self.dup_prob > 0.0
            || self.reorder_prob > 0.0
            || self.gilbert.is_some()
    }

    /// Zeroes the probabilistic knobs on a live [`FaultState`], leaving the
    /// partition/crash state (owned by the timed driver) untouched. The
    /// engine calls this when the fault horizon closes, so the rest of the
    /// budget is clean time in which recovery must converge.
    pub fn clear_ambient(faults: &mut FaultState) {
        faults.rx_loss_prob = 0.0;
        faults.wire_loss_prob = 0.0;
        faults.dup_prob = 0.0;
        faults.reorder_prob = 0.0;
        faults.reorder_span = 0;
        faults.gilbert = None;
    }

    /// Single-step simplifications of this plan, used for greedy
    /// minimization of a failing plan: each candidate removes or zeroes one
    /// ingredient. A minimal failing plan is one where no candidate still
    /// fails.
    pub fn simplifications(&self) -> Vec<(String, FaultPlan)> {
        let mut out = Vec::new();
        let mut push = |desc: &str, p: FaultPlan| out.push((desc.to_owned(), p));
        if self.rx_loss_prob > 0.0 {
            let mut p = self.clone();
            p.rx_loss_prob = 0.0;
            push("drop rx loss", p);
        }
        if self.wire_loss_prob > 0.0 {
            let mut p = self.clone();
            p.wire_loss_prob = 0.0;
            push("drop wire loss", p);
        }
        if self.dup_prob > 0.0 {
            let mut p = self.clone();
            p.dup_prob = 0.0;
            push("drop duplication", p);
        }
        if self.reorder_prob > 0.0 {
            let mut p = self.clone();
            p.reorder_prob = 0.0;
            p.reorder_span = 0;
            push("drop reordering", p);
        }
        if self.gilbert.is_some() {
            let mut p = self.clone();
            p.gilbert = None;
            push("drop burst loss", p);
        }
        if self.sched_perturb.is_some() {
            let mut p = self.clone();
            p.sched_perturb = None;
            push("drop schedule perturbation", p);
        }
        for i in 0..self.timed.len() {
            let mut p = self.clone();
            let t = p.timed.remove(i);
            push(&format!("drop timed fault [{t:?}]"), p);
        }
        out
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            return writeln!(f, "  (no faults)");
        }
        if self.rx_loss_prob > 0.0 {
            writeln!(f, "  rx_loss_prob    = {:.4}", self.rx_loss_prob)?;
        }
        if self.wire_loss_prob > 0.0 {
            writeln!(f, "  wire_loss_prob  = {:.4}", self.wire_loss_prob)?;
        }
        if self.dup_prob > 0.0 {
            writeln!(f, "  dup_prob        = {:.4}", self.dup_prob)?;
        }
        if self.reorder_prob > 0.0 {
            writeln!(
                f,
                "  reorder_prob    = {:.4} (span {})",
                self.reorder_prob, self.reorder_span
            )?;
        }
        if let Some(ge) = &self.gilbert {
            writeln!(
                f,
                "  gilbert-elliott = enter_bad {:.3}, exit_bad {:.3}, loss_bad {:.3}",
                ge.p_enter_bad, ge.p_exit_bad, ge.loss_bad
            )?;
        }
        for t in &self.timed {
            match t.kind {
                TimedKind::Partition(a, b) => writeln!(
                    f,
                    "  partition {a}<->{b} during [{:.2} ms, {:.2} ms)",
                    t.at.as_millis_f64(),
                    t.until.as_millis_f64()
                )?,
                TimedKind::Crash(m) => writeln!(
                    f,
                    "  crash {m} during [{:.2} ms, {:.2} ms)",
                    t.at.as_millis_f64(),
                    t.until.as_millis_f64()
                )?,
            }
        }
        if let Some(s) = self.sched_perturb {
            writeln!(f, "  sched_perturb   = {s:#x}")?;
        }
        Ok(())
    }
}
