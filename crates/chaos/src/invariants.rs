//! The protocol invariants one chaos run must uphold.
//!
//! Every check operates on [`RunArtifacts`] — the observable residue of a
//! completed run — and produces human-readable violation strings instead of
//! panicking, so a sweep can keep going and report everything it found.

use std::collections::HashMap;

use desim::trace::{CounterSnapshot, Layer, TraceEvent};
use desim::{SimDuration, SimError, SimReport};
use ethernet::SegmentStats;

/// How one RPC call ended, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcOutcome {
    /// Reply received and it matched the request echo.
    Ok = 0,
    /// Reply received but its payload was wrong.
    CorruptReply = 1,
    /// The call exhausted its retry budget.
    Failed = 2,
}

/// The observable residue of one chaos run.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// Per-call-id handler execution counts at the server.
    pub executions: HashMap<u64, u64>,
    /// Per-call outcome at the client, in call order.
    pub rpc_outcomes: Vec<RpcOutcome>,
    /// Descriptions of failed sends (RPC and broadcast).
    pub send_failures: Vec<String>,
    /// Per-member delivered group tags, in delivery order.
    pub deliveries: Vec<Vec<u64>>,
    /// Aggregate trace counters.
    pub counters: Vec<CounterSnapshot>,
    /// Ring-buffer snapshot of trace events (most recent window).
    pub events: Vec<TraceEvent>,
    /// Network counters summed over all segments.
    pub stats: SegmentStats,
    /// Reorder hold-backs never released (still in flight at the end).
    pub held_pending: u64,
    /// Partitions still active at the end (plan cleanup check).
    pub partitions_left: usize,
    /// Machines still down at the end (plan cleanup check).
    pub downs_left: usize,
    /// RPCs the workload issued.
    pub expected_rpcs: u64,
    /// Broadcasts sender 0 issued.
    pub expected_sender0: u64,
    /// Broadcasts sender 2 issued.
    pub expected_sender2: u64,
    /// True if the plan injected nothing (zero-fault discipline check).
    pub plan_is_null: bool,
    /// Virtual-time budget for the run.
    pub max_virtual: SimDuration,
    /// What the simulation driver reported.
    pub sim_result: Result<SimReport, SimError>,
}

fn counter(counters: &[CounterSnapshot], layer: Layer, name: &str) -> u64 {
    counters
        .iter()
        .filter(|c| c.layer == layer && c.name == name)
        .map(|c| c.count)
        .sum()
}

/// Runs every invariant check; returns the violations found (empty = pass).
pub fn check(art: &RunArtifacts) -> Vec<String> {
    let mut v = Vec::new();

    // 0. The run itself must complete: a deadlock or an exhausted event
    //    budget is a hang, the most basic liveness violation.
    match &art.sim_result {
        Ok(report) => {
            let end = report.final_time.duration_since(desim::SimTime::ZERO);
            if end > art.max_virtual {
                v.push(format!(
                    "virtual-time budget exceeded: finished at {:.2} ms > {:.2} ms \
                     (recovery failed to converge)",
                    end.as_millis_f64(),
                    art.max_virtual.as_millis_f64()
                ));
            }
        }
        Err(e) => v.push(format!("run did not complete: {e}")),
    }

    // 1. Every send must eventually succeed: fault windows all heal inside
    //    the run, and retry budgets outlast them, so giving up means the
    //    recovery machinery is broken (or the budgets are miscalibrated —
    //    either way a human should look).
    for f in &art.send_failures {
        v.push(format!("send gave up: {f}"));
    }
    for (i, o) in art.rpc_outcomes.iter().enumerate() {
        if *o == RpcOutcome::CorruptReply {
            v.push(format!("rpc {i}: reply did not match the request echo"));
        }
    }
    if art.rpc_outcomes.len() as u64 != art.expected_rpcs {
        v.push(format!(
            "client issued {} of {} RPCs (workload thread died early)",
            art.rpc_outcomes.len(),
            art.expected_rpcs
        ));
    }

    // 2. Exactly-once execution: at-most-once always (duplicate requests
    //    are suppressed, never re-executed), and every call that returned
    //    Ok executed at least (hence exactly) once.
    for (id, count) in &art.executions {
        if *count > 1 {
            v.push(format!(
                "rpc {id} executed {count} times (duplicate suppression failed)"
            ));
        }
    }
    for id in 0..art.expected_rpcs {
        let executed = art.executions.get(&id).copied().unwrap_or(0);
        let ok = art
            .rpc_outcomes
            .get(id as usize)
            .is_some_and(|o| *o == RpcOutcome::Ok);
        if ok && executed == 0 {
            v.push(format!("rpc {id} returned Ok but never executed"));
        }
    }

    // 3. Gap-free identical total order at every member. Each member must
    //    hold the complete, identical sequence (the sequencer's laggard
    //    resync closes tail gaps), and each sender's messages must appear
    //    in submission order with no gap or duplicate.
    for (i, got) in art.deliveries.iter().enumerate() {
        if i > 0 && got != &art.deliveries[0] {
            v.push(format!(
                "member {i} delivery order differs from member 0 \
                 ({} vs {} deliveries)",
                got.len(),
                art.deliveries[0].len()
            ));
        }
        for (sender, expected_n) in [(0u64, art.expected_sender0), (2, art.expected_sender2)] {
            let seq: Vec<u64> = got
                .iter()
                .filter(|t| *t >> 32 == sender)
                .map(|t| *t & 0xffff_ffff)
                .collect();
            let want: Vec<u64> = (0..expected_n).collect();
            if seq != want {
                v.push(format!(
                    "member {i}: sender {sender} subsequence {:?}.. is not 0..{expected_n} \
                     (gap, duplicate, or reorder in the total order)",
                    &seq[..seq.len().min(8)]
                ));
            }
        }
    }

    // 4. Per-processor clock monotonicity over the trace window: the ring
    //    buffer holds events in emission order, and emission order must
    //    never run backwards on any one processor.
    let mut last: HashMap<String, u64> = HashMap::new();
    for e in &art.events {
        let t = e.time.duration_since(desim::SimTime::ZERO).as_nanos();
        let key = e.proc.to_string();
        if let Some(prev) = last.get(&key) {
            if t < *prev {
                v.push(format!(
                    "clock ran backwards on {key}: {} -> {} ns at {}/{}",
                    prev, t, e.layer, e.name
                ));
                break;
            }
        }
        last.insert(key, t);
    }

    // 5. Frame conservation: every transmitted frame is accounted for —
    //    carried, dropped on the wire, or swallowed by a crashed sender's
    //    NIC — and the trace counters agree with the independently
    //    maintained network stats.
    let tx = counter(&art.counters, Layer::Net, "tx");
    let frames = counter(&art.counters, Layer::Net, "frame");
    let wire_drops = counter(&art.counters, Layer::Net, "wire_drop");
    let down_drops = counter(&art.counters, Layer::Net, "down_drop");
    if tx != frames + wire_drops + down_drops {
        v.push(format!(
            "frame conservation broken: tx {tx} != carried {frames} + wire-dropped \
             {wire_drops} + down-dropped {down_drops}"
        ));
    }
    for (name, traced, stat) in [
        ("frame", frames, art.stats.frames),
        ("wire_drop", wire_drops, art.stats.wire_drops),
        (
            "rx_drop",
            counter(&art.counters, Layer::Net, "rx_drop"),
            art.stats.rx_drops,
        ),
        ("down_drop", down_drops, art.stats.down_tx_drops),
        (
            "link_drop",
            counter(&art.counters, Layer::Net, "link_drop"),
            art.stats.link_drops,
        ),
        (
            "rx_dup",
            counter(&art.counters, Layer::Net, "rx_dup"),
            art.stats.dup_deliveries,
        ),
        (
            "rx_held",
            counter(&art.counters, Layer::Net, "rx_held"),
            art.stats.held_deliveries,
        ),
    ] {
        if traced != stat {
            v.push(format!(
                "trace counter {name} ({traced}) disagrees with network stats ({stat})"
            ));
        }
    }
    let held = counter(&art.counters, Layer::Net, "rx_held");
    let released = counter(&art.counters, Layer::Net, "rx_release");
    if released + art.held_pending > held {
        v.push(format!(
            "held-delivery conservation broken: released {released} + pending {} > held {held}",
            art.held_pending
        ));
    }

    // 6. Plan cleanup: every timed window must have closed before the end.
    if art.partitions_left > 0 || art.downs_left > 0 {
        v.push(format!(
            "plan left faults active at the end: {} partitions, {} machines down",
            art.partitions_left, art.downs_left
        ));
    }

    // 7. Zero-fault discipline: a null plan must leave the network spotless
    //    and the recovery machinery untouched.
    if art.plan_is_null {
        let drops = art.stats.wire_drops
            + art.stats.rx_drops
            + art.stats.down_tx_drops
            + art.stats.link_drops
            + art.stats.dup_deliveries
            + art.stats.held_deliveries;
        if drops > 0 {
            v.push(format!(
                "null plan but the network injected faults ({drops})"
            ));
        }
        let recovery = counter(&art.counters, Layer::Rpc, "retransmit")
            + counter(&art.counters, Layer::Rpc, "dup_suppressed")
            + counter(&art.counters, Layer::Group, "retransmit")
            + counter(&art.counters, Layer::Group, "retrans_req_tx")
            + counter(&art.counters, Layer::Group, "retrans_req_rx");
        if recovery > 0 {
            v.push(format!(
                "null plan but recovery machinery engaged ({recovery} events)"
            ));
        }
    }

    v
}
