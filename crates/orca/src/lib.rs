//! # orca — the Orca runtime system on Panda
//!
//! The language runtime the paper's applications are written against
//! (Section 2): parallel processes share **data-objects** — instances of
//! abstract data types whose operations execute indivisibly. The runtime
//! decides per object whether to replicate it (reads local, writes totally
//! ordered broadcasts) or keep a single copy (remote operations by RPC), and
//! implements guarded operations with **continuations** so a blocked remote
//! invocation occupies no server thread: the thread that makes the guard
//! true executes the operation and sends the reply itself.
//!
//! That last mechanism is the paper's sharpest point of comparison: the
//! flexible user-space Panda RPC transmits such replies directly from the
//! mutating thread, while Amoeba's kernel RPC demands that `put_reply` come
//! from the `get_request` thread — forcing an extra context switch per
//! blocked operation, which is visible in whole-application runtimes
//! (Region Labeling and SOR in Table 3).
//!
//! The runtime is implementation-agnostic: build it on either
//! [`panda::KernelSpacePanda`] or [`panda::UserSpacePanda`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod object;
mod rts;
mod stdobj;
mod wire;
mod world;

pub use object::{ObjId, ObjectType, OpCode, OpResult, Placement};
pub use rts::{OrcaError, OrcaRts, RtsStats};
pub use stdobj::{
    barrier_ops, board_ops, buffer_ops, int_ops, queue_ops, Barrier, BarrierHandle, BoardHandle,
    BoundedBuffer, BufferHandle, IntHandle, IterBoard, JobQueue, QueueHandle, SharedInt,
};
pub use wire::{WireError, WireReader, WireWriter};
pub use world::OrcaWorld;
