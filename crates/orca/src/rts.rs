//! The Orca runtime system (RTS): object management, placement, operation
//! dispatch, and continuations for guarded operations.
//!
//! - Read-only operations on replicated objects run locally.
//! - Write operations on replicated objects are broadcast with Panda's
//!   totally ordered group communication and applied at every replica, which
//!   keeps all copies consistent (Section 2).
//! - Operations on single-copy objects go through Panda RPC to the owner.
//! - A guarded operation whose guard is false does not block a server
//!   thread: the RTS queues a **continuation** at the object and the thread
//!   that later makes the guard true executes the operation and sends the
//!   reply itself. Only the flexible user-space protocols can send that
//!   reply from the mutating thread; the kernel-space implementation must
//!   signal the original server thread (Section 3.1).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use desim::trace::{Layer, Phase};
use desim::{Ctx, SimChannel, SimDuration};
use parking_lot::Mutex;

use panda::{CommError, GroupDelivery, NodeId, Panda, ReplyTicket};

use crate::object::{ObjId, ObjectType, OpCode, OpResult, Placement};
use crate::wire::{WireReader, WireWriter};

/// CPU cost of dispatching one Orca operation (marshalling, table lookups).
const OP_DISPATCH: SimDuration = SimDuration::from_micros(5);

/// Errors surfaced by [`OrcaRts::invoke`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrcaError {
    /// The underlying communication failed permanently.
    Comm(CommError),
    /// The object is not known at this node.
    UnknownObject(ObjId),
}

impl fmt::Display for OrcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrcaError::Comm(e) => write!(f, "communication failed: {e}"),
            OrcaError::UnknownObject(o) => write!(f, "unknown object {o}"),
        }
    }
}

impl std::error::Error for OrcaError {}

impl From<CommError> for OrcaError {
    fn from(e: CommError) -> Self {
        OrcaError::Comm(e)
    }
}

/// Per-node RTS statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RtsStats {
    /// Operations executed without communication.
    pub local_ops: u64,
    /// RPCs issued to object owners.
    pub rpcs: u64,
    /// Totally ordered broadcasts issued for replicated writes.
    pub broadcasts: u64,
    /// Guarded operations that blocked and were queued as continuations.
    pub continuations_queued: u64,
    /// Continuations later resumed by a mutating operation.
    pub continuations_resumed: u64,
}

enum ContReply {
    /// Remote caller: answer through Panda (any thread may do it).
    Remote(ReplyTicket),
    /// Local blocked invocation.
    Local(SimChannel<Bytes>),
    /// Origin of a replicated write; fulfilled through the waiter table.
    GroupOrigin(u64),
    /// Non-origin replica of a blocked replicated write: execute for state
    /// consistency, nobody waits for the result.
    Quiet,
}

struct Continuation {
    op: OpCode,
    args: Bytes,
    reply: ContReply,
}

struct ObjectEntry {
    placement: Placement,
    state: Option<Box<dyn ObjectType>>,
    conts: Vec<Continuation>,
}

/// The runtime system instance of one node.
pub struct OrcaRts {
    node: NodeId,
    panda: Arc<dyn Panda>,
    objects: Mutex<HashMap<ObjId, ObjectEntry>>,
    group_waiters: Mutex<HashMap<u64, SimChannel<Bytes>>>,
    next_inv: AtomicU64,
    stats: Mutex<RtsStats>,
}

impl fmt::Debug for OrcaRts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrcaRts").field("node", &self.node).finish()
    }
}

impl OrcaRts {
    /// Creates the RTS for `panda`'s node and installs the communication
    /// upcalls.
    pub fn install(panda: Arc<dyn Panda>) -> Arc<OrcaRts> {
        let rts = Arc::new(OrcaRts {
            node: panda.node(),
            panda: Arc::clone(&panda),
            objects: Mutex::new(HashMap::new()),
            group_waiters: Mutex::new(HashMap::new()),
            next_inv: AtomicU64::new(1),
            stats: Mutex::new(RtsStats::default()),
        });
        let rpc_rts = Arc::clone(&rts);
        panda.set_rpc_handler(Arc::new(move |ctx, from, req, ticket| {
            rpc_rts.rpc_upcall(ctx, from, req, ticket);
        }));
        let grp_rts = Arc::clone(&rts);
        panda.set_group_handler(Arc::new(move |ctx, delivery| {
            grp_rts.group_upcall(ctx, delivery);
        }));
        rts
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total application nodes.
    pub fn nodes(&self) -> u32 {
        self.panda.nodes()
    }

    /// The Panda instance underneath (for spawning on the right CPU).
    pub fn panda(&self) -> &Arc<dyn Panda> {
        &self.panda
    }

    /// Snapshot of this node's statistics.
    pub fn stats(&self) -> RtsStats {
        self.stats.lock().clone()
    }

    /// Registers an object at this node. For [`Placement::Replicated`] call
    /// this (with an identically-initializing factory) on every node; for
    /// [`Placement::OwnedBy`], state is instantiated only at the owner but
    /// the placement must still be registered everywhere.
    pub fn register_object(
        &self,
        id: ObjId,
        placement: Placement,
        factory: impl FnOnce() -> Box<dyn ObjectType>,
    ) {
        let holds_state = match placement {
            Placement::Replicated => true,
            Placement::OwnedBy(owner) => owner == self.node,
        };
        let entry = ObjectEntry {
            placement,
            state: holds_state.then(factory),
            conts: Vec::new(),
        };
        let prev = self.objects.lock().insert(id, entry);
        assert!(
            prev.is_none(),
            "object {id} registered twice on node {}",
            self.node
        );
    }

    /// Invokes operation `op` on object `id`, blocking until it completes
    /// (guards included).
    ///
    /// # Errors
    ///
    /// [`OrcaError::UnknownObject`] if `id` was never registered here;
    /// [`OrcaError::Comm`] if the owner or sequencer is unreachable.
    pub fn invoke(
        &self,
        ctx: &Ctx,
        id: ObjId,
        op: OpCode,
        args: &[u8],
    ) -> Result<Bytes, OrcaError> {
        ctx.compute(OP_DISPATCH);
        let route = {
            let objects = self.objects.lock();
            let entry = objects.get(&id).ok_or(OrcaError::UnknownObject(id))?;
            match entry.placement {
                Placement::Replicated => {
                    let ro = entry
                        .state
                        .as_ref()
                        .expect("replicated state present")
                        .is_read_only(op);
                    if ro {
                        Route::Local
                    } else {
                        Route::Broadcast
                    }
                }
                Placement::OwnedBy(owner) if owner == self.node => Route::Local,
                Placement::OwnedBy(owner) => Route::Rpc(owner),
            }
        };
        let route_tag = match route {
            Route::Local => 0u64,
            Route::Rpc(_) => 1,
            Route::Broadcast => 2,
        };
        ctx.trace_emit(
            Layer::Orca,
            Phase::Begin,
            "invoke",
            &[
                ("obj", u64::from(id.0)),
                ("op", u64::from(op)),
                ("route", route_tag),
            ],
        );
        let result = match route {
            Route::Local => self.invoke_local(ctx, id, op, args),
            Route::Rpc(owner) => self.invoke_rpc(ctx, owner, id, op, args),
            Route::Broadcast => self.invoke_broadcast(ctx, id, op, args),
        };
        ctx.trace_emit(
            Layer::Orca,
            Phase::End,
            "invoke",
            &[("obj", u64::from(id.0)), ("ok", u64::from(result.is_ok()))],
        );
        result
    }

    // -- local execution ----------------------------------------------------

    fn invoke_local(
        &self,
        ctx: &Ctx,
        id: ObjId,
        op: OpCode,
        args: &[u8],
    ) -> Result<Bytes, OrcaError> {
        self.stats.lock().local_ops += 1;
        let slot = SimChannel::new();
        let (done, outs) = {
            let mut objects = self.objects.lock();
            let entry = objects.get_mut(&id).expect("checked in invoke");
            self.apply_locked(entry, op, args, || ContReply::Local(slot.clone()))
        };
        self.dispatch_outs(ctx, outs);
        match done {
            Some(result) => Ok(result),
            None => {
                ctx.trace_instant(Layer::Orca, "guard_block", &[("obj", u64::from(id.0))]);
                Ok(slot.recv(ctx).expect("continuation always answered"))
            }
        }
    }

    // -- RPC to the owner ----------------------------------------------------

    fn invoke_rpc(
        &self,
        ctx: &Ctx,
        owner: NodeId,
        id: ObjId,
        op: OpCode,
        args: &[u8],
    ) -> Result<Bytes, OrcaError> {
        self.stats.lock().rpcs += 1;
        let mut w = WireWriter::with_capacity(10 + args.len());
        w.put_u32(id.0).put_u16(op).put_bytes(args);
        let reply = self.panda.rpc(ctx, owner, w.finish())?;
        Ok(reply)
    }

    fn rpc_upcall(&self, ctx: &Ctx, _from: NodeId, req: Bytes, ticket: ReplyTicket) {
        let mut r = WireReader::new(&req);
        let id = ObjId(r.get_u32().expect("well-formed request"));
        let op = r.get_u16().expect("well-formed request");
        let args = Bytes::copy_from_slice(r.get_bytes().expect("well-formed request"));
        let mut ticket_slot = Some(ticket);
        let (done, outs) = {
            let mut objects = self.objects.lock();
            let entry = objects.get_mut(&id).expect("owner knows the object");
            debug_assert!(
                matches!(entry.placement, Placement::OwnedBy(o) if o == self.node),
                "RPC arrived at a non-owner"
            );
            self.apply_locked(entry, op, &args, || {
                ContReply::Remote(ticket_slot.take().expect("single block per apply"))
            })
        };
        if let Some(result) = done {
            // Immediate reply from the upcall (run-to-completion); the
            // ticket was not consumed by a continuation.
            let ticket = ticket_slot.take().expect("ticket unused on completion");
            self.panda.reply(ctx, ticket, result);
        } else {
            ctx.trace_instant(Layer::Orca, "guard_block", &[("obj", u64::from(id.0))]);
        }
        self.dispatch_outs(ctx, outs);
    }

    // -- replicated writes ----------------------------------------------------

    fn invoke_broadcast(
        &self,
        ctx: &Ctx,
        id: ObjId,
        op: OpCode,
        args: &[u8],
    ) -> Result<Bytes, OrcaError> {
        self.stats.lock().broadcasts += 1;
        let inv = self.next_inv.fetch_add(1, Ordering::SeqCst);
        let slot = SimChannel::new();
        self.group_waiters.lock().insert(inv, slot.clone());
        let mut w = WireWriter::with_capacity(20 + args.len());
        w.put_u32(id.0)
            .put_u16(op)
            .put_u32(self.node)
            .put_u64(inv)
            .put_bytes(args);
        let sent = self.panda.group_send(ctx, w.finish());
        if let Err(e) = sent {
            self.group_waiters.lock().remove(&inv);
            return Err(e.into());
        }
        Ok(slot
            .recv(ctx)
            .expect("own broadcast always applied locally"))
    }

    fn group_upcall(&self, ctx: &Ctx, delivery: GroupDelivery) {
        let mut r = WireReader::new(&delivery.payload);
        let id = ObjId(r.get_u32().expect("well-formed broadcast"));
        let op = r.get_u16().expect("well-formed broadcast");
        let origin = r.get_u32().expect("well-formed broadcast");
        let inv = r.get_u64().expect("well-formed broadcast");
        let args = Bytes::copy_from_slice(r.get_bytes().expect("well-formed broadcast"));
        let (done, outs) = {
            let mut objects = self.objects.lock();
            let entry = objects.get_mut(&id).expect("replica present everywhere");
            self.apply_locked(entry, op, &args, || {
                if origin == self.node {
                    ContReply::GroupOrigin(inv)
                } else {
                    ContReply::Quiet
                }
            })
        };
        if let Some(result) = done {
            if origin == self.node {
                self.fulfill_group(ctx, inv, result);
            }
        } else {
            ctx.trace_instant(Layer::Orca, "guard_block", &[("obj", u64::from(id.0))]);
        }
        self.dispatch_outs(ctx, outs);
    }

    fn fulfill_group(&self, ctx: &Ctx, inv: u64, result: Bytes) {
        if let Some(slot) = self.group_waiters.lock().remove(&inv) {
            let _ = slot.send(ctx, result);
        }
    }

    // -- the continuation engine ----------------------------------------------

    /// Applies `op`; on block, queues a continuation built by `on_block`.
    /// On a completed write, retries queued continuations until quiescent.
    /// Returns the primary result (if completed) and finished continuations.
    fn apply_locked(
        &self,
        entry: &mut ObjectEntry,
        op: OpCode,
        args: &[u8],
        on_block: impl FnOnce() -> ContReply,
    ) -> (Option<Bytes>, Vec<(ContReply, Bytes)>) {
        let state = entry
            .state
            .as_mut()
            .expect("apply only runs where state lives");
        match state.apply(op, args) {
            OpResult::Done(result) => {
                let outs = if state.is_read_only(op) {
                    Vec::new()
                } else {
                    self.retry_continuations(entry)
                };
                (Some(result), outs)
            }
            OpResult::Blocked => {
                self.stats.lock().continuations_queued += 1;
                entry.conts.push(Continuation {
                    op,
                    args: Bytes::copy_from_slice(args),
                    reply: on_block(),
                });
                (None, Vec::new())
            }
        }
    }

    /// Re-runs queued continuations until a pass completes none that writes.
    fn retry_continuations(&self, entry: &mut ObjectEntry) -> Vec<(ContReply, Bytes)> {
        let mut finished = Vec::new();
        loop {
            let mut wrote = false;
            let pending = std::mem::take(&mut entry.conts);
            let state = entry.state.as_mut().expect("state present");
            for c in pending {
                match state.apply(c.op, &c.args) {
                    OpResult::Done(result) => {
                        if !state.is_read_only(c.op) {
                            wrote = true;
                        }
                        finished.push((c.reply, result));
                    }
                    OpResult::Blocked => entry.conts.push(c),
                }
            }
            if !wrote || entry.conts.is_empty() {
                break;
            }
        }
        if !finished.is_empty() {
            self.stats.lock().continuations_resumed += finished.len() as u64;
        }
        finished
    }

    /// Delivers continuation results. Remote replies transmit (and may
    /// suspend the calling thread), so this must run outside object locks.
    fn dispatch_outs(&self, ctx: &Ctx, outs: Vec<(ContReply, Bytes)>) {
        for (reply, result) in outs {
            ctx.trace_instant(
                Layer::Orca,
                "cont_resume",
                &[("bytes", result.len() as u64)],
            );
            match reply {
                ContReply::Remote(ticket) => self.panda.reply(ctx, ticket, result),
                ContReply::Local(slot) => {
                    let _ = slot.send(ctx, result);
                }
                ContReply::GroupOrigin(inv) => self.fulfill_group(ctx, inv, result),
                ContReply::Quiet => {}
            }
        }
    }
}

enum Route {
    Local,
    Rpc(NodeId),
    Broadcast,
}
